//! The flat-code interpreter: direct dispatch over [`FlatOp`]s with
//! edge-head-fused control transfers and precise fuel-fault replay.

use std::sync::Arc;

use trace_ir::{BinOp, FuncId};

use super::ops::{generalize, EdgeHead, FlatOp, BINOPS, CONST_CODE, MOV_CODE, NONE, UNOPS};
use super::FlatProgram;
use crate::counters::{PixieCounts, RunStats};
use crate::error::RuntimeError;
use crate::machine::{
    eval_binop, eval_unop, want_float, want_int, BranchEvent, CoverageSink, Run, VmConfig,
    ENTRY_EDGE_FROM,
};
use crate::value::{ArrayData, GuestValue, HeapObject, Input};

/// One frame of the contiguous register stack.
#[derive(Clone, Copy, Debug)]
struct FlatFrame {
    /// Code offset to resume at in the caller (points at a `Resume` op).
    ret_pc: u32,
    /// Start of this frame's register window in the shared stack.
    base: u32,
    /// Caller-window register receiving the return value, or `NONE`.
    ret_dst: u32,
    /// Current block, for coverage-edge `from` ([`ENTRY_EDGE_FROM`] until
    /// the function's entry block head runs).
    cur_block: u32,
    /// Whether the frame was entered through an indirect call.
    indirect: bool,
}

pub(super) struct FlatInterp<'f, 'o> {
    fp: &'f FlatProgram,
    config: VmConfig,
    heap: Vec<HeapObject>,
    globals: Vec<GuestValue>,
    regs: Vec<GuestValue>,
    frames: Vec<FlatFrame>,
    output: Vec<GuestValue>,
    stats: RunStats,
    /// Dense per-block execution counts (slot order); folded into
    /// [`PixieCounts`] when the run finishes.
    pixie: Vec<u64>,
    /// Dense per-branch `(executed, taken)` counts (slot order); folded
    /// into the keyed [`crate::BranchCounts`] when the run finishes. Keeps
    /// the hot loop free of the reference backend's per-branch map lookup.
    branch_hits: Vec<(u64, u64)>,
    fuel_used: u64,
    branch_trace: Vec<BranchEvent>,
    last_branch_fuel: u64,
    pub(super) observer: Option<&'o mut dyn CoverageSink>,
    pub(super) branch_sink: Option<&'o mut dyn crate::BranchSink>,
}

fn want_ref(v: GuestValue) -> Result<u32, RuntimeError> {
    match v {
        GuestValue::Ref(h) => Ok(h),
        v => Err(RuntimeError::TypeMismatch {
            expected: "array",
            found: v.type_name(),
        }),
    }
}

fn check_index(index: i64, len: usize) -> Result<usize, RuntimeError> {
    if index < 0 || index as usize >= len {
        Err(RuntimeError::IndexOutOfBounds { index, len })
    } else {
        Ok(index as usize)
    }
}

impl<'f, 'o> FlatInterp<'f, 'o> {
    pub(super) fn new(fp: &'f FlatProgram, config: VmConfig) -> Self {
        let heap = fp
            .const_arrays
            .iter()
            .map(|a| HeapObject {
                data: ArrayData::Ints(Arc::clone(a)),
                read_only: true,
            })
            .collect();
        FlatInterp {
            fp,
            config,
            heap,
            globals: vec![GuestValue::Zero; fp.globals],
            // Register-window pre-sizing: reserve the whole program's
            // static window sum (capped) up front so hot call chains never
            // reallocate the shared stack mid-descent.
            regs: Vec::with_capacity(fp.prealloc_regs),
            frames: Vec::with_capacity(64),
            output: Vec::new(),
            stats: RunStats::default(),
            pixie: vec![0; fp.block_shape.iter().sum()],
            branch_hits: vec![(0, 0); fp.branch_ids.len()],
            fuel_used: 0,
            branch_trace: Vec::new(),
            last_branch_fuel: 0,
            observer: None,
            branch_sink: None,
        }
    }

    /// Takes the edge named by `eh`: bumps the target's Pixie slot, reports
    /// the coverage edge, bulk-charges the target's first fuel segment, and
    /// returns the body offset — the fused equivalent of landing on a block
    /// head, in the same observable order as the reference backend.
    #[inline(always)]
    fn enter(&mut self, eh: u32, base: usize, cur_block: &mut u32) -> Result<usize, RuntimeError> {
        let EdgeHead {
            body,
            slot,
            func,
            block,
            cost,
        } = self.fp.heads[eh as usize];
        self.pixie[slot as usize] += 1;
        if let Some(obs) = self.observer.as_mut() {
            obs.edge(FuncId(func), *cur_block, block);
        }
        *cur_block = block;
        self.fuel_used += u64::from(cost);
        if self.fuel_used > self.config.fuel {
            return Err(self.finish_precise(body as usize, base, cost));
        }
        Ok(body as usize)
    }

    pub(super) fn run(mut self, inputs: &[Input]) -> Result<Run, RuntimeError> {
        let fp = self.fp;
        let entry = &fp.funcs[fp.entry as usize];
        if inputs.len() != entry.num_params as usize {
            return Err(RuntimeError::BadEntryArity {
                got: inputs.len(),
                expected: entry.num_params,
            });
        }
        self.regs.resize(entry.num_regs as usize, GuestValue::Zero);
        for (i, input) in inputs.iter().enumerate() {
            self.regs[i] = match input {
                Input::Int(v) => GuestValue::Int(*v),
                Input::Float(v) => GuestValue::Float(*v),
                Input::Ints(v) => self.alloc(ArrayData::ints(v.clone())),
                Input::Floats(v) => self.alloc(ArrayData::floats(v.clone())),
            };
        }
        // Unlike the reference, the entry block's Pixie bump and coverage
        // edge are not pre-counted here: the entry BlockHead emits both, in
        // the same observable order.
        self.frames.push(FlatFrame {
            ret_pc: NONE,
            base: 0,
            ret_dst: NONE,
            cur_block: ENTRY_EDGE_FROM,
            indirect: false,
        });
        let mut pc = entry.entry_pc as usize;
        let mut base = 0usize;
        // The current frame's block, kept in a local so the hot edge-head
        // path never touches the frame stack; it is saved to the caller's
        // frame on call and restored from it on return.
        let mut cur_block = ENTRY_EDGE_FROM;

        let result = loop {
            // Matching on the indexed place (not a `let`-copied value) lets
            // each arm load only the fields it uses instead of copying the
            // whole 32-byte op.
            let op = &fp.code[pc];
            pc += 1;
            match *op {
                FlatOp::BlockHead {
                    slot,
                    func,
                    block,
                    cost,
                } => {
                    self.pixie[slot as usize] += 1;
                    if let Some(obs) = self.observer.as_mut() {
                        obs.edge(FuncId(func), cur_block, block);
                    }
                    cur_block = block;
                    self.fuel_used += u64::from(cost);
                    if self.fuel_used > self.config.fuel {
                        return Err(self.finish_precise(pc, base, cost));
                    }
                }
                FlatOp::Resume { cost } => {
                    self.fuel_used += u64::from(cost);
                    if self.fuel_used > self.config.fuel {
                        return Err(self.finish_precise(pc, base, cost));
                    }
                }
                FlatOp::JumpHead { eh } => {
                    self.stats.events.jumps += 1;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::Branch { cond, slot, tk, nt } => {
                    let c = want_int(self.regs[base + cond as usize])?;
                    let eh = self.record_branch(slot, c != 0, tk, nt);
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranch {
                    op,
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh = self.op_cmp_branch(op, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchEq {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::Eq, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchNe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::Ne, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchLt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::Lt, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchLe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::Le, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchGt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::Gt, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchGe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::Ge, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchFEq {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::FEq, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchFNe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::FNe, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchFLt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::FLt, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchFLe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::FLe, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchFGt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::FGt, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::CmpBranchFGe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    tk,
                    nt,
                } => {
                    let eh =
                        self.op_cmp_branch(BinOp::FGe, (dst, lhs, rhs), (slot, tk, nt), base)?;
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::ImpliedBranch { slot, taken, eh } => {
                    // The trace optimizer proved the direction; the branch
                    // is still recorded exactly like a conditional one.
                    let eh = self.record_branch(slot, taken != 0, eh, eh);
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::ImpliedCmpBranch { dst, val, slot, eh } => {
                    // An implied fused compare: the outcome is known, so the
                    // comparison degenerates to writing its 0/1 result.
                    self.regs[base + dst as usize] = GuestValue::Int(i64::from(val));
                    let eh = self.record_branch(slot, val != 0, eh, eh);
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::JumpTable { index, table } => {
                    self.stats.events.indirect_jumps += 1;
                    let i = want_int(self.regs[base + index as usize])?;
                    let t = &fp.tables[table as usize];
                    let eh = if i >= 0 && (i as usize) < t.targets.len() {
                        t.targets[i as usize]
                    } else {
                        t.default
                    };
                    pc = self.enter(eh, base, &mut cur_block)?;
                }
                FlatOp::Call {
                    func,
                    args,
                    nargs,
                    ret,
                } => {
                    self.stats.events.direct_calls += 1;
                    self.frames.last_mut().expect("active frame").cur_block = cur_block;
                    let (npc, nbase) = self.push_call(func, (args, nargs), ret, false, pc, base)?;
                    pc = npc;
                    base = nbase;
                    cur_block = ENTRY_EDGE_FROM;
                }
                FlatOp::CallIndirect {
                    target,
                    args,
                    nargs,
                    ret,
                } => {
                    let callee = match self.regs[base + target as usize] {
                        GuestValue::Func(id) => id.0,
                        v => {
                            return Err(RuntimeError::BadIndirectTarget {
                                found: v.type_name(),
                            })
                        }
                    };
                    let callee_fn = &fp.funcs[callee as usize];
                    if nargs != callee_fn.num_params {
                        return Err(RuntimeError::IndirectArityMismatch {
                            callee: callee_fn.name.clone(),
                            got: nargs as usize,
                            expected: callee_fn.num_params,
                        });
                    }
                    self.stats.events.indirect_calls += 1;
                    self.frames.last_mut().expect("active frame").cur_block = cur_block;
                    let (npc, nbase) =
                        self.push_call(callee, (args, nargs), ret, true, pc, base)?;
                    pc = npc;
                    base = nbase;
                    cur_block = ENTRY_EDGE_FROM;
                }
                FlatOp::Return { src } => {
                    let v = if src == NONE {
                        None
                    } else {
                        Some(self.regs[base + src as usize])
                    };
                    let frame = self.frames.pop().expect("active frame");
                    if self.frames.is_empty() {
                        break v;
                    }
                    if frame.indirect {
                        self.stats.events.indirect_returns += 1;
                    } else {
                        self.stats.events.direct_returns += 1;
                    }
                    let caller = self.frames.last().expect("caller frame");
                    let caller_base = caller.base as usize;
                    cur_block = caller.cur_block;
                    self.regs.truncate(frame.base as usize);
                    if frame.ret_dst != NONE {
                        self.regs[caller_base + frame.ret_dst as usize] =
                            v.unwrap_or(GuestValue::Zero);
                    }
                    pc = frame.ret_pc as usize;
                    base = caller_base;
                }
                // Leaf ops: one arm per variant — single dispatch, no
                // second match. Every arm calls the same `#[inline(always)]`
                // helper the cold replay path uses, constant-op variants
                // with their operator as a literal.
                FlatOp::LoadConst { dst, cidx } => self.op_load_const(dst, cidx, base),
                FlatOp::Mov { dst, src } => self.op_mov(dst, src, base),
                FlatOp::Unop { op, dst, src } => self.op_unop(op, dst, src, base)?,
                FlatOp::Binop { op, dst, lhs, rhs } => self.op_binop(op, dst, lhs, rhs, base)?,
                FlatOp::BinopAdd { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Add, dst, lhs, rhs, base)?
                }
                FlatOp::BinopSub { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Sub, dst, lhs, rhs, base)?
                }
                FlatOp::BinopMul { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Mul, dst, lhs, rhs, base)?
                }
                FlatOp::BinopDiv { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Div, dst, lhs, rhs, base)?
                }
                FlatOp::BinopRem { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Rem, dst, lhs, rhs, base)?
                }
                FlatOp::BinopAnd { dst, lhs, rhs } => {
                    self.op_binop(BinOp::And, dst, lhs, rhs, base)?
                }
                FlatOp::BinopOr { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Or, dst, lhs, rhs, base)?
                }
                FlatOp::BinopXor { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Xor, dst, lhs, rhs, base)?
                }
                FlatOp::BinopShl { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Shl, dst, lhs, rhs, base)?
                }
                FlatOp::BinopShr { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Shr, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFAdd { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FAdd, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFSub { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FSub, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFMul { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FMul, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFDiv { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FDiv, dst, lhs, rhs, base)?
                }
                FlatOp::ConstBinop {
                    op,
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(op, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopAdd {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Add, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopSub {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Sub, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopMul {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Mul, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopDiv {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Div, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopRem {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Rem, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopAnd {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::And, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopOr {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Or, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopXor {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Xor, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopShl {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Shl, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopShr {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Shr, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFAdd {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FAdd, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFSub {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FSub, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFMul {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FMul, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFDiv {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FDiv, dst, lhs, cdst, cidx, base)?,
                // Paired superinstructions: two reference instructions per
                // dispatch, executed strictly in order. Generic forms unpack
                // the operator table; specialized forms carry literals.
                FlatOp::PairBB {
                    ops,
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BINOPS[(ops & 0xff) as usize], d1, l1, r1, base)?;
                    self.op_binop(BINOPS[(ops >> 8) as usize], d2, l2, r2, base)?;
                }
                FlatOp::PairUB {
                    ops,
                    d1,
                    s1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_uhalf(ops & 0xff, d1, s1, base)?;
                    self.op_binop(BINOPS[(ops >> 8) as usize], d2, l2, r2, base)?;
                }
                FlatOp::PairBU {
                    ops,
                    d1,
                    l1,
                    r1,
                    d2,
                    s2,
                } => {
                    self.op_binop(BINOPS[(ops & 0xff) as usize], d1, l1, r1, base)?;
                    self.op_uhalf(ops >> 8, d2, s2, base)?;
                }
                FlatOp::PairUU {
                    ops,
                    d1,
                    s1,
                    d2,
                    s2,
                } => {
                    self.op_uhalf(ops & 0xff, d1, s1, base)?;
                    self.op_uhalf(ops >> 8, d2, s2, base)?;
                }
                FlatOp::PairBL {
                    ops,
                    d1,
                    l1,
                    r1,
                    ld,
                    arr,
                    idx,
                } => {
                    self.op_binop(BINOPS[(ops & 0xff) as usize], d1, l1, r1, base)?;
                    self.op_load(ld, arr, idx, base)?;
                }
                FlatOp::PairLB {
                    ops,
                    ld,
                    arr,
                    idx,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_load(ld, arr, idx, base)?;
                    self.op_binop(BINOPS[(ops >> 8) as usize], d2, l2, r2, base)?;
                }
                FlatOp::PairLL {
                    ld1,
                    arr1,
                    idx1,
                    ld2,
                    arr2,
                    idx2,
                } => {
                    self.op_load(ld1, arr1, idx1, base)?;
                    self.op_load(ld2, arr2, idx2, base)?;
                }
                FlatOp::PairFAddFAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FAdd, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FAdd, d2, l2, r2, base)?;
                }
                FlatOp::PairFAddFSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FAdd, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FSub, d2, l2, r2, base)?;
                }
                FlatOp::PairFAddFMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FAdd, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FMul, d2, l2, r2, base)?;
                }
                FlatOp::PairFAddFDiv {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FAdd, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FDiv, d2, l2, r2, base)?;
                }
                FlatOp::PairFSubFAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FSub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FAdd, d2, l2, r2, base)?;
                }
                FlatOp::PairFSubFSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FSub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FSub, d2, l2, r2, base)?;
                }
                FlatOp::PairFSubFMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FSub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FMul, d2, l2, r2, base)?;
                }
                FlatOp::PairFSubFDiv {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FSub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FDiv, d2, l2, r2, base)?;
                }
                FlatOp::PairFMulFAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FMul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FAdd, d2, l2, r2, base)?;
                }
                FlatOp::PairFMulFSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FMul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FSub, d2, l2, r2, base)?;
                }
                FlatOp::PairFMulFMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FMul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FMul, d2, l2, r2, base)?;
                }
                FlatOp::PairFMulFDiv {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FMul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FDiv, d2, l2, r2, base)?;
                }
                FlatOp::PairFDivFAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FDiv, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FAdd, d2, l2, r2, base)?;
                }
                FlatOp::PairFDivFSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FDiv, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FSub, d2, l2, r2, base)?;
                }
                FlatOp::PairFDivFMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FDiv, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FMul, d2, l2, r2, base)?;
                }
                FlatOp::PairFDivFDiv {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::FDiv, d1, l1, r1, base)?;
                    self.op_binop(BinOp::FDiv, d2, l2, r2, base)?;
                }
                FlatOp::PairAddAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Add, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Add, d2, l2, r2, base)?;
                }
                FlatOp::PairAddSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Add, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Sub, d2, l2, r2, base)?;
                }
                FlatOp::PairAddMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Add, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Mul, d2, l2, r2, base)?;
                }
                FlatOp::PairSubAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Sub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Add, d2, l2, r2, base)?;
                }
                FlatOp::PairSubSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Sub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Sub, d2, l2, r2, base)?;
                }
                FlatOp::PairSubMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Sub, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Mul, d2, l2, r2, base)?;
                }
                FlatOp::PairMulAdd {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Mul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Add, d2, l2, r2, base)?;
                }
                FlatOp::PairMulSub {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Mul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Sub, d2, l2, r2, base)?;
                }
                FlatOp::PairMulMul {
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    self.op_binop(BinOp::Mul, d1, l1, r1, base)?;
                    self.op_binop(BinOp::Mul, d2, l2, r2, base)?;
                }
                FlatOp::PairMovFAdd { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::FAdd, d2, l2, r2, base)?;
                }
                FlatOp::PairMovFSub { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::FSub, d2, l2, r2, base)?;
                }
                FlatOp::PairMovFMul { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::FMul, d2, l2, r2, base)?;
                }
                FlatOp::PairMovFDiv { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::FDiv, d2, l2, r2, base)?;
                }
                FlatOp::PairMovAdd { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::Add, d2, l2, r2, base)?;
                }
                FlatOp::PairMovSub { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::Sub, d2, l2, r2, base)?;
                }
                FlatOp::PairMovMul { d1, s1, d2, l2, r2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_binop(BinOp::Mul, d2, l2, r2, base)?;
                }
                FlatOp::PairFAddMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::FAdd, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairFSubMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::FSub, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairFMulMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::FMul, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairFDivMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::FDiv, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairAddMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::Add, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairSubMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::Sub, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairMulMov { d1, l1, r1, d2, s2 } => {
                    self.op_binop(BinOp::Mul, d1, l1, r1, base)?;
                    self.op_mov(d2, s2, base);
                }
                FlatOp::PairMovMov { d1, s1, d2, s2 } => {
                    self.op_mov(d1, s1, base);
                    self.op_mov(d2, s2, base);
                }
                FlatOp::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => self.op_select(dst, cond, if_true, if_false, base)?,
                FlatOp::Load { dst, arr, index } => self.op_load(dst, arr, index, base)?,
                FlatOp::Store { arr, index, src } => self.op_store(arr, index, src, base)?,
                FlatOp::NewIntArray { dst, len } => self.op_new_int_array(dst, len, base)?,
                FlatOp::NewFloatArray { dst, len } => self.op_new_float_array(dst, len, base)?,
                FlatOp::ArrayLen { dst, arr } => self.op_array_len(dst, arr, base)?,
                FlatOp::ConstArrayRef { dst, index } => self.op_const_array_ref(dst, index, base),
                FlatOp::GlobalGet { dst, global } => self.op_global_get(dst, global, base),
                FlatOp::GlobalSet { global, src } => self.op_global_set(global, src, base),
                FlatOp::FuncAddr { dst, func } => self.op_func_addr(dst, func, base),
                FlatOp::Emit { src } => self.op_emit(src, base),
            }
        };

        self.stats.total_instrs = self.fuel_used;
        // Fold the dense counters back into the keyed shapes the rest of
        // the system consumes. Skipping never-executed branches matches the
        // reference, whose map only gains an entry on first record.
        for (slot, &(executed, taken)) in self.branch_hits.iter().enumerate() {
            if executed > 0 {
                self.stats
                    .branches
                    .add(self.fp.branch_ids[slot], executed, taken);
            }
        }
        let mut blocks = Vec::with_capacity(self.fp.block_shape.len());
        let mut off = 0;
        for &n in &self.fp.block_shape {
            blocks.push(self.pixie[off..off + n].to_vec());
            off += n;
        }
        self.stats.pixie = PixieCounts { blocks };
        Ok(Run {
            output: self.output,
            result,
            stats: self.stats,
            branch_trace: self.branch_trace,
        })
    }

    /// Executes one non-control op for the precise fuel replay. Dispatches
    /// through [`generalize`] and the same `op_*` helpers as the hot loop,
    /// so semantics cannot diverge between them.
    fn exec_leaf(&mut self, op: FlatOp, base: usize) -> Result<(), RuntimeError> {
        match op {
            FlatOp::LoadConst { dst, cidx } => self.op_load_const(dst, cidx, base),
            FlatOp::Mov { dst, src } => self.op_mov(dst, src, base),
            FlatOp::Unop { op, dst, src } => self.op_unop(op, dst, src, base)?,
            FlatOp::Binop { op, dst, lhs, rhs } => self.op_binop(op, dst, lhs, rhs, base)?,
            FlatOp::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => self.op_select(dst, cond, if_true, if_false, base)?,
            FlatOp::Load { dst, arr, index } => self.op_load(dst, arr, index, base)?,
            FlatOp::Store { arr, index, src } => self.op_store(arr, index, src, base)?,
            FlatOp::NewIntArray { dst, len } => self.op_new_int_array(dst, len, base)?,
            FlatOp::NewFloatArray { dst, len } => self.op_new_float_array(dst, len, base)?,
            FlatOp::ArrayLen { dst, arr } => self.op_array_len(dst, arr, base)?,
            FlatOp::ConstArrayRef { dst, index } => self.op_const_array_ref(dst, index, base),
            FlatOp::GlobalGet { dst, global } => self.op_global_get(dst, global, base),
            FlatOp::GlobalSet { global, src } => self.op_global_set(global, src, base),
            FlatOp::FuncAddr { dst, func } => self.op_func_addr(dst, func, base),
            FlatOp::Emit { src } => self.op_emit(src, base),
            // `generalize` folds every specialized variant away; the rest
            // are control/fused ops, which the replay loop handles itself.
            _ => unreachable!("non-leaf op reached exec_leaf"),
        }
        Ok(())
    }

    #[inline(always)]
    fn op_load_const(&mut self, dst: u32, cidx: u32, base: usize) {
        self.regs[base + dst as usize] = self.fp.consts[cidx as usize];
    }

    #[inline(always)]
    fn op_mov(&mut self, dst: u32, src: u32, base: usize) {
        self.regs[base + dst as usize] = self.regs[base + src as usize];
    }

    /// Executes the unary half of a generic pair: a real [`UNOPS`] index or
    /// one of the pseudo codes ([`MOV_CODE`], [`CONST_CODE`]) the pair
    /// peephole packs for moves and constant loads.
    #[inline(always)]
    fn op_uhalf(&mut self, code: u32, dst: u32, s: u32, base: usize) -> Result<(), RuntimeError> {
        match code {
            MOV_CODE => {
                self.op_mov(dst, s, base);
                Ok(())
            }
            CONST_CODE => {
                self.op_load_const(dst, s, base);
                Ok(())
            }
            c => self.op_unop(UNOPS[c as usize], dst, s, base),
        }
    }

    #[inline(always)]
    fn op_unop(
        &mut self,
        op: trace_ir::UnOp,
        dst: u32,
        src: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        let v = eval_unop(op, self.regs[base + src as usize])?;
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline(always)]
    fn op_binop(
        &mut self,
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        let v = eval_binop(
            op,
            self.regs[base + lhs as usize],
            self.regs[base + rhs as usize],
        )?;
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline(always)]
    fn op_const_binop(
        &mut self,
        op: BinOp,
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        // Constant write first — matches unfused order even when
        // `lhs == cdst`.
        self.regs[base + cdst as usize] = self.fp.consts[cidx as usize];
        let v = eval_binop(
            op,
            self.regs[base + lhs as usize],
            self.regs[base + cdst as usize],
        )?;
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    /// Fused comparison + conditional branch: evaluates the comparison,
    /// writes `dst` (visible to later blocks), records the branch, and
    /// returns the chosen arm's edge head.
    #[inline(always)]
    fn op_cmp_branch(
        &mut self,
        op: BinOp,
        regs: (u32, u32, u32),
        ctl: (u32, u32, u32),
        base: usize,
    ) -> Result<u32, RuntimeError> {
        let (dst, lhs, rhs) = regs;
        let (slot, tk, nt) = ctl;
        let v = eval_binop(
            op,
            self.regs[base + lhs as usize],
            self.regs[base + rhs as usize],
        )?;
        self.regs[base + dst as usize] = v;
        // Comparison results are always Int(0|1), so the branch itself can
        // never type-fault.
        let is_taken = matches!(v, GuestValue::Int(i) if i != 0);
        Ok(self.record_branch(slot, is_taken, tk, nt))
    }

    #[inline]
    fn op_select(
        &mut self,
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        self.stats.events.selects += 1;
        let c = want_int(self.regs[base + cond as usize])?;
        let v = if c != 0 {
            self.regs[base + if_true as usize]
        } else {
            self.regs[base + if_false as usize]
        };
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_load(&mut self, dst: u32, arr: u32, index: u32, base: usize) -> Result<(), RuntimeError> {
        let h = want_ref(self.regs[base + arr as usize])?;
        let i = want_int(self.regs[base + index as usize])?;
        let v = match &self.heap[h as usize].data {
            ArrayData::Ints(v) => GuestValue::Int(v[check_index(i, v.len())?]),
            ArrayData::Floats(v) => GuestValue::Float(v[check_index(i, v.len())?]),
        };
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_store(
        &mut self,
        arr: u32,
        index: u32,
        src: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        let h = want_ref(self.regs[base + arr as usize])?;
        let i = want_int(self.regs[base + index as usize])?;
        let v = self.regs[base + src as usize];
        let obj = &mut self.heap[h as usize];
        if obj.read_only {
            return Err(RuntimeError::ReadOnlyStore);
        }
        match &mut obj.data {
            ArrayData::Ints(data) => {
                let idx = check_index(i, data.len())?;
                Arc::make_mut(data)[idx] = want_int(v)?;
            }
            ArrayData::Floats(data) => {
                let idx = check_index(i, data.len())?;
                Arc::make_mut(data)[idx] = want_float(v)?;
            }
        }
        Ok(())
    }

    #[inline]
    fn op_new_int_array(&mut self, dst: u32, len: u32, base: usize) -> Result<(), RuntimeError> {
        let n = self.check_alloc_len(self.regs[base + len as usize])?;
        let v = self.alloc(ArrayData::ints(vec![0; n]));
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_new_float_array(&mut self, dst: u32, len: u32, base: usize) -> Result<(), RuntimeError> {
        let n = self.check_alloc_len(self.regs[base + len as usize])?;
        let v = self.alloc(ArrayData::floats(vec![0.0; n]));
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_array_len(&mut self, dst: u32, arr: u32, base: usize) -> Result<(), RuntimeError> {
        let h = want_ref(self.regs[base + arr as usize])?;
        let len = self.heap[h as usize].data.len() as i64;
        self.regs[base + dst as usize] = GuestValue::Int(len);
        Ok(())
    }

    #[inline(always)]
    fn op_const_array_ref(&mut self, dst: u32, index: u32, base: usize) {
        self.regs[base + dst as usize] = GuestValue::Ref(index);
    }

    #[inline(always)]
    fn op_global_get(&mut self, dst: u32, global: u32, base: usize) {
        self.regs[base + dst as usize] = self.globals[global as usize];
    }

    #[inline(always)]
    fn op_global_set(&mut self, global: u32, src: u32, base: usize) {
        self.globals[global as usize] = self.regs[base + src as usize];
    }

    #[inline(always)]
    fn op_func_addr(&mut self, dst: u32, func: u32, base: usize) {
        self.regs[base + dst as usize] = GuestValue::Func(FuncId(func));
    }

    #[inline(always)]
    fn op_emit(&mut self, src: u32, base: usize) {
        let v = self.regs[base + src as usize];
        self.output.push(v);
    }

    /// Records a conditional branch (counters and optional trace) and
    /// returns the chosen arm's edge head. Mirrors the reference
    /// terminator arm, including the seeded-defect hooks that perturb only
    /// the aggregate counters.
    fn record_branch(&mut self, slot: u32, is_taken: bool, tk: u32, nt: u32) -> u32 {
        if let Some(sink) = self.branch_sink.as_mut() {
            sink.branch(self.fp.branch_ids[slot as usize], is_taken);
        }
        #[cfg(feature = "seeded-defects")]
        let recorded = if mfdefect::active("vm-branch-count-polarity") {
            Some(!is_taken)
        } else if mfdefect::active("vm-profile-drop-increment") && !is_taken {
            None
        } else {
            Some(is_taken)
        };
        #[cfg(not(feature = "seeded-defects"))]
        let recorded = Some(is_taken);
        if let Some(direction) = recorded {
            let hit = &mut self.branch_hits[slot as usize];
            hit.0 += 1;
            if direction {
                hit.1 += 1;
            }
        }
        if self.config.record_branch_trace {
            self.branch_trace.push(BranchEvent {
                id: self.fp.branch_ids[slot as usize],
                taken: is_taken,
                gap: self.fuel_used - self.last_branch_fuel,
            });
            self.last_branch_fuel = self.fuel_used;
        }
        if is_taken {
            tk
        } else {
            nt
        }
    }

    fn push_call(
        &mut self,
        callee: u32,
        args: (u32, u32),
        ret_dst: u32,
        indirect: bool,
        ret_pc: usize,
        base: usize,
    ) -> Result<(usize, usize), RuntimeError> {
        if self.frames.len() >= self.config.max_stack {
            return Err(RuntimeError::StackOverflow {
                limit: self.config.max_stack,
            });
        }
        let (args_at, nargs) = args;
        let f = &self.fp.funcs[callee as usize];
        let new_base = self.regs.len();
        self.regs
            .resize(new_base + f.num_regs as usize, GuestValue::Zero);
        for k in 0..nargs as usize {
            let src = self.fp.args[args_at as usize + k] as usize;
            self.regs[new_base + k] = self.regs[base + src];
        }
        // The callee's entry BlockHead emits the Pixie bump and the
        // ENTRY_EDGE_FROM coverage edge (cur_block starts at the sentinel),
        // exactly like the reference's push_call.
        self.frames.push(FlatFrame {
            ret_pc: ret_pc as u32,
            base: new_base as u32,
            ret_dst,
            cur_block: ENTRY_EDGE_FROM,
            indirect,
        });
        Ok((f.entry_pc as usize, new_base))
    }

    fn spend(&mut self) -> Result<(), RuntimeError> {
        self.fuel_used += 1;
        if self.fuel_used > self.config.fuel {
            Err(RuntimeError::OutOfFuel {
                limit: self.config.fuel,
            })
        } else {
            Ok(())
        }
    }

    fn alloc(&mut self, data: ArrayData) -> GuestValue {
        let idx = self.heap.len() as u32;
        self.heap.push(HeapObject {
            data,
            read_only: false,
        });
        GuestValue::Ref(idx)
    }

    fn check_alloc_len(&self, v: GuestValue) -> Result<usize, RuntimeError> {
        let n = want_int(v)?;
        if n < 0 || n > self.config.max_alloc {
            Err(RuntimeError::BadArrayLength { len: n })
        } else {
            Ok(n as usize)
        }
    }

    /// Precise replay of one fuel segment whose bulk charge overshot the
    /// limit: the charge is rolled back and the segment re-executes charging
    /// one fuel per component (fused ops and pairs decompose) with the limit
    /// checked before each, reproducing the reference backend's exact fault
    /// point and error — a `DivideByZero` or `TypeMismatch` mid-segment
    /// preempts `OutOfFuel` just as it would per-instruction.
    ///
    /// The segment entry condition (`fuel_before + cost > limit`) guarantees
    /// the charge for the segment's final component — a call or the
    /// terminator — always trips, so control never leaves the segment.
    #[cold]
    fn finish_precise(&mut self, mut pc: usize, base: usize, bulk: u32) -> RuntimeError {
        self.fuel_used -= u64::from(bulk);
        loop {
            let op = generalize(self.fp.code[pc]);
            pc += 1;
            match op {
                FlatOp::ConstBinop {
                    op,
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    self.regs[base + cdst as usize] = self.fp.consts[cidx as usize];
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    match eval_binop(
                        op,
                        self.regs[base + lhs as usize],
                        self.regs[base + cdst as usize],
                    ) {
                        Ok(v) => self.regs[base + dst as usize] = v,
                        Err(e) => return e,
                    }
                }
                // Pairs replay their halves as the two reference
                // instructions they stand for.
                FlatOp::PairBB {
                    ops,
                    d1,
                    l1,
                    r1,
                    d2,
                    l2,
                    r2,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_binop(BINOPS[(ops & 0xff) as usize], d1, l1, r1, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_binop(BINOPS[(ops >> 8) as usize], d2, l2, r2, base) {
                        return e;
                    }
                }
                FlatOp::PairUB {
                    ops,
                    d1,
                    s1,
                    d2,
                    l2,
                    r2,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_uhalf(ops & 0xff, d1, s1, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_binop(BINOPS[(ops >> 8) as usize], d2, l2, r2, base) {
                        return e;
                    }
                }
                FlatOp::PairBU {
                    ops,
                    d1,
                    l1,
                    r1,
                    d2,
                    s2,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_binop(BINOPS[(ops & 0xff) as usize], d1, l1, r1, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_uhalf(ops >> 8, d2, s2, base) {
                        return e;
                    }
                }
                FlatOp::PairUU {
                    ops,
                    d1,
                    s1,
                    d2,
                    s2,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_uhalf(ops & 0xff, d1, s1, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_uhalf(ops >> 8, d2, s2, base) {
                        return e;
                    }
                }
                FlatOp::PairBL {
                    ops,
                    d1,
                    l1,
                    r1,
                    ld,
                    arr,
                    idx,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_binop(BINOPS[(ops & 0xff) as usize], d1, l1, r1, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_load(ld, arr, idx, base) {
                        return e;
                    }
                }
                FlatOp::PairLB {
                    ops,
                    ld,
                    arr,
                    idx,
                    d2,
                    l2,
                    r2,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_load(ld, arr, idx, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_binop(BINOPS[(ops >> 8) as usize], d2, l2, r2, base) {
                        return e;
                    }
                }
                FlatOp::PairLL {
                    ld1,
                    arr1,
                    idx1,
                    ld2,
                    arr2,
                    idx2,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_load(ld1, arr1, idx1, base) {
                        return e;
                    }
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.op_load(ld2, arr2, idx2, base) {
                        return e;
                    }
                }
                FlatOp::CmpBranch {
                    op, dst, lhs, rhs, ..
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    match eval_binop(
                        op,
                        self.regs[base + lhs as usize],
                        self.regs[base + rhs as usize],
                    ) {
                        Ok(v) => self.regs[base + dst as usize] = v,
                        Err(e) => return e,
                    }
                    return match self.spend() {
                        Err(e) => e,
                        Ok(()) => unreachable!("fuel replay must trip at the final component"),
                    };
                }
                FlatOp::ImpliedCmpBranch { dst, val, .. } => {
                    // The implied comparison still costs its component and
                    // still writes its result before the branch component
                    // trips the limit.
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    self.regs[base + dst as usize] = GuestValue::Int(i64::from(val));
                    return match self.spend() {
                        Err(e) => e,
                        Ok(()) => unreachable!("fuel replay must trip at the final component"),
                    };
                }
                FlatOp::Call { .. }
                | FlatOp::CallIndirect { .. }
                | FlatOp::JumpHead { .. }
                | FlatOp::Branch { .. }
                | FlatOp::ImpliedBranch { .. }
                | FlatOp::JumpTable { .. }
                | FlatOp::Return { .. } => {
                    return match self.spend() {
                        Err(e) => e,
                        Ok(()) => unreachable!("fuel replay must trip at the final component"),
                    };
                }
                FlatOp::BlockHead { .. } | FlatOp::Resume { .. } => {
                    unreachable!("block heads never appear inside a fuel segment")
                }
                leaf => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.exec_leaf(leaf, base) {
                        return e;
                    }
                }
            }
        }
    }
}
