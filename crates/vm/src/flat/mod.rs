//! The flat bytecode backend: a validated [`Program`] is linearized into
//! profile-guided superblock traces and executed by a direct-dispatch
//! interpreter.
//!
//! The reference interpreter in [`crate::machine`] walks the structured IR:
//! every step re-resolves `functions[f].blocks[b].instrs[ip]`, charges fuel,
//! and allocates a fresh register `Vec` per call. This backend pre-compiles
//! the program once ([`FlatProgram::compile`]) and removes all of that from
//! the hot loop:
//!
//! * **Linear code.** Blocks become runs of u32-operand [`FlatOp`]s in one
//!   `Vec`; control transfers name [`EdgeHead`]s — per-emitted-copy records
//!   holding the target's code offset plus its Pixie slot, coverage-edge
//!   coordinates, and bulk fuel cost — so dispatch is `code[pc]` with no
//!   pointer chasing and landing on a block is a single table read.
//! * **Superblock traces.** Compilation grows traces greedily along the
//!   profile's predicted arms (`2·taken > executed`; backward-taken /
//!   forward-not-taken without a profile), seeded at loop headers found by
//!   `mfcheck`'s dominator/loop analysis. Side-entrance blocks on a trace
//!   are *tail-duplicated* under a per-function size budget so the hot path
//!   stays straight-line; every block also keeps one canonical copy that
//!   off-trace edges land on. See [`TraceConfig`].
//! * **Trace-scoped optimization.** Within a trace, a facts engine tracks
//!   comparison outcomes across copies; a compare whose outcome is implied
//!   by an earlier compare or taken edge collapses into a side-exit-free
//!   implied branch that still records its counters. Facts only flow along
//!   edges that are provably the sole entrance of the next copy.
//! * **Fused superinstructions.** A comparison `Binop` feeding the block's
//!   conditional branch becomes one `CmpBranch` op, `Const` + `Binop` (the
//!   constant on the right-hand side) becomes one `ConstBinop`, and
//!   adjacent single-component ALU/load ops pair into two-in-one dispatch
//!   ops (e.g. the FP kernels' mul+add). Fusion is transparent: fused ops
//!   still write their intermediate destination registers and decompose
//!   back into their components for fuel accounting.
//! * **Block-level fuel.** Fuel is charged in bulk at each edge head (and
//!   after each call returns) from pre-computed segment costs instead of
//!   once per instruction; see "Fuel accounting" below.
//! * **Register windows.** All frames live in one contiguous register
//!   stack, pre-sized at startup from the program's static window sum; a
//!   call reserves a window at the top and a return truncates it — no
//!   per-call allocation.
//!
//! # Fuel accounting
//!
//! The reference interpreter charges 1 fuel before each instruction and each
//! terminator, and a branch's recorded `gap` reads the fuel counter at the
//! branch. To be observably identical while charging in bulk, each block
//! copy's instruction list is split into *segments* that end after every
//! call (the call included) with the terminator closing the last segment.
//! The copy's [`EdgeHead`] charges the first segment; a [`FlatOp::Resume`]
//! placed after each call op charges the next segment when the callee
//! returns. Control only leaves a segment at its final component (a call or
//! the terminator), so at every control transfer — in particular at every
//! conditional branch, including inside callees — the bulk-charged fuel
//! equals the reference's per-instruction count exactly.
//!
//! When a bulk charge overshoots the limit, the charge is rolled back and
//! the segment is re-executed charging per component
//! (`finish_precise`), reproducing the reference's exact fault
//! point and error — including cases where a `DivideByZero` or
//! `TypeMismatch` preempts `OutOfFuel` mid-segment.

mod compile;
mod interp;
mod ops;
mod trace;

use std::sync::Arc;

use trace_ir::{BranchId, Program};

use self::compile::Flattener;
use self::interp::FlatInterp;
use self::ops::{EdgeHead, FlatOp};
pub use self::trace::{confidence_digest, TraceConfig};
use crate::counters::BranchCounts;
use crate::error::RuntimeError;
use crate::machine::{CoverageSink, Run, VmConfig};
use crate::value::{GuestValue, Input};

/// Per-table jump-table targets, resolved to edge heads.
#[derive(Debug)]
struct TableData {
    targets: Vec<u32>,
    default: u32,
}

/// Per-function metadata of the flattened program.
#[derive(Debug)]
struct FlatFunc {
    entry_pc: u32,
    num_regs: u32,
    num_params: u32,
    name: String,
}

/// A [`Program`] pre-compiled for the flat backend.
///
/// Compile once, run many times: compilation is deterministic for a given
/// program, profile, and [`TraceConfig`], and running never mutates the
/// compiled artifact.
#[derive(Debug)]
pub struct FlatProgram {
    code: Vec<FlatOp>,
    /// One entry per emitted block copy; control transfers index this table.
    heads: Vec<EdgeHead>,
    consts: Vec<GuestValue>,
    args: Vec<u32>,
    tables: Vec<TableData>,
    funcs: Vec<FlatFunc>,
    entry: u32,
    globals: usize,
    const_arrays: Vec<Arc<Vec<i64>>>,
    /// Blocks per function — the shape of a fresh
    /// [`crate::counters::PixieCounts`].
    block_shape: Vec<usize>,
    /// Dense branch-counter slot → source-level branch id. The hot loop
    /// bumps flat per-slot counters; they fold back into the keyed
    /// [`BranchCounts`] once, when the run finishes.
    branch_ids: Vec<BranchId>,
    /// Sum of all static register windows (capped) — the interpreter's
    /// initial register-stack capacity.
    prealloc_regs: usize,
}

impl FlatProgram {
    /// Compiles `program` with default trace formation and no profile
    /// (BTFN-predicted trace growth).
    pub fn compile(program: &Program) -> Self {
        Self::compile_with(program, None, TraceConfig::default())
    }

    /// Compiles `program` growing traces along the profile's likelier
    /// branch arms: an arm is predicted taken when `2·taken > executed` in
    /// `profile`. Trace selection never changes observable behavior.
    pub fn compile_with_profile(program: &Program, profile: &BranchCounts) -> Self {
        Self::compile_with(program, Some(profile), TraceConfig::default())
    }

    /// Compiles `program` with explicit trace configuration and an optional
    /// profile driving trace growth (BTFN when absent). With
    /// `trace.enabled == false` this degenerates to PR 4's greedy
    /// fall-through layout: no duplication, no implied branches.
    pub fn compile_with(
        program: &Program,
        profile: Option<&BranchCounts>,
        trace: TraceConfig,
    ) -> Self {
        Flattener::new(program, profile, trace).build()
    }

    /// [`FlatProgram::compile_with`] for profiles reused across a program
    /// edit: sites in `low_confidence` (the degraded list of a
    /// version-skew remap — see `mfstale`) keep their counters but are
    /// *not* trusted to steer trace growth; they predict by
    /// backward-taken/forward-not-taken exactly as if unprofiled. Callers
    /// should set `trace.confidence_digest` to
    /// [`confidence_digest`]`(low_confidence)` so run keys distinguish the
    /// degraded compilation. An empty `low_confidence` compiles
    /// identically to [`FlatProgram::compile_with`].
    pub fn compile_with_confidence(
        program: &Program,
        profile: Option<&BranchCounts>,
        low_confidence: &[BranchId],
        trace: TraceConfig,
    ) -> Self {
        Flattener::with_confidence(program, profile, low_confidence, trace).build()
    }

    /// Number of ops in the compiled code stream (diagnostics and benchmark
    /// metadata; fused patterns make this smaller than the IR op count,
    /// tail duplication pushes the other way).
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Runs the program's entry function on `inputs` — the flat-backend
    /// equivalent of [`crate::Vm::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as the
    /// reference backend does.
    pub fn run(&self, config: VmConfig, inputs: &[Input]) -> Result<Run, RuntimeError> {
        FlatInterp::new(self, config).run(inputs)
    }

    /// [`FlatProgram::run`], reporting every traversed control-flow edge to
    /// `sink` — the flat-backend equivalent of [`crate::Vm::run_observed`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as the
    /// reference backend does.
    pub fn run_observed(
        &self,
        config: VmConfig,
        inputs: &[Input],
        sink: &mut dyn CoverageSink,
    ) -> Result<Run, RuntimeError> {
        let mut interp = FlatInterp::new(self, config);
        interp.observer = Some(sink);
        interp.run(inputs)
    }

    /// [`FlatProgram::run`], streaming every conditional branch outcome to
    /// `sink` — the flat-backend equivalent of [`crate::Vm::run_branches`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as the
    /// reference backend does.
    pub fn run_branches(
        &self,
        config: VmConfig,
        inputs: &[Input],
        sink: &mut dyn crate::BranchSink,
    ) -> Result<Run, RuntimeError> {
        let mut interp = FlatInterp::new(self, config);
        interp.branch_sink = Some(sink);
        interp.run(inputs)
    }
}
