//! Proves const arrays are shared, not cloned per run: after a warmup run
//! has paid one-time costs (the flat backend's flatten pass, vector
//! growth), a further run of a program with a large const array must
//! allocate far less than the array's size, on both backends.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
use trace_ir::BinOp;
use trace_vm::{Backend, Input, Vm, VmConfig};

/// Forwards to the system allocator, tallying allocated bytes.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is a relaxed atomic
// with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const ARRAY_LEN: usize = 1 << 16;
const ARRAY_BYTES: u64 = (ARRAY_LEN * 8) as u64;

/// `main(i) { a = const_array_0; emit a[i] + len(a); return it }` over a
/// 64 Ki-element interned array.
fn big_const_array_program() -> trace_ir::Program {
    let mut pb = ProgramBuilder::new();
    let data: Vec<i64> = (0..ARRAY_LEN as i64).collect();
    let idx = pb.intern_array(data);
    let mut f = FunctionBuilder::new("main", 1);
    let i = f.param(0);
    let a = f.const_array(idx);
    let v = f.load(a, i);
    let len = f.array_len(a);
    let s = f.binop(BinOp::Add, v, len);
    f.emit_value(s);
    f.ret(Some(s));
    pb.add_function(f.finish());
    pb.finish("main").unwrap()
}

#[test]
fn runs_do_not_clone_const_arrays() {
    let program = big_const_array_program();
    for backend in Backend::ALL {
        let vm = Vm::with_config(
            &program,
            VmConfig {
                backend,
                ..VmConfig::default()
            },
        );
        let expected = vm.run(&[Input::Int(7)]).expect("warmup run");
        let before = ALLOCATED.load(Ordering::Relaxed);
        let run = vm.run(&[Input::Int(7)]).expect("measured run");
        let during = ALLOCATED.load(Ordering::Relaxed) - before;
        assert_eq!(run, expected, "{backend}: runs not deterministic");
        assert!(
            during < ARRAY_BYTES / 8,
            "{backend}: a run allocated {during} bytes — on the order of \
             the {ARRAY_BYTES}-byte const array, so it is being cloned \
             per run instead of shared"
        );
    }
}
