//! Trace-formation boundary tests: tail-duplicated superblock code must be
//! observably identical to the reference backend at every fuel limit and
//! every tail-duplication budget, including runtime faults that fire inside
//! a *duplicated* copy of a merge block (mid-trace side-exit territory).
//!
//! The deterministic tests pin the interesting boundaries; the property
//! test sweeps generated diamond-loop programs across arbitrary budgets.

use proptest::prelude::*;

use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
use trace_ir::{BinOp, BranchKind, Program};
use trace_vm::{Backend, FlatProgram, Input, Run, RuntimeError, TraceConfig, Vm, VmConfig};

fn config(backend: Backend, fuel: u64, trace: TraceConfig) -> VmConfig {
    VmConfig {
        backend,
        fuel,
        record_branch_trace: true,
        trace,
        ..VmConfig::default()
    }
}

fn run_with(
    program: &Program,
    backend: Backend,
    fuel: u64,
    trace: TraceConfig,
    input: i64,
) -> Result<Run, RuntimeError> {
    Vm::with_config(program, config(backend, fuel, trace)).run(&[Input::Int(input)])
}

/// A loop around a diamond whose merge block carries real work — the shape
/// trace formation tail-duplicates: both arm traces want the merge block,
/// so one gets the canonical copy and the other a duplicate (budget
/// permitting).
///
/// ```text
/// main(n):
///   i = 0; s = 0
///   head:  odd = i & 1; branch odd -> a | b
///   a:     t = s * 2;  jump join
///   b:     t = s + 3;  jump join
///   join:  <pads adds> s = t + i; q = 100 / (den_base - i); s = s + q
///          i = i + 1; branch (i < n) -> head | exit
///   exit:  emit s; return s
/// ```
///
/// The division faults when the loop reaches `i == den_base`, i.e. inside
/// the merge block's code — in whichever *copy* the faulting iteration's
/// arm routed through.
fn diamond_loop_program(pads: u32, den_base: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let n = f.param(0);
    let zero = f.const_int(0);
    let i = f.mov(zero);
    let s = f.mov(zero);
    let head = f.new_block();
    let arm_a = f.new_block();
    let arm_b = f.new_block();
    let join = f.new_block();
    let exit = f.new_block();
    f.jump(head);

    f.switch_to(head);
    let one = f.const_int(1);
    let odd = f.binop(BinOp::And, i, one);
    f.branch(odd, arm_a, arm_b, 1, BranchKind::If);

    f.switch_to(arm_a);
    let two = f.const_int(2);
    let ta = f.binop(BinOp::Mul, s, two);
    let t = f.mov(ta);
    f.jump(join);

    f.switch_to(arm_b);
    let three = f.const_int(3);
    let tb = f.binop(BinOp::Add, s, three);
    f.mov_to(t, tb);
    f.jump(join);

    f.switch_to(join);
    let mut acc = t;
    for _ in 0..pads {
        acc = f.binop(BinOp::Add, acc, one);
    }
    let si = f.binop(BinOp::Add, acc, i);
    f.mov_to(s, si);
    let hundred = f.const_int(100);
    let base = f.const_int(den_base);
    let den = f.binop(BinOp::Sub, base, i);
    let q = f.binop(BinOp::Div, hundred, den);
    let sq = f.binop(BinOp::Add, s, q);
    f.mov_to(s, sq);
    let i2 = f.binop(BinOp::Add, i, one);
    f.mov_to(i, i2);
    let again = f.binop(BinOp::Lt, i, n);
    f.branch(again, head, exit, 2, BranchKind::LoopBack);

    f.switch_to(exit);
    f.emit_value(s);
    f.ret(Some(s));
    pb.add_function(f.finish());
    pb.finish("main").unwrap()
}

const BUDGETS: &[u32] = &[0, 1, 8, 192, 10_000];

fn trace_on(tail_dup_budget: u32) -> TraceConfig {
    TraceConfig {
        enabled: true,
        tail_dup_budget,
        ..TraceConfig::default()
    }
}

#[test]
fn diamond_merge_block_is_tail_duplicated() {
    // The merge block must actually be duplicated once the budget covers
    // it — otherwise the sweeps below exercise nothing. Budget 0 forbids
    // all duplication; an ample budget must grow the emitted code.
    let program = diamond_loop_program(3, 1_000);
    let no_dup = FlatProgram::compile_with(&program, None, trace_on(0));
    let dup = FlatProgram::compile_with(&program, None, trace_on(10_000));
    assert!(
        dup.op_count() > no_dup.op_count(),
        "tail duplication did not fire: {} ops with budget 0 vs {} ample",
        no_dup.op_count(),
        dup.op_count()
    );
}

/// Sweeps every fuel limit in `0..=upper` at every budget and asserts both
/// backends return the same `Result` — identical `Run`s (stats, traces,
/// output) on success, identical errors on faults.
fn assert_sweep_identical(program: &Program, input: i64, upper: u64, what: &str) {
    for &budget in BUDGETS {
        let trace = trace_on(budget);
        for fuel in 0..=upper {
            let reference = run_with(program, Backend::Reference, fuel, trace, input);
            let flat = run_with(program, Backend::Flat, fuel, trace, input);
            assert_eq!(
                reference, flat,
                "{what}: results differ at fuel {fuel}, budget {budget}"
            );
        }
    }
}

#[test]
fn fuel_sweep_identical_through_tail_duplicated_merge() {
    // Denominator never hits zero: a clean run at every fuel boundary.
    let program = diamond_loop_program(2, 1_000);
    let full = run_with(&program, Backend::Reference, u64::MAX, trace_on(192), 6)
        .expect("completes with ample fuel")
        .stats
        .total_instrs;
    assert_sweep_identical(&program, 6, full + 1, "diamond_clean");
    assert!(run_with(&program, Backend::Flat, full, trace_on(192), 6).is_ok());
    assert_eq!(
        run_with(&program, Backend::Flat, full - 1, trace_on(192), 6),
        Err(RuntimeError::OutOfFuel { limit: full - 1 })
    );
}

#[test]
fn divide_by_zero_mid_trace_outranks_nothing_and_races_fuel() {
    // The 4th iteration (i == 3, an odd iteration, so the *duplicated*
    // path through one arm) divides by zero inside the merge block. Low
    // fuel limits must fault OutOfFuel first; ample limits must surface
    // the division fault — identically on both backends, at every budget.
    let program = diamond_loop_program(2, 3);
    for &budget in BUDGETS {
        assert_eq!(
            run_with(&program, Backend::Flat, u64::MAX, trace_on(budget), 10),
            Err(RuntimeError::DivideByZero),
            "budget {budget}"
        );
    }
    assert_eq!(
        run_with(&program, Backend::Reference, u64::MAX, trace_on(0), 10),
        Err(RuntimeError::DivideByZero)
    );
    // The faulting run is short; 120 comfortably covers it, so the sweep
    // crosses the fuel-vs-division precedence boundary at every budget.
    assert_sweep_identical(&program, 10, 120, "diamond_div_fault");
}

#[test]
fn low_confidence_sites_predict_as_if_unprofiled() {
    use trace_ir::BranchId;
    let program = diamond_loop_program(3, 1_000);
    // A profile that contradicts BTFN on both sites: the forward diamond
    // branch always taken, the backward loop edge never taken.
    let mut profile = trace_vm::BranchCounts::new();
    profile.add(BranchId(0), 100, 100);
    profile.add(BranchId(1), 100, 0);
    let tcfg = trace_on(192);
    let trusted = FlatProgram::compile_with(&program, Some(&profile), tcfg);
    let unprofiled = FlatProgram::compile_with(&program, None, tcfg);
    let degraded = FlatProgram::compile_with_confidence(
        &program,
        Some(&profile),
        &[BranchId(0), BranchId(1)],
        tcfg,
    );
    // Degrading every profiled site reproduces the unprofiled compilation
    // exactly; trusting the contrarian profile does not.
    assert_eq!(format!("{degraded:?}"), format!("{unprofiled:?}"));
    assert_ne!(format!("{degraded:?}"), format!("{trusted:?}"));
    // An empty low-confidence set is the plain profiled compilation.
    let none = FlatProgram::compile_with_confidence(&program, Some(&profile), &[], tcfg);
    assert_eq!(format!("{none:?}"), format!("{trusted:?}"));
    // Layout choices never change observable behavior.
    let reference = run_with(&program, Backend::Reference, u64::MAX, tcfg, 9);
    for fp in [&trusted, &unprofiled, &degraded] {
        assert_eq!(
            fp.run(config(Backend::Flat, u64::MAX, tcfg), &[Input::Int(9)]),
            reference
        );
    }
}

#[test]
fn confidence_digest_is_canonical() {
    use trace_ir::BranchId;
    use trace_vm::confidence_digest;
    assert_eq!(confidence_digest(&[]), 0);
    let a = confidence_digest(&[BranchId(1), BranchId(2)]);
    let b = confidence_digest(&[BranchId(2), BranchId(1), BranchId(2)]);
    assert_eq!(a, b, "digest must be order- and duplicate-insensitive");
    assert_ne!(a, 0);
    assert_ne!(a, confidence_digest(&[BranchId(1)]));
}

#[test]
fn disabling_traces_is_observably_identical_too() {
    let program = diamond_loop_program(4, 1_000);
    let off = TraceConfig {
        enabled: false,
        tail_dup_budget: 192,
        ..TraceConfig::default()
    };
    let on = trace_on(192);
    let a = run_with(&program, Backend::Flat, u64::MAX, off, 9);
    let b = run_with(&program, Backend::Flat, u64::MAX, on, 9);
    let r = run_with(&program, Backend::Reference, u64::MAX, on, 9);
    assert_eq!(a, b);
    assert_eq!(a, r);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trace formation preserves the full observable `Run` — output,
    /// result, `RunStats`, branch trace — at *any* tail-duplication
    /// budget, for clean runs, mid-run division faults, and fuel faults
    /// alike.
    #[test]
    fn run_stats_preserved_at_any_budget(
        pads in 0u32..6,
        den_base in 2i64..40,
        input in 1i64..12,
        budget in 0u32..512,
        fuel_divisor in 1u64..4,
    ) {
        let program = diamond_loop_program(pads, den_base);
        let trace = trace_on(budget);
        let reference = run_with(&program, Backend::Reference, u64::MAX, trace, input);
        let flat = run_with(&program, Backend::Flat, u64::MAX, trace, input);
        prop_assert_eq!(&reference, &flat);

        // And again under a fuel limit that lands somewhere mid-run.
        let spent = match &reference {
            Ok(run) => run.stats.total_instrs,
            Err(_) => 64,
        };
        let fuel = (spent / fuel_divisor).max(1);
        let reference = run_with(&program, Backend::Reference, fuel, trace, input);
        let flat = run_with(&program, Backend::Flat, fuel, trace, input);
        prop_assert_eq!(reference, flat);
    }
}
