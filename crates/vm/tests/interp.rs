//! Integration tests for the interpreter: semantics, counters, and faults.

use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
use trace_ir::{BinOp, BranchId, BranchKind, Program, UnOp};
use trace_vm::{Input, RuntimeError, Vm, VmConfig};

/// Builds: `main(n) { s = 0; for i in 0..n { s += i } ; emit s; return s }`
/// as a bottom-tested loop (the branch's taken direction stays in the loop).
fn sum_loop_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let n = f.param(0);
    let zero = f.const_int(0);
    let s = f.mov(zero);
    let i = f.mov(zero);
    let body = f.new_block();
    let test = f.new_block();
    let exit = f.new_block();

    // Guard: skip the loop entirely when n <= 0.
    let enter = f.binop(BinOp::Lt, i, n);
    f.branch(enter, body, exit, 1, BranchKind::If);

    f.switch_to(body);
    let s2 = f.binop(BinOp::Add, s, i);
    f.mov_to(s, s2);
    let one = f.const_int(1);
    let i2 = f.binop(BinOp::Add, i, one);
    f.mov_to(i, i2);
    f.jump(test);

    f.switch_to(test);
    let again = f.binop(BinOp::Lt, i, n);
    f.branch(again, body, exit, 2, BranchKind::LoopBack);

    f.switch_to(exit);
    f.emit_value(s);
    f.ret(Some(s));

    pb.add_function(f.finish());
    pb.finish("main").unwrap()
}

#[test]
fn sum_loop_computes_and_counts() {
    let p = sum_loop_program();
    let run = Vm::new(&p).run(&[Input::Int(10)]).unwrap();
    assert_eq!(run.output_ints(), vec![45]);

    // Guard branch: executed once, taken once. Loop branch: 10 executions,
    // 9 taken (stays) + 1 not-taken (exits).
    assert_eq!(run.stats.branches.get(BranchId(0)), (1, 1));
    assert_eq!(run.stats.branches.get(BranchId(1)), (10, 9));
    // One jump per body iteration.
    assert_eq!(run.stats.events.jumps, 10);
    assert_eq!(run.stats.events.direct_calls, 0);
}

#[test]
fn zero_trip_loop() {
    let p = sum_loop_program();
    let run = Vm::new(&p).run(&[Input::Int(0)]).unwrap();
    assert_eq!(run.output_ints(), vec![0]);
    assert_eq!(run.stats.branches.get(BranchId(0)), (1, 0));
    assert_eq!(run.stats.branches.get(BranchId(1)), (0, 0));
}

#[test]
fn pixie_counts_reconcile_with_fuel() {
    let p = sum_loop_program();
    let run = Vm::new(&p).run(&[Input::Int(25)]).unwrap();
    assert_eq!(run.stats.pixie.total_instrs(&p), run.stats.total_instrs);
}

#[test]
fn determinism_bit_for_bit() {
    let p = sum_loop_program();
    let a = Vm::new(&p).run(&[Input::Int(17)]).unwrap();
    let b = Vm::new(&p).run(&[Input::Int(17)]).unwrap();
    assert_eq!(a, b);
}

fn call_program(indirect: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let double = pb.declare_function("double");
    {
        let mut f = FunctionBuilder::new("double", 1);
        let two = f.const_int(2);
        let r = f.binop(BinOp::Mul, f.param(0), two);
        f.ret(Some(r));
        pb.define_function(double, f.finish());
    }
    let mut m = FunctionBuilder::new("main", 1);
    let x = m.param(0);
    let y = if indirect {
        let fp = m.func_addr(double);
        m.call_indirect(fp, vec![x])
    } else {
        m.call(double, vec![x])
    };
    m.emit_value(y);
    m.ret(Some(y));
    pb.add_function(m.finish());
    pb.finish("main").unwrap()
}

#[test]
fn direct_call_events() {
    let p = call_program(false);
    let run = Vm::new(&p).run(&[Input::Int(21)]).unwrap();
    assert_eq!(run.output_ints(), vec![42]);
    assert_eq!(run.stats.events.direct_calls, 1);
    assert_eq!(run.stats.events.direct_returns, 1);
    assert_eq!(run.stats.events.indirect_calls, 0);
    assert_eq!(run.stats.events.indirect_returns, 0);
}

#[test]
fn indirect_call_events() {
    let p = call_program(true);
    let run = Vm::new(&p).run(&[Input::Int(21)]).unwrap();
    assert_eq!(run.output_ints(), vec![42]);
    assert_eq!(run.stats.events.indirect_calls, 1);
    assert_eq!(run.stats.events.indirect_returns, 1);
    assert_eq!(run.stats.events.direct_calls, 0);
    assert_eq!(run.stats.events.unavoidable(), 2);
}

#[test]
fn recursion_works() {
    // fact(n) = n <= 1 ? 1 : n * fact(n-1)
    let mut pb = ProgramBuilder::new();
    let fact = pb.declare_function("fact");
    {
        let mut f = FunctionBuilder::new("fact", 1);
        let n = f.param(0);
        let one = f.const_int(1);
        let base = f.new_block();
        let rec = f.new_block();
        let c = f.binop(BinOp::Le, n, one);
        f.branch(c, base, rec, 1, BranchKind::If);
        f.switch_to(base);
        f.ret(Some(one));
        f.switch_to(rec);
        let nm1 = f.binop(BinOp::Sub, n, one);
        let sub = f.call(fact, vec![nm1]);
        let r = f.binop(BinOp::Mul, n, sub);
        f.ret(Some(r));
        pb.define_function(fact, f.finish());
    }
    let mut m = FunctionBuilder::new("main", 1);
    let r = m.call(fact, vec![m.param(0)]);
    m.emit_value(r);
    m.ret(Some(r));
    pb.add_function(m.finish());
    let p = pb.finish("main").unwrap();

    let run = Vm::new(&p).run(&[Input::Int(10)]).unwrap();
    assert_eq!(run.output_ints(), vec![3628800]);
    assert_eq!(run.stats.events.direct_calls, 10);
    assert_eq!(run.stats.events.direct_returns, 10);
}

#[test]
fn arrays_and_globals() {
    let mut pb = ProgramBuilder::new();
    let g = pb.add_global("acc");
    let mut f = FunctionBuilder::new("main", 1);
    let input = f.param(0);
    let len = f.array_len(input);
    f.global_set(g, len);
    let ten = f.const_int(10);
    let arr = f.new_int_array(ten);
    let zero = f.const_int(0);
    let v = f.load(input, zero);
    f.store(arr, zero, v);
    let back = f.load(arr, zero);
    let acc = f.global_get(g);
    let sum = f.binop(BinOp::Add, back, acc);
    f.emit_value(sum);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();

    let run = Vm::new(&p).run(&[Input::Ints(vec![7, 8, 9])]).unwrap();
    // input[0] + len(input) = 7 + 3
    assert_eq!(run.output_ints(), vec![10]);
    assert_eq!(run.result, None);
}

#[test]
fn float_arrays_and_math() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let input = f.param(0);
    let zero = f.const_int(0);
    let x = f.load(input, zero);
    let r = f.unop(UnOp::Sqrt, x);
    f.emit_value(r);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let run = Vm::new(&p).run(&[Input::Floats(vec![9.0])]).unwrap();
    assert_eq!(run.output_floats(), vec![3.0]);
}

#[test]
fn const_array_is_read_only() {
    let mut pb = ProgramBuilder::new();
    let lit = pb.intern_str("hi");
    let mut f = FunctionBuilder::new("main", 0);
    let arr = f.const_array(lit);
    let zero = f.const_int(0);
    let v = f.load(arr, zero);
    f.emit_value(v);
    f.store(arr, zero, zero);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[]).unwrap_err();
    assert_eq!(err, RuntimeError::ReadOnlyStore);
}

#[test]
fn jump_table_counts_indirect_jump() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let x = f.param(0);
    let b0 = f.new_block();
    let b1 = f.new_block();
    let dflt = f.new_block();
    let out = f.new_block();
    f.jump_table(x, vec![b0, b1], dflt);
    for (b, v) in [(b0, 100), (b1, 101), (dflt, 999)] {
        f.switch_to(b);
        let c = f.const_int(v);
        f.emit_value(c);
        f.jump(out);
    }
    f.switch_to(out);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();

    let run = Vm::new(&p).run(&[Input::Int(1)]).unwrap();
    assert_eq!(run.output_ints(), vec![101]);
    assert_eq!(run.stats.events.indirect_jumps, 1);
    let run = Vm::new(&p).run(&[Input::Int(7)]).unwrap();
    assert_eq!(run.output_ints(), vec![999]);
}

#[test]
fn select_is_counted() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let a = f.const_int(10);
    let b = f.const_int(20);
    let r = f.select(f.param(0), a, b);
    f.emit_value(r);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let run = Vm::new(&p).run(&[Input::Int(0)]).unwrap();
    assert_eq!(run.output_ints(), vec![20]);
    assert_eq!(run.stats.events.selects, 1);
    assert!(run.stats.select_ratio() > 0.0);
}

#[test]
fn faults_are_reported() {
    // index out of bounds
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let bad = f.const_int(99);
    let v = f.load(f.param(0), bad);
    f.emit_value(v);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[Input::Ints(vec![1, 2])]).unwrap_err();
    assert_eq!(err, RuntimeError::IndexOutOfBounds { index: 99, len: 2 });
}

#[test]
fn divide_by_zero_faults() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let zero = f.const_int(0);
    let r = f.binop(BinOp::Div, f.param(0), zero);
    f.emit_value(r);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[Input::Int(1)]).unwrap_err();
    assert_eq!(err, RuntimeError::DivideByZero);
}

#[test]
fn fuel_limit_stops_infinite_loop() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0);
    let spin = f.new_block();
    f.jump(spin);
    f.switch_to(spin);
    f.jump(spin);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let vm = Vm::with_config(
        &p,
        VmConfig {
            fuel: 1000,
            ..VmConfig::default()
        },
    );
    let err = vm.run(&[]).unwrap_err();
    assert_eq!(err, RuntimeError::OutOfFuel { limit: 1000 });
}

#[test]
fn stack_limit_stops_runaway_recursion() {
    let mut pb = ProgramBuilder::new();
    let f_id = pb.declare_function("f");
    let mut f = FunctionBuilder::new("f", 0);
    f.call_void(f_id, vec![]);
    f.ret(None);
    pb.define_function(f_id, f.finish());
    let mut m = FunctionBuilder::new("main", 0);
    m.call_void(f_id, vec![]);
    m.ret(None);
    pb.add_function(m.finish());
    let p = pb.finish("main").unwrap();
    let vm = Vm::with_config(
        &p,
        VmConfig {
            max_stack: 64,
            ..VmConfig::default()
        },
    );
    let err = vm.run(&[]).unwrap_err();
    assert_eq!(err, RuntimeError::StackOverflow { limit: 64 });
}

#[test]
fn entry_arity_checked() {
    let p = sum_loop_program();
    let err = Vm::new(&p).run(&[]).unwrap_err();
    assert_eq!(
        err,
        RuntimeError::BadEntryArity {
            got: 0,
            expected: 1
        }
    );
}

#[test]
fn type_mismatch_on_branch_condition() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0);
    let c = f.const_float(1.0);
    let t = f.new_block();
    let e = f.new_block();
    f.branch(c, t, e, 1, BranchKind::If);
    f.switch_to(t);
    f.ret(None);
    f.switch_to(e);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[]).unwrap_err();
    assert!(matches!(err, RuntimeError::TypeMismatch { .. }));
}

#[test]
fn wrapping_arithmetic_does_not_panic() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0);
    let max = f.const_int(i64::MAX);
    let one = f.const_int(1);
    let wrapped = f.binop(BinOp::Add, max, one);
    f.emit_value(wrapped);
    let min = f.const_int(i64::MIN);
    let neg = f.unop(UnOp::Neg, min);
    f.emit_value(neg);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let run = Vm::new(&p).run(&[]).unwrap();
    assert_eq!(run.output_ints(), vec![i64::MIN, i64::MIN]);
}

#[test]
fn shift_amounts_are_masked() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0);
    let one = f.const_int(1);
    let big = f.const_int(65);
    let r = f.binop(BinOp::Shl, one, big);
    f.emit_value(r);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let run = Vm::new(&p).run(&[]).unwrap();
    assert_eq!(run.output_ints(), vec![2]); // 65 & 63 == 1
}

#[test]
fn indirect_call_through_non_function_faults() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0);
    let x = f.const_int(7);
    let r = f.call_indirect(x, vec![]);
    f.emit_value(r);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[]).unwrap_err();
    assert_eq!(err, RuntimeError::BadIndirectTarget { found: "int" });
}

#[test]
fn indirect_call_arity_checked_at_runtime() {
    let mut pb = ProgramBuilder::new();
    let two_params = pb.declare_function("needs_two");
    {
        let mut f = FunctionBuilder::new("needs_two", 2);
        let s = f.binop(BinOp::Add, f.param(0), f.param(1));
        f.ret(Some(s));
        pb.define_function(two_params, f.finish());
    }
    let mut m = FunctionBuilder::new("main", 0);
    let fp = m.func_addr(two_params);
    let one = m.const_int(1);
    let r = m.call_indirect(fp, vec![one]);
    m.emit_value(r);
    m.ret(None);
    pb.add_function(m.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[]).unwrap_err();
    assert_eq!(
        err,
        RuntimeError::IndirectArityMismatch {
            callee: "needs_two".to_string(),
            got: 1,
            expected: 2,
        }
    );
}

#[test]
fn negative_array_length_faults() {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0);
    let n = f.const_int(-4);
    let arr = f.new_int_array(n);
    let z = f.const_int(0);
    let v = f.load(arr, z);
    f.emit_value(v);
    f.ret(None);
    pb.add_function(f.finish());
    let p = pb.finish("main").unwrap();
    let err = Vm::new(&p).run(&[]).unwrap_err();
    assert_eq!(err, RuntimeError::BadArrayLength { len: -4 });
}

#[test]
fn branch_trace_gaps_sum_close_to_total() {
    use trace_vm::VmConfig;
    let p = sum_loop_program();
    let run = Vm::with_config(
        &p,
        VmConfig {
            record_branch_trace: true,
            ..VmConfig::default()
        },
    )
    .run(&[Input::Int(40)])
    .unwrap();
    let gap_sum: u64 = run.branch_trace.iter().map(|e| e.gap).sum();
    // Gaps cover everything from the start through the final branch; only
    // the post-loop tail (emit + return) is outside any gap.
    assert!(gap_sum <= run.stats.total_instrs);
    assert!(gap_sum + 10 >= run.stats.total_instrs);
}
