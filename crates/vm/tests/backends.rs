//! Cross-backend boundary tests: the flat backend must be observably
//! identical to the reference at *every* fuel limit, including limits that
//! land mid-block (forcing the flat backend's precise replay of a
//! bulk-charged segment), at calls and resumes, and at limits where a
//! runtime fault races the fuel fault.

use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
use trace_ir::{BinOp, BranchKind, Program};
use trace_vm::{Backend, Input, Run, RuntimeError, Vm, VmConfig};

fn config(backend: Backend, fuel: u64) -> VmConfig {
    VmConfig {
        backend,
        fuel,
        record_branch_trace: true,
        ..VmConfig::default()
    }
}

fn run_on(program: &Program, backend: Backend, fuel: u64) -> Result<Run, RuntimeError> {
    Vm::with_config(program, config(backend, fuel)).run(&[Input::Int(4)])
}

/// `main(n) { s = 0; i = 0; do { s = s + helper(i); i = i + 1 } while
/// (i < n); emit s; return s }` with `helper(x) = x * 2 + 1` — loops,
/// branches, calls, and post-call resume segments, so a fuel sweep crosses
/// every segment kind the flat backend charges.
fn call_loop_program() -> Program {
    let mut pb = ProgramBuilder::new();

    let mut h = FunctionBuilder::new("helper", 1);
    let x = h.param(0);
    let two = h.const_int(2);
    let d = h.binop(BinOp::Mul, x, two);
    let one = h.const_int(1);
    let r = h.binop(BinOp::Add, d, one);
    h.ret(Some(r));
    let helper = pb.add_function(h.finish());

    let mut f = FunctionBuilder::new("main", 1);
    let n = f.param(0);
    let zero = f.const_int(0);
    let s = f.mov(zero);
    let i = f.mov(zero);
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(body);

    f.switch_to(body);
    let hv = f.call(helper, vec![i]);
    let s2 = f.binop(BinOp::Add, s, hv);
    f.mov_to(s, s2);
    let one = f.const_int(1);
    let i2 = f.binop(BinOp::Add, i, one);
    f.mov_to(i, i2);
    let again = f.binop(BinOp::Lt, i, n);
    f.branch(again, body, exit, 1, BranchKind::LoopBack);

    f.switch_to(exit);
    f.emit_value(s);
    f.ret(Some(s));
    pb.add_function(f.finish());
    pb.finish("main").unwrap()
}

/// `main(n) { a = 10; b = n - n; pad...; emit a / b }` — the divide by
/// zero sits behind a few padding instructions, so some fuel limits fault
/// on fuel first and others reach the division inside a segment whose bulk
/// charge already overshot (fault precedence inside the precise replay).
fn div_fault_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 1);
    let n = f.param(0);
    let ten = f.const_int(10);
    let a = f.mov(ten);
    let b = f.binop(BinOp::Sub, n, n);
    let pad = f.binop(BinOp::Add, a, a);
    let pad2 = f.binop(BinOp::Mul, pad, pad);
    f.emit_value(pad2);
    let q = f.binop(BinOp::Div, a, b);
    f.emit_value(q);
    f.ret(Some(q));
    pb.add_function(f.finish());
    pb.finish("main").unwrap()
}

/// Sweeps every fuel limit in `0..=upper` and asserts both backends return
/// the *same* `Result` — identical `Run`s (stats, traces, output) on
/// success and identical errors on faults.
fn assert_fuel_sweep_identical(program: &Program, upper: u64, what: &str) {
    for fuel in 0..=upper {
        let reference = run_on(program, Backend::Reference, fuel);
        let flat = run_on(program, Backend::Flat, fuel);
        assert_eq!(reference, flat, "{what}: results differ at fuel {fuel}");
    }
}

#[test]
fn fuel_sweep_identical_across_call_loop() {
    let program = call_loop_program();
    let full = run_on(&program, Backend::Reference, u64::MAX)
        .expect("completes with ample fuel")
        .stats
        .total_instrs;
    assert!(full > 10, "call_loop too small to sweep");
    assert_fuel_sweep_identical(&program, full + 1, "call_loop");
    // The sweep's top end must actually complete, and one below must not.
    assert!(run_on(&program, Backend::Flat, full).is_ok());
    assert_eq!(
        run_on(&program, Backend::Flat, full - 1),
        Err(RuntimeError::OutOfFuel { limit: full - 1 })
    );
}

#[test]
fn fuel_sweep_identical_with_mid_block_fault() {
    let program = div_fault_program();
    // The program is a single short block that always faults; 20 exceeds
    // its full cost, so the sweep covers every boundary including ample.
    assert_fuel_sweep_identical(&program, 20, "div_fault_sweep");
    // With ample fuel both backends must report the division fault itself.
    assert_eq!(
        run_on(&program, Backend::Flat, u64::MAX),
        Err(RuntimeError::DivideByZero)
    );
    assert_eq!(
        run_on(&program, Backend::Reference, u64::MAX),
        Err(RuntimeError::DivideByZero)
    );
}

#[test]
fn flat_backend_is_deterministic() {
    let program = call_loop_program();
    let a = run_on(&program, Backend::Flat, u64::MAX);
    let b = run_on(&program, Backend::Flat, u64::MAX);
    assert_eq!(a, b);
}
