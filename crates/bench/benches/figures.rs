//! Benchmarks regenerating the paper's figures (1a/1b, 2a/2b, 3a/3b).
//!
//! Figure 3 is the expensive one: it evaluates the full cross-dataset
//! matrix (every dataset predicting every other dataset of its program).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mfbench::{collect, fig1_rows, fig2_rows, fig3_rows, SuiteRuns};
use mfwork::Group;

fn suite_runs() -> &'static SuiteRuns {
    static RUNS: OnceLock<SuiteRuns> = OnceLock::new();
    RUNS.get_or_init(|| {
        eprintln!("[figures] collecting the full suite once…");
        collect()
    })
}

fn bench_fig1(c: &mut Criterion) {
    let s = suite_runs();
    println!("\n{}", mfbench::fig1_chart(s, Group::FortranFp).render(50));
    println!("\n{}", mfbench::fig1_chart(s, Group::CInteger).render(50));
    c.bench_function("fig1_no_prediction", |b| {
        b.iter(|| {
            let a = fig1_rows(black_box(s), Group::FortranFp);
            let b2 = fig1_rows(black_box(s), Group::CInteger);
            black_box((a, b2))
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let s = suite_runs();
    println!("\n{}", mfbench::fig2_chart(s, true).render(50));
    println!("\n{}", mfbench::fig2_chart(s, false).render(50));
    c.bench_function("fig2_prediction", |b| {
        b.iter(|| {
            let a = fig2_rows(black_box(s), true);
            let b2 = fig2_rows(black_box(s), false);
            black_box((a, b2))
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let s = suite_runs();
    println!("\n{}", mfbench::fig3_chart(s, true).render(50));
    println!("\n{}", mfbench::fig3_chart(s, false).render(50));
    c.bench_function("fig3_cross_dataset", |b| {
        b.iter(|| {
            let a = fig3_rows(black_box(s), true);
            let b2 = fig3_rows(black_box(s), false);
            black_box((a, b2))
        })
    });
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_fig3);
criterion_main!(benches);
