//! Substrate benchmarks: compiler, optimizer, and VM throughput. These are
//! not paper experiments — they characterize the reproduction machinery
//! itself (interpreter speed determines how long the full matrix takes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mflang::compile;
use mfopt::Pipeline;
use mfwork::suite;
use trace_vm::Vm;

fn bench_compile(c: &mut Criterion) {
    let all = suite();
    let li = all.iter().find(|w| w.name == "li").expect("li");
    let mut g = c.benchmark_group("compile");
    g.throughput(Throughput::Bytes(li.source.len() as u64));
    g.bench_function("mflang_li_interpreter", |b| {
        b.iter(|| black_box(compile(black_box(&li.source)).expect("compiles")))
    });
    g.finish();
}

fn bench_optimize(c: &mut Criterion) {
    let all = suite();
    let gcc = all.iter().find(|w| w.name == "gcc").expect("gcc");
    let program = gcc.compile().expect("compiles");
    c.bench_function("optimize_gcc_frontend", |b| {
        b.iter(|| {
            let mut p = program.clone();
            Pipeline::standard().run(&mut p);
            black_box(p)
        })
    });
}

fn bench_vm_throughput(c: &mut Criterion) {
    let all = suite();
    let doduc = all.iter().find(|w| w.name == "doduc").expect("doduc");
    let program = doduc.compile().expect("compiles");
    let tiny = doduc.dataset("tiny").expect("tiny");
    let instrs = Vm::new(&program)
        .run(&tiny.inputs)
        .expect("runs")
        .stats
        .total_instrs;

    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(instrs));
    g.sample_size(10);
    g.bench_function("doduc_tiny_guest_instrs", |b| {
        b.iter(|| {
            black_box(
                Vm::new(&program)
                    .run(black_box(&tiny.inputs))
                    .expect("runs"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_optimize, bench_vm_throughput);
criterion_main!(benches);
