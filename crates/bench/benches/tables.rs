//! Benchmarks regenerating the paper's tables.
//!
//! The suite is executed once (cached); each bench then times the analytic
//! regeneration of one table from the collected run statistics — i.e. the
//! cost of the *prediction and metric machinery*, which is what this
//! library adds over a plain interpreter. The bench run also prints each
//! table once so `cargo bench` output doubles as a results record.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mfbench::{collect, table1, table2, table3, SuiteRuns};

fn suite_runs() -> &'static SuiteRuns {
    static RUNS: OnceLock<SuiteRuns> = OnceLock::new();
    RUNS.get_or_init(|| {
        eprintln!("[tables] collecting the full suite once…");
        collect()
    })
}

fn bench_table1(c: &mut Criterion) {
    let s = suite_runs();
    println!("\n{}", table1(s).render());
    c.bench_function("table1_dead_code", |b| {
        b.iter(|| black_box(table1(black_box(s))))
    });
}

fn bench_table2(c: &mut Criterion) {
    println!("\n{}", table2().render());
    c.bench_function("table2_inventory", |b| b.iter(|| black_box(table2())));
}

fn bench_table3(c: &mut Criterion) {
    let s = suite_runs();
    println!("\n{}", table3(s).render());
    c.bench_function("table3_instrs_break", |b| {
        b.iter(|| black_box(table3(black_box(s))))
    });
}

criterion_group!(benches, bench_table1, bench_table2, bench_table3);
criterion_main!(benches);
