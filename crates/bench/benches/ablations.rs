//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * combination rule (scaled / unscaled / polling) — §3 informal,
//! * heuristic vs profile predictors,
//! * `switch` lowering: cascaded conditional branches (the paper's choice)
//!   vs a branch-target table (an unavoidable indirect jump),
//! * break accounting with and without direct call/return traffic
//!   (the paper's inlining discussion).
//!
//! Each ablation prints its comparison once, then times the evaluation.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bpredict::experiment::{self, DatasetRun};
use bpredict::{evaluate, BreakConfig, Predictor};
use ifprob::CombineRule;
use mfbench::{collect_subset, combination_table, heuristic_table, SuiteRuns};
use mflang::{compile_with, CompileOptions, SwitchMode};
use trace_vm::{Input, Vm};

fn subset() -> &'static SuiteRuns {
    static RUNS: OnceLock<SuiteRuns> = OnceLock::new();
    RUNS.get_or_init(|| {
        eprintln!("[ablations] collecting subset…");
        collect_subset(&["doduc", "gcc", "espresso", "spiff", "mfcom"])
    })
}

fn bench_combination_rules(c: &mut Criterion) {
    let s = subset();
    println!("\n{}", combination_table(s).render());
    let gcc = s.workload("gcc").expect("gcc collected");
    c.bench_function("ablate_combination_rules", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for rule in [
                CombineRule::Scaled,
                CombineRule::Unscaled,
                CombineRule::Polling,
            ] {
                for i in 0..gcc.runs.len() {
                    acc += experiment::loo_metrics(&gcc.runs, i, rule, BreakConfig::fig2())
                        .instrs_per_break;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_heuristic(c: &mut Criterion) {
    let s = subset();
    println!("\n{}", heuristic_table(s).render());
    let gcc = s.workload("gcc").expect("gcc collected");
    c.bench_function("ablate_heuristic_vs_profile", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for run in &gcc.runs {
                acc += evaluate(&run.stats, &gcc.heuristic, BreakConfig::fig2()).instrs_per_break;
                acc += experiment::self_metrics(run, BreakConfig::fig2()).instrs_per_break;
            }
            black_box(acc)
        })
    });
}

/// A switch-heavy dispatcher program for the lowering ablation.
const DISPATCHER: &str = r#"
fn main(tape: [int], n: int) {
    var a: int = 0;
    var b: int = 1;
    for (var i: int = 0; i < n; i = i + 1) {
        switch (tape[i]) {
            case 0: { a = a + 1; }
            case 1: { a = a - 1; }
            case 2: { b = b * 2; }
            case 3: { b = b % 1000003; }
            case 4: { a = a + b; }
            case 5: { b = b + a; }
            case 6: { if (a > b) { a = b; } }
            default: { a = a ^ b; }
        }
    }
    emit(a); emit(b);
}
"#;

fn bench_switch_lowering(c: &mut Criterion) {
    let tape: Vec<i64> = (0..60_000).map(|i: i64| (i * 7 + i / 13) % 9).collect();
    let inputs = [Input::Ints(tape.clone()), Input::Int(tape.len() as i64)];
    let cascade = compile_with(DISPATCHER, &CompileOptions::default()).expect("compiles");
    let table = compile_with(
        DISPATCHER,
        &CompileOptions {
            switch_mode: SwitchMode::JumpTable,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");

    let run_c = Vm::new(&cascade).run(&inputs).expect("cascade runs");
    let run_t = Vm::new(&table).run(&inputs).expect("table runs");
    assert_eq!(run_c.output, run_t.output);

    let m_c = experiment::self_metrics(
        &DatasetRun::new("dispatch", run_c.stats.clone()),
        BreakConfig::fig2(),
    );
    let m_t = experiment::self_metrics(
        &DatasetRun::new("dispatch", run_t.stats.clone()),
        BreakConfig::fig2(),
    );
    println!("\nswitch lowering ablation (self-predicted instrs/break):");
    println!(
        "  cascaded ifs:        {:>8.1}  ({} instrs, {} breaks)",
        m_c.instrs_per_break, m_c.instrs, m_c.breaks
    );
    println!(
        "  branch-target table: {:>8.1}  ({} instrs, {} breaks — every table jump is an unavoidable break)",
        m_t.instrs_per_break, m_t.instrs, m_t.breaks
    );

    let p = Predictor::from_counts(&run_c.stats.branches, Default::default());
    c.bench_function("ablate_switch_lowering_eval", |b| {
        b.iter(|| {
            let a = evaluate(&run_c.stats, &p, BreakConfig::fig2());
            let b2 = evaluate(&run_t.stats, &p, BreakConfig::fig2());
            black_box((a, b2))
        })
    });
}

fn bench_inlining_accounting(c: &mut Criterion) {
    let s = subset();
    println!("\ninlining accounting (self-predicted instrs/break):");
    println!("  PROGRAM/DATASET        CALLS EXCLUDED   CALLS COUNTED");
    for w in &s.workloads {
        for run in &w.runs {
            let a = experiment::self_metrics(run, BreakConfig::fig2());
            let b = experiment::self_metrics(run, BreakConfig::fig2_with_calls());
            println!(
                "  {:<22} {:>10.1} {:>15.1}",
                format!("{}/{}", w.name, run.dataset),
                a.instrs_per_break,
                b.instrs_per_break
            );
        }
    }
    let doduc = s.workload("doduc").expect("doduc collected");
    c.bench_function("ablate_inlining_accounting", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for run in &doduc.runs {
                acc += experiment::self_metrics(run, BreakConfig::fig2()).instrs_per_break;
                acc +=
                    experiment::self_metrics(run, BreakConfig::fig2_with_calls()).instrs_per_break;
            }
            black_box(acc)
        })
    });
}

fn bench_dynamic_schemes(c: &mut Criterion) {
    use bpredict::dynamic::{simulate, DynamicScheme};
    use bpredict::Direction;
    use trace_vm::VmConfig;

    // One traced run; the bench times simulating the schemes over it.
    let all = mfwork::suite();
    let w = all.iter().find(|w| w.name == "spiff").expect("spiff");
    let program = w.compile().expect("compiles");
    let run = Vm::with_config(
        &program,
        VmConfig {
            record_branch_trace: true,
            ..VmConfig::default()
        },
    )
    .run(&w.datasets[0].inputs)
    .expect("runs");
    println!("\n{}", mfbench::dynamic_table().render());
    c.bench_function("extension_dynamic_schemes", |b| {
        b.iter(|| {
            let one = simulate(
                &run.branch_trace,
                DynamicScheme::OneBit,
                Direction::NotTaken,
            );
            let two = simulate(
                &run.branch_trace,
                DynamicScheme::TwoBit,
                Direction::NotTaken,
            );
            black_box((one, two))
        })
    });
}

fn bench_inliner(c: &mut Criterion) {
    use mfopt::Inliner;
    println!("\n{}", mfbench::inlining_table().render());
    let all = mfwork::suite();
    let gcc = all.iter().find(|w| w.name == "gcc").expect("gcc");
    let program = gcc.compile().expect("compiles");
    c.bench_function("extension_inliner_pass", |b| {
        b.iter(|| {
            let mut p = program.clone();
            Inliner::default().run(&mut p);
            black_box(p)
        })
    });
}

criterion_group!(
    benches,
    bench_combination_rules,
    bench_heuristic,
    bench_switch_lowering,
    bench_inlining_accounting,
    bench_dynamic_schemes,
    bench_inliner
);
criterion_main!(benches);
