//! Full-pipeline chaos battery: profile collection → sharded profile
//! service under a seeded filesystem fault storm → version-skew remap →
//! trace-formed flat backend → dynamic-predictor zoo, with program edits
//! injected between accumulation rounds.
//!
//! Each seed gets a private in-memory filesystem wrapped in a
//! [`mffault::FaultVfs`] whose [`mffault::FaultPlan`] is derived entirely
//! from the seed (short writes, `ENOSPC`, transients, torn renames — no
//! hard crashes, so one accessor lives through the whole storm). Rounds
//! alternate running the guest program, remapping whatever profile
//! survived onto the *current* program text, steering trace formation
//! with it, and recording the fresh run back through the service. Between
//! rounds the battery may edit the program (rename a function, delete
//! dead code, flip a comparison, append a function), which is exactly the
//! version skew `mfstale` exists to absorb.
//!
//! A violation of any invariant below is a **finding**; the battery (and
//! the `chaos` binary) reports it and exits non-zero:
//!
//! 1. **Science is fault-free.** Every round, the flat backend — traces
//!    grown along the storm-surviving profile, degraded sites demoted to
//!    BTFN — must be bit-identical (output, result, every counter) to the
//!    reference backend on the same program and inputs, and the online
//!    predictor zoo must tally identically over both backends.
//! 2. **Every degradation is attributed.** Each recorded dataset is
//!    acknowledged `Committed` or `Degraded` (or failed with a visible
//!    error). After the storm, a *clean* reopen of the underlying
//!    filesystem must succeed, and the durable totals must be bounded
//!    below by the committed sums and above by the sums of everything
//!    attempted, per `(dataset, branch)`. Durable data outside those
//!    bounds — lost committed counts, counts never written, datasets
//!    never recorded, internally inconsistent entries — is silent
//!    corruption.
//! 3. **Remaps conserve and identity-map.** For every per-dataset remap,
//!    `matched + salvaged + orphaned` equals the old entry count; and a
//!    committed dataset recorded at the *current* program version must
//!    remap as the identity.
//!
//! The JSON report carries no timings or host facts, so a battery at
//! `--jobs 8` is byte-identical to the same battery at `--jobs 1`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mffault::{FaultPlan, FaultVfs, MemVfs, RetryPolicy, Vfs};
use mfprofsvc::{Persistence, ProfileService, ServiceOptions};
use mfstale::{edit, remap_counts, site_fingerprints};
use trace_ir::BranchId;
use trace_vm::{confidence_digest, FlatProgram, Input, TraceConfig, Vm, VmConfig};

/// The guest program the battery runs and edits. Every `if` arm contains
/// a call or an `emit`, so each predicate lowers to a real conditional
/// branch (not a select) and shows up in profiles and fingerprints.
/// `dead_gadget` is never called — deleting it renumbers every later
/// branch id, which is the salvage-by-fingerprint scenario.
const BASE_SOURCE: &str = "\
fn dead_gadget(z: int) -> int {
    if (z > 100) { emit(z); return z - 1; }
    return z + 1;
}

fn helper2(k: int) -> int {
    if (k == 1) { emit(k); return 2; }
    return 1;
}

fn helper(x: int) -> int {
    var s: int = 0;
    for (var i: int = 0; i < x; i = i + 1) {
        if (i < 3) { s = s + helper2(i); } else { emit(s); }
    }
    return s;
}

fn main(n: int) {
    var t: int = 0;
    for (var j: int = 0; j < n; j = j + 1) {
        if (j > 2) { t = t + helper(j); } else { emit(j); }
    }
    emit(t);
}
";

/// The function the `append` edit adds (structurally new sites that must
/// degrade until a post-edit round records them with fingerprints).
const APPEND_SOURCE: &str = "\
fn extra_path(m: int) -> int {
    if (m > 7) { emit(m); return m - 7; }
    return m + 1;
}";

/// Battery shape. `Default` matches the acceptance run: 32 seeds, 4
/// rounds, edits on, one job.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Number of seeds (independent storms) to run.
    pub seeds: u64,
    /// First seed value; seed `i` runs storm `start_seed + i`.
    pub start_seed: u64,
    /// Accumulation rounds per seed (round 0 is always edit-free).
    pub rounds: u32,
    /// Worker threads over seeds. The report is `jobs`-invariant.
    pub jobs: usize,
    /// Inject program edits between rounds. Off = pure fault storm with
    /// an unchanging program (every remap must be the identity).
    pub edits: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seeds: 32,
            start_seed: 0,
            rounds: 4,
            jobs: 1,
            edits: true,
        }
    }
}

/// Skew and classification tallies for one round of one seed.
#[derive(Clone, Debug, Default)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: u32,
    /// The edit applied entering this round (`"none"` for edit-free).
    pub edit: String,
    /// Prior datasets the service served this round.
    pub prior_datasets: usize,
    /// Merged [`mfstale::SkewReport::matched`] across those datasets.
    pub matched: usize,
    /// Merged salvaged tally.
    pub salvaged: usize,
    /// Merged orphaned tally.
    pub orphaned: usize,
    /// Merged degraded tally.
    pub degraded: usize,
    /// Merged unverified tally.
    pub unverified: usize,
    /// Sites compiled at low confidence (degraded in *every* prior
    /// dataset) this round.
    pub low_confidence: usize,
}

/// Everything one seed's storm produced.
#[derive(Clone, Debug, Default)]
pub struct SeedOutcome {
    /// The storm seed ([`mffault::FaultPlan::from_seed`]).
    pub seed: u64,
    /// The service never opened under the storm (attributed, not a
    /// finding; the seed contributes nothing else).
    pub service_unavailable: bool,
    /// Edit applied entering each round, `rounds.len()` long.
    pub edits: Vec<String>,
    /// Per-round tallies.
    pub rounds: Vec<RoundStats>,
    /// Records acknowledged durable.
    pub committed: usize,
    /// Records acknowledged degraded (memory only).
    pub degraded_acks: usize,
    /// Merged-profile reads the storm defeated (attributed; the round
    /// ran profile-free).
    pub profile_read_failures: u64,
    /// Record submissions the storm defeated outright (attributed).
    pub record_failures: u64,
    /// Compactions the storm defeated (attributed).
    pub maintenance_failures: u64,
    /// Invariant violations. Empty on every clean build.
    pub findings: Vec<String>,
}

/// The whole battery's outcome.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Per-seed outcomes in seed order, regardless of `jobs`.
    pub outcomes: Vec<SeedOutcome>,
}

impl ChaosReport {
    /// Total findings across all seeds.
    pub fn findings(&self) -> usize {
        self.outcomes.iter().map(|o| o.findings.len()).sum()
    }

    /// Deterministic JSON (no timings, no host facts): equal configs give
    /// byte-identical reports at any `--jobs` level.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"seed\": {}, ", o.seed));
            s.push_str(&format!(
                "\"service_unavailable\": {}, ",
                o.service_unavailable
            ));
            s.push_str(&format!(
                "\"edits\": [{}], ",
                o.edits
                    .iter()
                    .map(|e| format!("\"{}\"", json_escape(e)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push_str("\"rounds\": [");
            for (j, r) in o.rounds.iter().enumerate() {
                s.push_str(&format!(
                    "{{\"round\": {}, \"edit\": \"{}\", \"prior_datasets\": {}, \
                     \"matched\": {}, \"salvaged\": {}, \"orphaned\": {}, \
                     \"degraded\": {}, \"unverified\": {}, \"low_confidence\": {}}}",
                    r.round,
                    json_escape(&r.edit),
                    r.prior_datasets,
                    r.matched,
                    r.salvaged,
                    r.orphaned,
                    r.degraded,
                    r.unverified,
                    r.low_confidence
                ));
                if j + 1 < o.rounds.len() {
                    s.push_str(", ");
                }
            }
            s.push_str("], ");
            s.push_str(&format!("\"committed\": {}, ", o.committed));
            s.push_str(&format!("\"degraded_acks\": {}, ", o.degraded_acks));
            s.push_str(&format!(
                "\"profile_read_failures\": {}, ",
                o.profile_read_failures
            ));
            s.push_str(&format!("\"record_failures\": {}, ", o.record_failures));
            s.push_str(&format!(
                "\"maintenance_failures\": {}, ",
                o.maintenance_failures
            ));
            s.push_str(&format!(
                "\"findings\": [{}]",
                o.findings
                    .iter()
                    .map(|f| format!("\"{}\"", json_escape(f)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push('}');
            if i + 1 < self.outcomes.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"findings\": {}\n", self.findings()));
        s.push_str("}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// splitmix64 — the battery's only randomness, fully seed-determined.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Edit {
    Rename,
    DeleteDead,
    FlipCmp,
    Append,
}

impl Edit {
    fn name(self) -> &'static str {
        match self {
            Edit::Rename => "rename",
            Edit::DeleteDead => "delete-dead",
            Edit::FlipCmp => "flip-cmp",
            Edit::Append => "append",
        }
    }

    /// Applies the edit; `None` when its target is already gone.
    fn apply(self, source: &str) -> Option<String> {
        match self {
            Edit::Rename => Some(edit::rename_fn(source, "helper2", "worker2")),
            Edit::DeleteDead => edit::delete_fn(source, "dead_gadget"),
            Edit::FlipCmp => edit::replace_once(source, "i < 3", "i <= 3"),
            Edit::Append => Some(edit::append_fn(source, APPEND_SOURCE)),
        }
    }
}

/// What one seed tracks about every record it submits.
struct Ledger {
    /// Sums of counts acknowledged `Committed`, per `(dataset, branch)` —
    /// the durable lower bound.
    committed: BTreeMap<(String, u32), (u64, u64)>,
    /// Sums of *everything attempted* (committed, degraded, or failed) —
    /// the durable upper bound.
    attempted: BTreeMap<(String, u32), (u64, u64)>,
    /// Program version each dataset was recorded against, and whether its
    /// ack was `Committed` (a degraded record may be only partially
    /// durable, so only committed ones owe the identity invariant).
    versions: BTreeMap<String, (u32, bool)>,
}

impl Ledger {
    fn new() -> Self {
        Ledger {
            committed: BTreeMap::new(),
            attempted: BTreeMap::new(),
            versions: BTreeMap::new(),
        }
    }

    fn add(map: &mut BTreeMap<(String, u32), (u64, u64)>, label: &str, id: u32, e: u64, t: u64) {
        let slot = map.entry((label.to_string(), id)).or_insert((0, 0));
        slot.0 = slot.0.saturating_add(e);
        slot.1 = slot.1.saturating_add(t);
    }
}

/// Runs one seed's storm. `rounds` ≥ 1; round 0 never edits.
pub fn run_seed(seed: u64, rounds: u32, edits: bool) -> SeedOutcome {
    let mut out = SeedOutcome {
        seed,
        ..SeedOutcome::default()
    };
    let mut rng = seed ^ 0xC4A0_5BA7_7E57_0001;

    let mem: Arc<MemVfs> = Arc::new(MemVfs::new());
    let dir = "chaos-db";
    let opts = || ServiceOptions {
        shards: 2,
        retry: RetryPolicy::immediate(3),
        ..ServiceOptions::default()
    };
    // Bootstrap the layout on the clean filesystem so the storm exercises
    // steady-state operation, not first-touch directory creation.
    match ProfileService::open(mem.clone(), dir, opts()) {
        Ok(svc) => drop(svc),
        Err(e) => {
            out.findings
                .push(format!("clean bootstrap open failed: {e}"));
            return out;
        }
    }
    let faulty: Arc<dyn Vfs> = Arc::new(FaultVfs::new(mem.clone(), FaultPlan::from_seed(seed)));
    let mut svc = None;
    for _ in 0..3 {
        match ProfileService::open(faulty.clone(), dir, opts()) {
            Ok(s) => {
                svc = Some(s);
                break;
            }
            Err(_) => continue,
        }
    }
    let Some(svc) = svc else {
        out.service_unavailable = true;
        return out;
    };

    let mut source = BASE_SOURCE.to_string();
    let mut version: u32 = 0;
    let mut available = vec![Edit::Rename, Edit::DeleteDead, Edit::FlipCmp, Edit::Append];
    let mut ledger = Ledger::new();

    for round in 0..rounds {
        // ----- edit (never on round 0) -----
        let mut applied = "none".to_string();
        if edits && round > 0 && !available.is_empty() {
            // Two extra slots bias toward editing while keeping some
            // edit-free rounds (which owe the identity invariant).
            let pick = (mix(&mut rng) as usize) % (available.len() + 2);
            if pick < available.len() {
                let e = available.remove(pick);
                if let Some(next) = e.apply(&source) {
                    source = next;
                    version += 1;
                    applied = e.name().to_string();
                }
            }
        }
        out.edits.push(applied.clone());

        let program = mflang::compile(&source).expect("chaos program compiles at every version");
        let new_fps = site_fingerprints(&program);

        // ----- remap whatever profile survived the storm so far -----
        let mut stats = RoundStats {
            round,
            edit: applied,
            ..RoundStats::default()
        };
        let prior = match (svc.merged_totals(), svc.merged_fingerprints_by_dataset()) {
            (Ok(t), Ok(f)) => Some((t, f)),
            _ => {
                out.profile_read_failures += 1;
                None
            }
        };
        let mut combined: BTreeMap<BranchId, (u64, u64)> = BTreeMap::new();
        let mut low: Option<BTreeSet<BranchId>> = None;
        if let Some((totals, fps_by_ds)) = &prior {
            stats.prior_datasets = totals.len();
            for (label, rows) in totals {
                let entries: Vec<(BranchId, u64, u64)> = rows
                    .iter()
                    .map(|&(id, e, t)| (BranchId(id), e, t))
                    .collect();
                let issues = mfcheck::check_entries(&entries);
                if !issues.is_empty() {
                    out.findings.push(format!(
                        "round {round}: dataset {label} served corrupt entries: {:?}",
                        issues[0]
                    ));
                    continue;
                }
                let old_fps: BTreeMap<BranchId, u64> = fps_by_ds
                    .get(label)
                    .map(|f| f.iter().map(|(&id, &fp)| (BranchId(id), fp)).collect())
                    .unwrap_or_default();
                let remapped = remap_counts(&entries, &old_fps, &new_fps);
                let r = &remapped.report;
                if r.matched + r.salvaged + r.orphaned != entries.len() {
                    out.findings.push(format!(
                        "round {round}: dataset {label} remap lost entries: \
                         {} + {} + {} != {}",
                        r.matched,
                        r.salvaged,
                        r.orphaned,
                        entries.len()
                    ));
                }
                if let Some(&(v, committed)) = ledger.versions.get(label) {
                    if committed && v == version && !r.is_identity() {
                        out.findings.push(format!(
                            "round {round}: dataset {label} recorded at the current \
                             program version did not remap as identity: {r:?}"
                        ));
                    }
                }
                stats.matched += r.matched;
                stats.salvaged += r.salvaged;
                stats.orphaned += r.orphaned;
                stats.degraded += r.degraded;
                stats.unverified += r.unverified;
                for &(id, e, t) in &remapped.counts {
                    let slot = combined.entry(id).or_insert((0, 0));
                    slot.0 = slot.0.saturating_add(e);
                    slot.1 = slot.1.saturating_add(t);
                }
                let dset: BTreeSet<BranchId> = remapped.degraded.iter().copied().collect();
                low = Some(match low.take() {
                    None => dset,
                    Some(prev) => prev.intersection(&dset).copied().collect(),
                });
            }
        }
        let low_conf: Vec<BranchId> = low.map(|s| s.into_iter().collect()).unwrap_or_default();
        stats.low_confidence = low_conf.len();
        let profile: Option<trace_vm::BranchCounts> = if combined.is_empty() {
            None
        } else {
            Some(
                combined
                    .into_iter()
                    .map(|(id, (e, t))| (id, e, t))
                    .collect(),
            )
        };

        // ----- science: flat (profile-steered) vs reference, zoo'd -----
        let tcfg = TraceConfig {
            confidence_digest: confidence_digest(&low_conf),
            ..TraceConfig::default()
        };
        let flat =
            FlatProgram::compile_with_confidence(&program, profile.as_ref(), &low_conf, tcfg);
        let inputs = [Input::Int(4 + (mix(&mut rng) % 9) as i64)];
        let mut ref_zoo = mfdyn::Zoo::for_program(&mfdyn::full_zoo(), &program);
        let reference = Vm::with_config(&program, VmConfig::default())
            .run_branches(&inputs, &mut ref_zoo)
            .expect("reference run succeeds");
        let mut flat_zoo = mfdyn::Zoo::for_program(&mfdyn::full_zoo(), &program);
        let flat_run = flat
            .run_branches(VmConfig::default(), &inputs, &mut flat_zoo)
            .expect("flat run succeeds");
        if reference != flat_run {
            out.findings.push(format!(
                "round {round}: flat backend diverged from reference under reused \
                 profile (inputs {inputs:?})"
            ));
        }
        if ref_zoo.report() != flat_zoo.report() {
            out.findings.push(format!(
                "round {round}: dynamic-predictor zoo tallies differ across backends"
            ));
        }

        // ----- record this round through the storm -----
        let label = format!("r{round:02}");
        let counts = &reference.stats.branches;
        let mut recorded = false;
        let mut was_committed = false;
        match svc.enqueue_with_fps(&label, counts, &new_fps) {
            Ok(sid) => match svc.flush() {
                Ok(acks) => match acks.get(&sid) {
                    Some(Persistence::Committed) => {
                        recorded = true;
                        was_committed = true;
                        out.committed += 1;
                    }
                    Some(Persistence::Degraded) => {
                        recorded = true;
                        out.degraded_acks += 1;
                    }
                    None => out.record_failures += 1,
                },
                Err(_) => out.record_failures += 1,
            },
            Err(_) => out.record_failures += 1,
        }
        // Everything attempted bounds durable state from above; only
        // committed records bound it from below.
        for (id, e, t) in counts.iter() {
            Ledger::add(&mut ledger.attempted, &label, id.0, e, t);
            if was_committed {
                Ledger::add(&mut ledger.committed, &label, id.0, e, t);
            }
        }
        if recorded || was_committed {
            ledger
                .versions
                .insert(label.clone(), (version, was_committed));
        } else {
            // A failed submission may still have left durable bytes;
            // remember it so stray data stays attributable.
            ledger.versions.entry(label).or_insert((version, false));
        }

        // Occasional compaction mid-storm: rewriting segments under
        // faults must never lose committed data (checked at the end).
        if mix(&mut rng).is_multiple_of(4) && svc.compact().is_err() {
            out.maintenance_failures += 1;
        }
        out.rounds.push(stats);
    }
    drop(svc);

    // ----- the post-storm audit: clean reopen, bounded durability -----
    let clean = match ProfileService::open(
        mem.clone(),
        dir,
        ServiceOptions {
            shards: 2,
            retry: RetryPolicy::none(),
            ..ServiceOptions::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            out.findings
                .push(format!("clean reopen after the storm failed: {e}"));
            return out;
        }
    };
    let disk = match clean.merged_totals() {
        Ok(d) => d,
        Err(e) => {
            out.findings
                .push(format!("clean reopen cannot read totals: {e}"));
            return out;
        }
    };
    for (label, rows) in &disk {
        if !ledger.versions.contains_key(label) {
            out.findings
                .push(format!("durable dataset {label} was never recorded"));
            continue;
        }
        let entries: Vec<(BranchId, u64, u64)> = rows
            .iter()
            .map(|&(id, e, t)| (BranchId(id), e, t))
            .collect();
        let issues = mfcheck::check_entries(&entries);
        if !issues.is_empty() {
            out.findings.push(format!(
                "durable dataset {label} is internally inconsistent: {:?}",
                issues[0]
            ));
        }
        for &(id, e, t) in rows {
            match ledger.attempted.get(&(label.clone(), id)) {
                None => out.findings.push(format!(
                    "durable dataset {label} site {id} was never written"
                )),
                Some(&(ue, ut)) => {
                    if e > ue || t > ut {
                        out.findings.push(format!(
                            "durable dataset {label} site {id} exceeds everything \
                             attempted: ({e}, {t}) > ({ue}, {ut})"
                        ));
                    }
                }
            }
        }
    }
    for ((label, id), &(ce, ct)) in &ledger.committed {
        let (de, dt) = disk
            .get(label)
            .and_then(|rows| rows.iter().find(|r| r.0 == *id))
            .map(|r| (r.1, r.2))
            .unwrap_or((0, 0));
        if de < ce || dt < ct {
            out.findings.push(format!(
                "committed counts lost: dataset {label} site {id} durable \
                 ({de}, {dt}) < committed ({ce}, {ct})"
            ));
        }
    }
    out
}

/// Runs the whole battery. Outcomes are assembled in seed order whatever
/// `jobs` is, and each seed's storm is independent, so the report is a
/// pure function of the config.
pub fn run_battery(cfg: &ChaosConfig) -> ChaosReport {
    let seeds: Vec<u64> = (0..cfg.seeds).map(|i| cfg.start_seed + i).collect();
    let jobs = cfg.jobs.max(1).min(seeds.len().max(1));
    let outcomes: Vec<SeedOutcome> = if jobs <= 1 {
        seeds
            .iter()
            .map(|&s| run_seed(s, cfg.rounds, cfg.edits))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<SeedOutcome>>> = Mutex::new(vec![None; seeds.len()]);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= seeds.len() {
                        break;
                    }
                    let done = run_seed(seeds[i], cfg.rounds, cfg.edits);
                    slots.lock().expect("chaos slots lock")[i] = Some(done);
                });
            }
        });
        slots
            .into_inner()
            .expect("chaos slots lock")
            .into_iter()
            .map(|o| o.expect("every seed ran"))
            .collect()
    };
    ChaosReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seeds: u64, rounds: u32, jobs: usize, edits: bool) -> ChaosConfig {
        ChaosConfig {
            seeds,
            start_seed: 0,
            rounds,
            jobs,
            edits,
        }
    }

    #[test]
    fn battery_seeds_are_clean() {
        let report = run_battery(&cfg(3, 3, 1, true));
        for o in &report.outcomes {
            assert!(
                o.findings.is_empty(),
                "seed {} found: {:?}",
                o.seed,
                o.findings
            );
            if !o.service_unavailable {
                assert_eq!(o.rounds.len(), 3);
            }
        }
        assert_eq!(report.findings(), 0);
    }

    #[test]
    fn jobs_do_not_change_the_report() {
        let serial = run_battery(&cfg(4, 2, 1, true));
        let threaded = run_battery(&cfg(4, 2, 4, true));
        assert_eq!(serial.to_json(), threaded.to_json());
    }

    #[test]
    fn no_edit_rounds_remap_as_identity() {
        let report = run_battery(&cfg(2, 3, 1, false));
        assert_eq!(report.findings(), 0, "{:?}", report.outcomes);
        for o in &report.outcomes {
            for r in &o.rounds {
                assert_eq!(r.edit, "none");
                if r.prior_datasets > 0 {
                    assert_eq!(
                        (r.salvaged, r.orphaned, r.degraded, r.unverified),
                        (0, 0, 0, 0),
                        "seed {} round {} was not an identity remap",
                        o.seed,
                        r.round
                    );
                }
            }
        }
    }

    #[test]
    fn edits_eventually_fire_and_stay_clean() {
        // Across a handful of seeds the edit picker must exercise real
        // skew (this is the battery's whole point); all of it clean.
        let report = run_battery(&cfg(6, 4, 2, true));
        assert_eq!(report.findings(), 0);
        let edited: usize = report
            .outcomes
            .iter()
            .flat_map(|o| &o.edits)
            .filter(|e| *e != "none")
            .count();
        assert!(edited > 0, "no seed ever applied an edit");
        let skewed: usize = report
            .outcomes
            .iter()
            .flat_map(|o| &o.rounds)
            .map(|r| r.salvaged + r.orphaned + r.degraded)
            .sum();
        assert!(skewed > 0, "edits fired but no remap ever saw skew");
    }

    #[test]
    fn json_report_is_schema_stable() {
        let report = run_battery(&cfg(1, 2, 1, true));
        let json = report.to_json();
        for key in [
            "\"outcomes\"",
            "\"seed\"",
            "\"rounds\"",
            "\"matched\"",
            "\"salvaged\"",
            "\"orphaned\"",
            "\"degraded\"",
            "\"unverified\"",
            "\"low_confidence\"",
            "\"committed\"",
            "\"degraded_acks\"",
            "\"findings\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
