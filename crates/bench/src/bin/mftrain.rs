//! mftrain — offline trainer for the `mfpredict` static branch model.
//!
//! Collects profiles for the whole workload suite through the harness
//! (so collection is cached, parallel, and jobs-invariant), extracts
//! static feature vectors for the *training half* of the suite
//! ([`mfpredict::TRAIN_WORKLOADS`]), trains the deterministic softsign
//! model, and writes the versioned byte-stable artifact. Two consecutive
//! runs — at any `--jobs` — produce byte-identical artifacts; CI
//! retrains and compares against the committed file.
//!
//! ```text
//! mftrain                          # train, write the committed artifact path
//! mftrain --check                  # train, byte-compare vs committed, exit 1 on drift
//! mftrain --eval                   # also print the held-out evaluation table
//! mftrain --soundness              # verify interval proofs across the suite
//! mftrain --features f.tsv --jobs 8
//! ```
//!
//! Exit codes: 0 success; 1 gate failure (`--check` drift, `--soundness`
//! contradiction); 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use bpredict::{evaluate, BreakConfig, Direction, Predictor};
use mfbench::{collect_with, configure_harness, harness, SuiteRuns};
use mfharness::HarnessOptions;
use mfpredict::{
    analyze, extract, train, Model, ProgramProofs, Sample, TrainConfig, COMMITTED_MODEL_PATH,
    EVAL_WORKLOADS, TRAIN_WORKLOADS,
};
use mfreport::{fmt_percent, Table};
use trace_ir::{BranchId, Program};

const USAGE: &str = "\
usage: mftrain [options]

  --out PATH        artifact destination (default: the committed in-tree
                    artifact path)
  --check           train and byte-compare against the committed artifact
                    instead of writing; exit 1 on any difference
  --eval            print the held-out evaluation table (mispredict rate
                    of BTFN / proofs / ML / self per eval dataset)
  --soundness       hold every interval proof against every workload
                    run's observed branch counters; exit 1 on any
                    contradiction
  --features PATH   dump the training feature matrix as TSV (exact f64
                    debug formatting; used by the determinism tests)
  --jobs N          harness worker threads (default: MFHARNESS_JOBS or 1)
  -h, --help        this message
";

struct Options {
    out: Option<PathBuf>,
    check: bool,
    eval: bool,
    soundness: bool,
    features: Option<PathBuf>,
    jobs: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        out: None,
        check: false,
        eval: false,
        soundness: false,
        features: None,
        jobs: None,
    };
    let mut iter = args.iter();
    let value = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--out" => options.out = Some(PathBuf::from(value("--out", &mut iter)?)),
            "--check" => options.check = true,
            "--eval" => options.eval = true,
            "--soundness" => options.soundness = true,
            "--features" => options.features = Some(PathBuf::from(value("--features", &mut iter)?)),
            "--jobs" => {
                let jobs: usize = value("--jobs", &mut iter)?
                    .parse()
                    .map_err(|_| "--jobs requires an unsigned integer".to_string())?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                options.jobs = Some(jobs);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Some(options))
}

/// One workload's compiled program, analysis, and aggregated counters.
struct WorkloadData {
    name: &'static str,
    program: Program,
    analysis: ProgramProofs,
    /// Per-site `(executed, taken)` summed over every dataset.
    totals: std::collections::BTreeMap<BranchId, (u64, u64)>,
}

fn gather(s: &SuiteRuns) -> Vec<WorkloadData> {
    mfwork::suite()
        .into_iter()
        .map(|w| {
            let program = w.compile().expect("bundled workload compiles");
            let analysis = analyze(&program);
            let runs = &s.workload(w.name).expect("collected workload").runs;
            let mut totals: std::collections::BTreeMap<BranchId, (u64, u64)> = Default::default();
            for r in runs {
                for (id, e, t) in r.stats.branches.iter() {
                    let slot = totals.entry(id).or_insert((0, 0));
                    slot.0 += e;
                    slot.1 += t;
                }
            }
            WorkloadData {
                name: w.name,
                program,
                analysis,
                totals,
            }
        })
        .collect()
}

/// Integer log2-style weight: branches executed more often matter more,
/// but only through an integer-derived value so the weighting introduces
/// no platform-dependent arithmetic.
fn sample_weight(executed: u64) -> f64 {
    f64::from(64 - executed.leading_zeros())
}

/// Per-sample bookkeeping kept alongside the feature matrix: workload
/// name, branch site, majority direction, and sample weight.
type SampleMeta = (String, BranchId, bool, f64);

fn build_samples(data: &[WorkloadData]) -> (Vec<Sample>, Vec<SampleMeta>) {
    let mut samples = Vec::new();
    let mut meta = Vec::new();
    for wd in data {
        if !TRAIN_WORKLOADS.contains(&wd.name) {
            continue;
        }
        let features = extract(&wd.program, &wd.analysis);
        for f in &features {
            let Some(&(executed, taken)) = wd.totals.get(&f.id) else {
                continue; // never executed: no label
            };
            if executed == 0 {
                continue;
            }
            let label = taken * 2 >= executed;
            let weight = sample_weight(executed);
            samples.push(Sample {
                features: f.values,
                taken: label,
                weight,
            });
            meta.push((wd.name.to_string(), f.id, label, weight));
        }
    }
    (samples, meta)
}

fn dump_features(
    path: &PathBuf,
    samples: &[Sample],
    meta: &[(String, BranchId, bool, f64)],
) -> Result<(), String> {
    let mut out = String::new();
    out.push_str("# workload\tbranch\ttaken\tweight\tfeatures\n");
    for (s, (name, id, label, weight)) in samples.iter().zip(meta) {
        let feats: Vec<String> = s.features.iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&format!(
            "{name}\t{id}\t{}\t{weight:?}\t{}\n",
            u8::from(*label),
            feats.join(",")
        ));
    }
    std::fs::write(path, out).map_err(|e| format!("writing {} failed: {e}", path.display()))
}

fn direction(taken: bool) -> Direction {
    if taken {
        Direction::Taken
    } else {
        Direction::NotTaken
    }
}

fn eval_table(s: &SuiteRuns, data: &[WorkloadData], model: &Model) -> Table {
    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&[
        "PROGRAM", "DATASET", "BRANCHES", "BTFN", "PROOF", "ML", "SELF",
    ]);
    for wd in data {
        if !EVAL_WORKLOADS.contains(&wd.name) {
            continue;
        }
        let w = s.workload(wd.name).expect("collected workload");
        let features = extract(&wd.program, &wd.analysis);
        let ml = Predictor::from_directions(
            model
                .predict_branches(&features)
                .map(|(id, taken)| (id, direction(taken))),
            Direction::NotTaken,
        );
        let mut proof_dirs: std::collections::BTreeMap<_, _> = w.btfn.iter().collect();
        for (id, taken) in wd.analysis.proven_directions() {
            proof_dirs.insert(id, direction(taken));
        }
        let proof = Predictor::from_directions(proof_dirs, Direction::NotTaken);
        for run in &w.runs {
            let rate =
                |p: &Predictor| fmt_percent(1.0 - evaluate(&run.stats, p, cfg).correct_fraction());
            let self_p = Predictor::from_counts(&run.stats.branches, Direction::NotTaken);
            t.row_owned(vec![
                wd.name.to_string(),
                run.dataset.clone(),
                run.stats.branches.total_executed().to_string(),
                rate(&w.btfn),
                rate(&proof),
                rate(&ml),
                rate(&self_p),
            ]);
        }
    }
    t
}

/// Counts proof contradictions across every workload run; prints any.
fn soundness_failures(s: &SuiteRuns, data: &[WorkloadData]) -> usize {
    let mut failures = 0;
    for wd in data {
        let w = s.workload(wd.name).expect("collected workload");
        for run in &w.runs {
            let broken = wd.analysis.contradictions(run.stats.branches.iter());
            for c in &broken {
                eprintln!("mftrain: SOUNDNESS: {}/{}: {c}", wd.name, run.dataset);
            }
            failures += broken.len();
        }
    }
    failures
}

fn run(options: &Options) -> Result<ExitCode, String> {
    if let Some(jobs) = options.jobs {
        configure_harness(HarnessOptions {
            jobs: Some(jobs),
            ..Default::default()
        });
    }
    let s = collect_with(harness());
    let data = gather(&s);

    if options.soundness {
        let total: usize = data
            .iter()
            .map(|wd| {
                s.workload(wd.name)
                    .map(|w| w.runs.len())
                    .unwrap_or_default()
            })
            .sum();
        let failures = soundness_failures(&s, &data);
        if failures > 0 {
            eprintln!("mftrain: {failures} proof contradiction(s) across {total} runs");
            return Ok(ExitCode::FAILURE);
        }
        println!(
            "soundness: 0 contradictions across {} workloads, {total} runs",
            data.len()
        );
    }

    let (samples, meta) = build_samples(&data);
    if let Some(path) = &options.features {
        dump_features(path, &samples, &meta)?;
        eprintln!("wrote {} feature rows to {}", samples.len(), path.display());
    }
    let model = train(&samples, &TrainConfig::default());
    let bytes = model.to_bytes();
    println!(
        "trained on {} branch sites from {} workloads ({} bytes, {} weights)",
        samples.len(),
        TRAIN_WORKLOADS.len(),
        bytes.len(),
        model.weights.len()
    );

    let mut exit = ExitCode::SUCCESS;
    if options.check {
        match Model::load_committed() {
            Ok(committed) if committed.to_bytes() == bytes => {
                println!("check: committed artifact reproduced byte-for-byte");
            }
            Ok(_) => {
                eprintln!("mftrain: check FAILED: retrained artifact differs from committed");
                exit = ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("mftrain: check FAILED: committed artifact unusable: {e}");
                exit = ExitCode::FAILURE;
            }
        }
    } else {
        let out = options
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from(COMMITTED_MODEL_PATH));
        if let Some(dir) = out.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating {} failed: {e}", dir.display()))?;
        }
        std::fs::write(&out, &bytes)
            .map_err(|e| format!("writing {} failed: {e}", out.display()))?;
        println!("wrote model artifact to {}", out.display());
    }

    if options.eval {
        println!("\n==== Held-out evaluation (mispredict rate, eval half only) ====");
        print!("{}", eval_table(&s, &data, &model).render());
    }
    Ok(exit)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(options)) => match run(&options) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("mftrain: {e}");
                ExitCode::from(2)
            }
        },
        Ok(None) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mftrain: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
