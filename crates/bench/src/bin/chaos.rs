//! `chaos` — the full-pipeline chaos battery (see `mfbench::chaos`).
//!
//! Runs seeded filesystem fault storms through the whole stack — profile
//! service, version-skew remap, trace-formed flat backend, dynamic
//! predictor zoo — with program edits injected between rounds, and
//! reports every invariant violation.
//!
//! Exit status: 0 = clean battery, 1 = findings, 2 = usage or I/O error.
//!
//! ```text
//! chaos [--seeds N] [--start-seed N] [--rounds N] [--jobs N]
//!       [--no-edits] [--quick] [--out PATH] [--json]
//! ```

use std::process::ExitCode;

use mfbench::chaos::{run_battery, ChaosConfig};

const USAGE: &str = "usage: chaos [--seeds N] [--start-seed N] [--rounds N] [--jobs N] \
                     [--no-edits] [--quick] [--out PATH] [--json]";

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

fn main() -> ExitCode {
    let mut cfg = ChaosConfig::default();
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let r = match a.as_str() {
            "--seeds" => parse("--seeds", args.next()).map(|v| cfg.seeds = v),
            "--start-seed" => parse("--start-seed", args.next()).map(|v| cfg.start_seed = v),
            "--rounds" => parse("--rounds", args.next()).map(|v| cfg.rounds = v),
            "--jobs" => parse("--jobs", args.next()).map(|v| cfg.jobs = v),
            "--no-edits" => {
                cfg.edits = false;
                Ok(())
            }
            "--quick" => {
                cfg.seeds = 8;
                cfg.rounds = 3;
                Ok(())
            }
            "--out" => match args.next() {
                Some(p) => {
                    out_path = Some(p);
                    Ok(())
                }
                None => Err("--out needs a value".to_string()),
            },
            "--json" => {
                json = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = r {
            eprintln!("chaos: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    if cfg.seeds == 0 || cfg.rounds == 0 || cfg.jobs == 0 {
        eprintln!("chaos: --seeds, --rounds, and --jobs must be at least 1");
        return ExitCode::from(2);
    }

    let report = run_battery(&cfg);

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("chaos: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "chaos battery: {} seeds x {} rounds (edits {})",
            cfg.seeds,
            cfg.rounds,
            if cfg.edits { "on" } else { "off" }
        );
        for o in &report.outcomes {
            if o.service_unavailable {
                println!("  seed {:>3}: service unavailable (attributed)", o.seed);
                continue;
            }
            let skew: usize = o
                .rounds
                .iter()
                .map(|r| r.salvaged + r.orphaned + r.degraded)
                .sum();
            println!(
                "  seed {:>3}: edits [{}], {} committed, {} degraded acks, \
                 {} read / {} record / {} compact failures, skew {}, findings {}",
                o.seed,
                o.edits.join(" "),
                o.committed,
                o.degraded_acks,
                o.profile_read_failures,
                o.record_failures,
                o.maintenance_failures,
                skew,
                o.findings.len()
            );
            for f in &o.findings {
                println!("    FINDING: {f}");
            }
        }
        println!("findings: {}", report.findings());
    }
    if report.findings() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
