//! `svcbench`: throughput, submit latency, and post-crash recovery time
//! for the sharded profile service against the single-log baseline,
//! written as `BENCH_profdb.json` so the persistence layer's performance
//! trajectory is tracked in-repo.
//!
//! ```text
//! svcbench                       # full sweep: {1M,10M,100M} sites x
//!                                # {single-log, 1, 16, 64 shards}
//! svcbench --quick --out b.json  # CI smoke: 1M sites, shards {1,16}
//! svcbench --gate 4.0            # fail unless shards-16 >= 4x single-log
//! ```
//!
//! Each scale point first builds (once — rebuilt only when the stamp
//! does not match) a warmup database with that many distinct branch
//! sites under `target/svcbench/`, streamed in bounded-memory chunks.
//! The measured phase then runs many writer threads, each submitting a
//! stream of small single-site profile records, and reports ops/sec
//! plus p50/p99 submit latency. Finally a crash is simulated by
//! tearing garbage onto every live segment tail, and recovery is the
//! wall time from reopen to the first durable group commit.
//!
//! The single-log baseline drives `mfprofdb::ProfileStore` behind one
//! mutex — one append+sync per record, the pre-sharding architecture.
//! The service rows drive `mfprofsvc::ProfileService` — concurrent
//! per-shard commits with batched group commit.
//!
//! Exit status: 0 on success, 1 when a `--gate` ratio is not met, 2 on
//! usage or I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use mffault::{RealVfs, Vfs};
use mfprofdb::{OpenOptions, ProfileStore};
use mfprofsvc::{ProfileService, ServiceOptions};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

const USAGE: &str = "\
usage: svcbench [OPTION...]

options:
  --quick             CI smoke: 1M sites, shards {1,16}, short streams
  --sites LIST        comma list of warmup scales, k/m suffixes allowed
                      (default: 1m,10m,100m)
  --shards LIST       comma list of shard counts (default: 1,16,64)
  --writers N         writer threads (default: 64)
  --ops N             submissions per writer per run (default: 64)
  --root DIR          warmup database directory (default: target/svcbench)
  --out PATH          JSON report path (default: BENCH_profdb.json)
  --gate RATIO        exit 1 unless, at every measured scale with a
                      16-shard row, shards-16 ops/sec >= RATIO x the
                      single-log baseline
  --probe-timeout S   watchdog for each post-crash recovery probe: if the
                      reopen + first durable commit has not completed
                      within S seconds the run fails with a structured
                      error instead of hanging (default 120, min 1)
  -h, --help          this message

exit status: 0 ok, 1 gate not met, 2 usage/IO error";

/// Entries per warmup record: ~2 MiB encoded, safely under the 4 MiB
/// frame cap even after per-shard splitting, large enough that a 100M
/// warmup is 1000 records, not millions.
const WARM_RECORD_SITES: u64 = 100_000;
/// Warmup records buffered between flushes: bounds peak memory to a few
/// records regardless of database scale (the low-memory config).
const WARM_FLUSH_EVERY: u64 = 4;

struct Options {
    quick: bool,
    sites: Vec<u64>,
    shards: Vec<u32>,
    writers: usize,
    ops: u64,
    root: PathBuf,
    out: PathBuf,
    gate: Option<f64>,
    probe_timeout: Duration,
}

fn parse_scale(v: &str) -> Result<u64, String> {
    let (digits, mult) = match v.to_ascii_lowercase() {
        ref s if s.ends_with('m') => (s[..s.len() - 1].to_string(), 1_000_000),
        ref s if s.ends_with('k') => (s[..s.len() - 1].to_string(), 1_000),
        s => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad scale '{v}' (use e.g. 10m, 500k, 1000000)"))?;
    if n == 0 {
        return Err("a scale must be at least 1 site".to_string());
    }
    Ok(n * mult)
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        quick: false,
        sites: Vec::new(),
        shards: Vec::new(),
        writers: 64,
        ops: 64,
        root: PathBuf::from("target/svcbench"),
        out: PathBuf::from("BENCH_profdb.json"),
        gate: None,
        probe_timeout: Duration::from_secs(120),
    };
    let mut iter = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => options.quick = true,
            "--sites" => {
                for part in value("--sites", &mut iter)?.split(',') {
                    options.sites.push(parse_scale(part)?);
                }
            }
            "--shards" => {
                for part in value("--shards", &mut iter)?.split(',') {
                    let n: u32 = part
                        .parse()
                        .map_err(|_| format!("bad shard count '{part}'"))?;
                    if n == 0 {
                        return Err("--shards entries must be at least 1".to_string());
                    }
                    options.shards.push(n);
                }
            }
            "--writers" => {
                let v = value("--writers", &mut iter)?;
                options.writers = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--writers expects a positive count, got '{v}'"))?;
            }
            "--ops" => {
                let v = value("--ops", &mut iter)?;
                options.ops = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--ops expects a positive count, got '{v}'"))?;
            }
            "--root" => options.root = PathBuf::from(value("--root", &mut iter)?),
            "--out" => options.out = PathBuf::from(value("--out", &mut iter)?),
            "--gate" => {
                let ratio: f64 = value("--gate", &mut iter)?
                    .parse()
                    .map_err(|_| "--gate requires a ratio like 4.0".to_string())?;
                if !ratio.is_finite() || ratio <= 0.0 {
                    return Err("--gate requires a positive finite ratio".to_string());
                }
                options.gate = Some(ratio);
            }
            "--probe-timeout" => {
                let v = value("--probe-timeout", &mut iter)?;
                let secs: u64 = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--probe-timeout expects a positive whole number of seconds, got '{v}'")
                })?;
                options.probe_timeout = Duration::from_secs(secs);
            }
            _ => return Err(format!("unknown argument '{arg}'")),
        }
    }
    if options.sites.is_empty() {
        options.sites = if options.quick {
            vec![1_000_000]
        } else {
            vec![1_000_000, 10_000_000, 100_000_000]
        };
    }
    if options.shards.is_empty() {
        options.shards = if options.quick {
            vec![1, 16]
        } else {
            vec![1, 16, 64]
        };
    }
    if options.quick {
        options.ops = options.ops.min(32);
    }
    Ok(Some(options))
}

/// One measured configuration at one scale.
struct Row {
    sites: u64,
    /// 0 = the single-log `ProfileStore` baseline.
    shards: u32,
    low_memory: bool,
    ops: u64,
    wall_secs: f64,
    p50_us: f64,
    p99_us: f64,
    recovery_ms: f64,
    warmup_ms: f64,
    db_bytes: u64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_secs.max(1e-9)
    }
    fn config(&self) -> String {
        match (self.shards, self.low_memory) {
            (0, _) => "single-log".to_string(),
            (n, false) => format!("shards-{n}"),
            (n, true) => format!("shards-{n}-lowmem"),
        }
    }
}

/// The deterministic site a writer's `op`-th submission updates.
fn site_of(writer: usize, op: u64, sites: u64) -> u32 {
    // A fixed odd multiplier walk: spreads ops across shards without a
    // RNG, and never leaves the warmed [0, sites) id range.
    ((writer as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(op.wrapping_mul(0x85EB_CA6B))
        % sites) as u32
}

fn one_site(id: u32) -> BranchCounts {
    [(BranchId(id), 1u64, 1u64)].into_iter().collect()
}

fn warm_counts(record: u64, sites: u64) -> BranchCounts {
    let base = record * WARM_RECORD_SITES;
    let end = (base + WARM_RECORD_SITES).min(sites);
    (base..end)
        .map(|id| (BranchId(id as u32), 2u64, 1u64))
        .collect()
}

fn dir_size(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            total += dir_size(&p);
        } else {
            total += e.metadata().map(|m| m.len()).unwrap_or(0);
        }
    }
    total
}

/// Tears `len` bytes of garbage onto the tail of every live segment
/// under `dir` (recursively): the on-disk picture a crash mid-append
/// leaves behind.
fn tear_segments(dir: &Path, len: usize) -> std::io::Result<usize> {
    use std::io::Write as _;
    let mut torn = 0;
    for e in std::fs::read_dir(dir)?.flatten() {
        let p = e.path();
        if p.is_dir() {
            torn += tear_segments(&p, len)?;
        } else if p.extension().is_some_and(|x| x == "mfdb") {
            let mut f = std::fs::OpenOptions::new().append(true).open(&p)?;
            f.write_all(&vec![0xAB; len])?;
            torn += 1;
        }
    }
    Ok(torn)
}

/// Percentile (by nearest-rank) of an unsorted latency sample, in µs.
fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn svc_options(shards: u32, low_memory: bool) -> ServiceOptions {
    ServiceOptions {
        shards,
        max_batch: if low_memory { 4 } else { 64 },
        ..ServiceOptions::default()
    }
}

/// Builds (or reuses) the warmup database for `(sites, shards)`;
/// `shards == 0` is the single-log baseline. Returns the database
/// directory and the build time (0 when reused).
fn warm_db(root: &Path, sites: u64, shards: u32) -> Result<(PathBuf, f64), String> {
    let dir = root.join(format!("db-{sites}-s{shards}"));
    let stamp_path = dir.join("WARMED");
    let stamp = format!("sites={sites} shards={shards} record={WARM_RECORD_SITES}");
    if std::fs::read_to_string(&stamp_path).is_ok_and(|s| s == stamp) {
        return Ok((dir, 0.0));
    }
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let start = Instant::now();
    let records = sites.div_ceil(WARM_RECORD_SITES);
    let vfs: Arc<dyn Vfs> = Arc::new(RealVfs);
    if shards == 0 {
        let mut store = ProfileStore::open(vfs, &dir, OpenOptions::default())
            .map_err(|e| format!("open baseline {}: {e}", dir.display()))?;
        for r in 0..records {
            store
                .append(&format!("warm/{}", r % 7), &warm_counts(r, sites))
                .map_err(|e| format!("warm baseline: {e}"))?;
        }
        if !store.is_persistent() {
            return Err(format!("baseline warmup degraded at {}", dir.display()));
        }
    } else {
        let svc = ProfileService::open(vfs, &dir, svc_options(shards, false))
            .map_err(|e| format!("open service {}: {e}", dir.display()))?;
        for r in 0..records {
            svc.enqueue(&format!("warm/{}", r % 7), &warm_counts(r, sites))
                .map_err(|e| format!("warm enqueue: {e}"))?;
            if (r + 1) % WARM_FLUSH_EVERY == 0 || r + 1 == records {
                svc.flush().map_err(|e| format!("warm flush: {e}"))?;
            }
        }
        if !svc.is_persistent() {
            return Err(format!("service warmup degraded at {}", dir.display()));
        }
    }
    let warm_secs = start.elapsed().as_secs_f64();
    std::fs::write(&stamp_path, stamp).map_err(|e| format!("stamp: {e}"))?;
    Ok((dir, warm_secs * 1000.0))
}

/// Measured phase for the sharded service: `writers` threads submit
/// single-site records concurrently; then a simulated crash and a timed
/// Runs `job` on its own thread and waits at most `timeout` for it. A
/// recovery probe that deadlocks (lock protocol bug, lost group-commit
/// wakeup) would otherwise hang the whole bench forever; the watchdog
/// converts the hang into a structured failure. On timeout the worker
/// thread is abandoned — the caller exits the process, which reaps it.
fn with_watchdog<T: Send + 'static>(
    timeout: Duration,
    what: &str,
    job: impl FnOnce() -> Result<T, String> + Send + 'static,
) -> Result<T, String> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name("recovery-probe".to_string())
        .spawn(move || {
            let _ = tx.send(job());
        })
        .map_err(|e| format!("spawn recovery probe: {e}"))?;
    match rx.recv_timeout(timeout) {
        Ok(result) => result,
        Err(_) => Err(format!(
            "{what} hung: no durable commit within {}s watchdog (--probe-timeout)",
            timeout.as_secs()
        )),
    }
}

/// recovery (reopen + first durable group commit).
fn bench_service(
    dir: &Path,
    shards: u32,
    sites: u64,
    writers: usize,
    ops_per_writer: u64,
    low_memory: bool,
    probe_timeout: Duration,
) -> Result<(f64, Vec<f64>, f64), String> {
    let vfs: Arc<dyn Vfs> = Arc::new(RealVfs);
    let svc = Arc::new(
        ProfileService::open(Arc::clone(&vfs), dir, svc_options(shards, low_memory))
            .map_err(|e| format!("open: {e}"))?,
    );
    let barrier = Arc::new(Barrier::new(writers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let svc = Arc::clone(&svc);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let dataset = format!("bench/w{w}");
            let mut lat = Vec::with_capacity(ops_per_writer as usize);
            barrier.wait();
            for op in 0..ops_per_writer {
                let counts = one_site(site_of(w, op, sites));
                let t = Instant::now();
                svc.submit(&dataset, &counts)
                    .map_err(|e| format!("submit: {e}"))?;
                lat.push(t.elapsed().as_secs_f64() * 1e6);
            }
            Ok(lat)
        }));
    }
    barrier.wait();
    let wall_start = Instant::now();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().map_err(|_| "writer panicked".to_string())??);
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();
    if !svc.is_persistent() {
        return Err("service degraded during the measured phase".to_string());
    }
    drop(svc);

    // Crash: tear garbage onto every live segment, then time reopen to
    // first durable commit — the service's recovery path end to end,
    // under the watchdog so a recovery deadlock fails instead of hanging.
    tear_segments(dir, 4096).map_err(|e| format!("tear: {e}"))?;
    let dir = dir.to_path_buf();
    let recovery_ms = with_watchdog(probe_timeout, "service recovery probe", move || {
        let t = Instant::now();
        let svc = ProfileService::open(vfs, &dir, svc_options(shards, low_memory))
            .map_err(|e| format!("reopen: {e}"))?;
        // One submission spread over enough sites to touch (and so
        // repair) every shard with overwhelming probability.
        let probe: BranchCounts = (0..1024u32).map(|i| (BranchId(i), 1u64, 0u64)).collect();
        svc.submit("bench/recovery-probe", &probe)
            .map_err(|e| format!("recovery probe: {e}"))?;
        if !svc.is_persistent() {
            return Err("service degraded during recovery".to_string());
        }
        Ok(t.elapsed().as_secs_f64() * 1000.0)
    })?;
    Ok((wall_secs, latencies, recovery_ms))
}

/// Measured phase for the single-log baseline: the same submission
/// stream through one `ProfileStore` behind one mutex — one append+sync
/// per record, fully serialized.
fn bench_single_log(
    dir: &Path,
    sites: u64,
    writers: usize,
    ops_per_writer: u64,
    probe_timeout: Duration,
) -> Result<(f64, Vec<f64>, f64), String> {
    let vfs: Arc<dyn Vfs> = Arc::new(RealVfs);
    let store = ProfileStore::open(Arc::clone(&vfs), dir, OpenOptions::default())
        .map_err(|e| format!("open: {e}"))?;
    let store = Arc::new(Mutex::new(store));
    let barrier = Arc::new(Barrier::new(writers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let dataset = format!("bench/w{w}");
            let mut lat = Vec::with_capacity(ops_per_writer as usize);
            barrier.wait();
            for op in 0..ops_per_writer {
                let counts = one_site(site_of(w, op, sites));
                let t = Instant::now();
                store
                    .lock()
                    .expect("store lock")
                    .append(&dataset, &counts)
                    .map_err(|e| format!("append: {e}"))?;
                lat.push(t.elapsed().as_secs_f64() * 1e6);
            }
            Ok(lat)
        }));
    }
    barrier.wait();
    let wall_start = Instant::now();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().map_err(|_| "writer panicked".to_string())??);
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();
    {
        let store = store.lock().expect("store lock");
        if !store.is_persistent() {
            return Err("baseline degraded during the measured phase".to_string());
        }
    }
    drop(store);

    tear_segments(dir, 4096).map_err(|e| format!("tear: {e}"))?;
    let dir = dir.to_path_buf();
    let recovery_ms = with_watchdog(probe_timeout, "single-log recovery probe", move || {
        let t = Instant::now();
        let mut store = ProfileStore::open(vfs, &dir, OpenOptions::default())
            .map_err(|e| format!("reopen: {e}"))?;
        store
            .append("bench/recovery-probe", &one_site(0))
            .map_err(|e| format!("recovery probe: {e}"))?;
        if !store.is_persistent() {
            return Err("baseline degraded during recovery".to_string());
        }
        Ok(t.elapsed().as_secs_f64() * 1000.0)
    })?;
    Ok((wall_secs, latencies, recovery_ms))
}

fn run_config(options: &Options, sites: u64, shards: u32, low_memory: bool) -> Result<Row, String> {
    let (dir, warmup_ms) = warm_db(&options.root, sites, shards)?;
    let (wall_secs, mut latencies, recovery_ms) = if shards == 0 {
        bench_single_log(
            &dir,
            sites,
            options.writers,
            options.ops,
            options.probe_timeout,
        )?
    } else {
        bench_service(
            &dir,
            shards,
            sites,
            options.writers,
            options.ops,
            low_memory,
            options.probe_timeout,
        )?
    };
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let row = Row {
        sites,
        shards,
        low_memory,
        ops: options.writers as u64 * options.ops,
        wall_secs,
        p50_us: percentile_us(&latencies, 50.0),
        p99_us: percentile_us(&latencies, 99.0),
        recovery_ms,
        warmup_ms,
        db_bytes: dir_size(&dir),
    };
    eprintln!(
        "{:>11} sites  {:<16} {:>9.0} ops/s  p50 {:>8.0}us  p99 {:>8.0}us  recovery {:>8.1}ms",
        row.sites,
        row.config(),
        row.ops_per_sec(),
        row.p50_us,
        row.p99_us,
        row.recovery_ms,
    );
    Ok(row)
}

fn json_report(rows: &[Row], options: &Options) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"profile-service\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if options.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"writers\": {},\n", options.writers));
    out.push_str(&format!("  \"ops_per_writer\": {},\n", options.ops));
    out.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sites\": {}, \"config\": \"{}\", \"shards\": {}, \
             \"low_memory\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"recovery_ms\": {:.2}, \
             \"warmup_ms\": {:.0}, \"db_bytes\": {}}}{}\n",
            r.sites,
            r.config(),
            r.shards,
            r.low_memory,
            r.ops,
            r.ops_per_sec(),
            r.p50_us,
            r.p99_us,
            r.recovery_ms,
            r.warmup_ms,
            r.db_bytes,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups_vs_single_log\": {\n");
    let speedups = speedups(rows);
    for (i, (sites, shards, ratio)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{sites}x{shards}\": {ratio:.3}{}\n",
            if i + 1 == speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// `(sites, shards, sharded/single-log ops-per-sec ratio)` for every
/// scale that has both a baseline and a (non-low-memory) sharded row.
fn speedups(rows: &[Row]) -> Vec<(u64, u32, f64)> {
    let mut out = Vec::new();
    for base in rows.iter().filter(|r| r.shards == 0) {
        for r in rows {
            if r.sites == base.sites && r.shards > 0 && !r.low_memory {
                out.push((r.sites, r.shards, r.ops_per_sec() / base.ops_per_sec()));
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("svcbench: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut rows = Vec::new();
    for &sites in &options.sites {
        // Baseline first: the speedup denominators.
        let mut configs: Vec<(u32, bool)> = vec![(0, false)];
        configs.extend(options.shards.iter().map(|&s| (s, false)));
        // One low-memory variant per sweep: the largest shard count at
        // this scale with a tiny group-commit batch cap.
        if !options.quick {
            if let Some(&s) = options.shards.iter().max() {
                configs.push((s, true));
            }
        }
        for (shards, low_memory) in configs {
            match run_config(&options, sites, shards, low_memory) {
                Ok(row) => rows.push(row),
                Err(e) => {
                    eprintln!("svcbench: {sites} sites, {shards} shards: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let report = json_report(&rows, &options);
    if let Err(e) = std::fs::write(&options.out, &report) {
        eprintln!("svcbench: writing {} failed: {e}", options.out.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "svcbench: {} runs; wrote {}",
        rows.len(),
        options.out.display()
    );

    if let Some(gate) = options.gate {
        let checked: Vec<_> = speedups(&rows)
            .into_iter()
            .filter(|&(_, shards, _)| shards == 16)
            .collect();
        if checked.is_empty() {
            eprintln!("svcbench: GATE FAILED: no 16-shard rows to check");
            return ExitCode::FAILURE;
        }
        for (sites, _, ratio) in checked {
            if ratio < gate {
                eprintln!(
                    "svcbench: GATE FAILED: {sites} sites shards-16 at {ratio:.2}x \
                     < required {gate:.2}x"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("svcbench: gate met at {sites} sites ({ratio:.2}x >= {gate:.2}x)");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_passes_results_and_errors_through() {
        let ok = with_watchdog(Duration::from_secs(5), "probe", || Ok(7u32));
        assert_eq!(ok, Ok(7));
        let err = with_watchdog(Duration::from_secs(5), "probe", || {
            Err::<u32, _>("boom".to_string())
        });
        assert_eq!(err, Err("boom".to_string()));
    }

    #[test]
    fn watchdog_converts_a_hang_into_a_structured_error() {
        let hung = with_watchdog(Duration::from_millis(50), "service recovery probe", || {
            std::thread::sleep(Duration::from_secs(2));
            Ok(0u32)
        });
        let message = hung.expect_err("a hang must fail");
        assert!(message.contains("service recovery probe hung"), "{message}");
        assert!(message.contains("--probe-timeout"), "{message}");
    }

    #[test]
    fn probe_timeout_flag_parses_and_validates() {
        let args: Vec<String> = ["--probe-timeout", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_args(&args).expect("valid").expect("not help");
        assert_eq!(options.probe_timeout, Duration::from_secs(7));
        for bad in [
            &["--probe-timeout", "0"][..],
            &["--probe-timeout", "soon"][..],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_args(&args).is_err(), "{bad:?} must be rejected");
        }
        let default = parse_args(&[]).expect("valid").expect("not help");
        assert_eq!(default.probe_timeout, Duration::from_secs(120));
    }
}
