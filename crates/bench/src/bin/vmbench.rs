//! `vmbench`: guest-instrs/sec for both VM backends over the workload
//! suite, written as `BENCH_vm.json` so the interpreter's performance
//! trajectory is tracked in-repo. Each workload is additionally measured
//! under two profile-guided flat layouts — one fed the *real* branch
//! profile of a reference run, one fed the committed `mfpredict` model's
//! pseudo-profile (free prediction: no profiling run required) — so the
//! report quantifies how much of the profile-layout win static
//! prediction recovers.
//!
//! ```text
//! vmbench                        # full suite, calibrated batches
//! vmbench --quick --out b.json   # CI smoke: small subset, short batches
//! vmbench --gate 2.0             # fail unless flat >= 2x reference
//! ```
//!
//! Each workload's first dataset runs on the reference (tree-walking) and
//! flat (pre-compiled bytecode) backends. A measurement is a calibrated
//! batch: iterations double until the batch takes long enough to time
//! reliably, and throughput is `guest instructions x iterations / batch
//! seconds`. The flat backend's one-time flatten cost is paid during
//! warmup, matching how the harness amortizes it (one `Vm` per program,
//! many runs).
//!
//! Exit status: 0 on success, 1 when a `--gate` ratio is not met, 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mfwork::{suite, Workload};
use trace_vm::{Backend, BranchCounts, FlatProgram, Input, Vm, VmConfig};

const USAGE: &str = "\
usage: vmbench [OPTION...]

options:
  --quick             small workload subset and short batches (CI smoke)
  --workload NAME     benchmark only NAME (repeatable)
  --out PATH          where to write the JSON report (default BENCH_vm.json)
  --gate RATIO        exit 1 unless the geometric-mean flat/reference
                      speedup is at least RATIO
  --gate-min RATIO    exit 1 unless EVERY workload's flat/reference
                      speedup is at least RATIO (per-workload floor)
  -h, --help          this message

exit status: 0 ok, 1 gate not met, 2 usage/IO error";

/// The quick subset: one small workload per shape class, so a CI smoke
/// run still touches floats, arrays, and call-heavy control flow.
const QUICK: &[&str] = &["doduc", "spiff", "mfcom"];

struct Options {
    quick: bool,
    workloads: Vec<String>,
    out: PathBuf,
    gate: Option<f64>,
    gate_min: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        quick: false,
        workloads: Vec::new(),
        out: PathBuf::from("BENCH_vm.json"),
        gate: None,
        gate_min: None,
    };
    let mut iter = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => options.quick = true,
            "--workload" => options.workloads.push(value("--workload", &mut iter)?),
            "--out" => options.out = PathBuf::from(value("--out", &mut iter)?),
            flag @ ("--gate" | "--gate-min") => {
                let ratio: f64 = value(flag, &mut iter)?
                    .parse()
                    .map_err(|_| format!("{flag} requires a ratio like 2.0"))?;
                if !ratio.is_finite() || ratio <= 0.0 {
                    return Err(format!("{flag} requires a positive finite ratio"));
                }
                if flag == "--gate" {
                    options.gate = Some(ratio);
                } else {
                    options.gate_min = Some(ratio);
                }
            }
            _ => return Err(format!("unknown argument '{arg}'")),
        }
    }
    Ok(Some(options))
}

/// One workload's measurement on both backends and both profile-guided
/// flat layouts.
struct Row {
    name: String,
    dataset: String,
    guest_instrs: u64,
    reference_ips: f64,
    flat_ips: f64,
    /// Flat backend, blocks laid out along a real profile of this run.
    profile_flat_ips: f64,
    /// Flat backend, blocks laid out along the static model's
    /// pseudo-profile — prediction for free, no profiling run.
    ml_flat_ips: f64,
    /// Mispredicted conditional branches under perfect static profile
    /// prediction (the paper's measure): each branch contributes its
    /// minority direction count, `min(taken, executed - taken)`.
    profile_mispredicts: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.flat_ips / self.reference_ips
    }

    /// Layout speedup of the real-profile flat build over default BTFN.
    fn profile_layout_speedup(&self) -> f64 {
        self.profile_flat_ips / self.flat_ips
    }

    /// Layout speedup of the ML pseudo-profile flat build over default
    /// BTFN.
    fn ml_layout_speedup(&self) -> f64 {
        self.ml_flat_ips / self.flat_ips
    }

    /// Guest instructions retired per profile-predicted mispredict — the
    /// paper's run-length measure. Branch-free workloads report the whole
    /// run as one gap.
    fn instrs_per_mispredict(&self) -> f64 {
        self.guest_instrs as f64 / (self.profile_mispredicts.max(1)) as f64
    }
}

/// Measures guest-instrs/sec for one workload on both backends and both
/// profile-guided flat layouts:
/// `(guest_instrs, profile_mispredicts, reference_ips, flat_ips,
/// profile_flat_ips, ml_flat_ips)`.
///
/// The warmup runs pay one-time costs (the flat backend's flatten pass) and
/// pin the per-run instruction count. A shared batch size is calibrated on
/// the reference backend, then every engine runs in *interleaved* rounds
/// with each engine's best round reported: machine-speed drift (frequency
/// scaling, competing load) hits all engines alike instead of biasing
/// whichever happened to run last, and best-of samples each engine at
/// the machine's fast state.
///
/// The real-profile layout is fed the branch counters of the reference
/// warmup run — a self-profile, the best case for layout. The ML layout
/// is fed the committed static model's pseudo-profile: what layout gets
/// without any profiling run at all.
fn measure_engines(
    w: &Workload,
    inputs: &[Input],
    max_batch_secs: f64,
) -> (u64, u64, f64, f64, f64, f64) {
    let program = w.compile().expect("bundled workload compiles");
    let vms = [Backend::Reference, Backend::Flat].map(|backend| {
        Vm::with_config(
            &program,
            VmConfig {
                backend,
                ..w.vm_config()
            },
        )
    });
    let warmup = vms
        .each_ref()
        .map(|vm| vm.run(inputs).unwrap_or_else(|e| panic!("{}: {e}", w.name)));
    assert_eq!(
        warmup[0].stats.total_instrs, warmup[1].stats.total_instrs,
        "{}: backends disagree on instruction count",
        w.name
    );
    let instrs = warmup[0].stats.total_instrs;
    // Perfect static profile prediction mispredicts exactly the minority
    // direction of every branch (Fisher & Freudenberger's bound).
    let mispredicts: u64 = warmup[0]
        .stats
        .branches
        .iter()
        .map(|(_, executed, taken)| taken.min(executed - taken))
        .sum();

    let flat_config = VmConfig {
        backend: Backend::Flat,
        ..w.vm_config()
    };
    let profile_flat = FlatProgram::compile_with_profile(&program, &warmup[0].stats.branches);
    let ml_profile: BranchCounts = mfpredict::pseudo_profile(mfpredict::ml_directions(&program))
        .into_iter()
        .collect();
    let ml_flat = FlatProgram::compile_with_profile(&program, &ml_profile);

    type Engine<'a> = Box<dyn Fn(&[Input]) -> trace_vm::Run + 'a>;
    let engines: [Engine; 4] = [
        Box::new(|inputs| {
            vms[0]
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        }),
        Box::new(|inputs| {
            vms[1]
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        }),
        Box::new(|inputs| {
            profile_flat
                .run(flat_config, inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        }),
        Box::new(|inputs| {
            ml_flat
                .run(flat_config, inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        }),
    ];
    // Layout must be invisible in the semantics: every engine retires the
    // same guest instruction count.
    for engine in &engines {
        assert_eq!(
            engine(inputs).stats.total_instrs,
            instrs,
            "{}: engines disagree on instruction count",
            w.name
        );
    }

    let batch = |engine: &Engine, iters: u64| -> f64 {
        let start = Instant::now();
        for _ in 0..iters {
            let run = engine(inputs);
            // Consuming the result keeps the run from being optimized out
            // and re-checks determinism while we are here.
            assert_eq!(
                run.stats.total_instrs, instrs,
                "{}: nondeterministic run",
                w.name
            );
        }
        start.elapsed().as_secs_f64().max(1e-9)
    };

    let mut iters: u64 = 1;
    while batch(&engines[0], iters) < max_batch_secs / 4.0 && iters < 4096 {
        iters *= 2;
    }
    let mut best = [0.0f64; 4];
    for _ in 0..3 {
        for (k, engine) in engines.iter().enumerate() {
            let ips = (instrs as f64 * iters as f64) / batch(engine, iters);
            best[k] = best[k].max(ips);
        }
    }
    (instrs, mispredicts, best[0], best[1], best[2], best[3])
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

fn json_report(rows: &[Row], mode: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"vm-backends\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"unit\": \"guest_instrs_per_sec\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"dataset\": \"{}\", \"guest_instrs\": {}, \
             \"reference_ips\": {:.0}, \"flat_ips\": {:.0}, \"speedup\": {:.3}, \
             \"profile_flat_ips\": {:.0}, \"ml_flat_ips\": {:.0}, \
             \"profile_layout_speedup\": {:.3}, \"ml_layout_speedup\": {:.3}, \
             \"profile_mispredicts\": {}, \"instrs_per_mispredict\": {:.1}}}{}\n",
            r.name,
            r.dataset,
            r.guest_instrs,
            r.reference_ips,
            r.flat_ips,
            r.speedup(),
            r.profile_flat_ips,
            r.ml_flat_ips,
            r.profile_layout_speedup(),
            r.ml_layout_speedup(),
            r.profile_mispredicts,
            r.instrs_per_mispredict(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let speedups: Vec<f64> = rows.iter().map(Row::speedup).collect();
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "  \"geomean_profile_layout_speedup\": {:.3},\n",
        geomean(rows.iter().map(Row::profile_layout_speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_ml_layout_speedup\": {:.3},\n",
        geomean(rows.iter().map(Row::ml_layout_speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_speedup\": {:.3},\n",
        geomean(speedups.iter().copied())
    ));
    out.push_str(&format!(
        "  \"min_speedup\": {:.3}\n",
        if min.is_finite() { min } else { 0.0 }
    ));
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("vmbench: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let max_batch_secs = if options.quick { 0.1 } else { 1.0 };
    let selected: Vec<Workload> = suite()
        .into_iter()
        .filter(|w| {
            if !options.workloads.is_empty() {
                options.workloads.iter().any(|n| n == w.name)
            } else {
                !options.quick || QUICK.contains(&w.name)
            }
        })
        .collect();
    if selected.is_empty() {
        eprintln!("vmbench: no workloads selected\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut rows = Vec::with_capacity(selected.len());
    for w in &selected {
        let d = &w.datasets[0];
        let (instrs, profile_mispredicts, reference_ips, flat_ips, profile_flat_ips, ml_flat_ips) =
            measure_engines(w, &d.inputs, max_batch_secs);
        let row = Row {
            name: w.name.to_string(),
            dataset: d.name.clone(),
            guest_instrs: instrs,
            reference_ips,
            flat_ips,
            profile_flat_ips,
            ml_flat_ips,
            profile_mispredicts,
        };
        eprintln!(
            "{:<12} {:<10} {:>12} instrs  reference {:>12.0}/s  flat {:>12.0}/s  \
             {:>5.2}x  layout: profile {:>5.2}x  ml {:>5.2}x",
            row.name,
            row.dataset,
            row.guest_instrs,
            row.reference_ips,
            row.flat_ips,
            row.speedup(),
            row.profile_layout_speedup(),
            row.ml_layout_speedup()
        );
        rows.push(row);
    }

    let report = json_report(&rows, if options.quick { "quick" } else { "full" });
    if let Err(e) = std::fs::write(&options.out, &report) {
        eprintln!("vmbench: writing {} failed: {e}", options.out.display());
        return ExitCode::from(2);
    }
    // The paper's cross-cut: how the flat backend's win relates to branch
    // density. Short runs between mispredicted branches mean control-heavy
    // code (edge-head fusion territory); long runs mean straight-line
    // arithmetic (pair/superinstruction territory).
    eprintln!("\nspeedup vs instructions-per-mispredict (profile-predicted):");
    eprintln!(
        "{:<12} {:>16} {:>9}",
        "workload", "instrs/mispredict", "speedup"
    );
    let mut by_ipm: Vec<&Row> = rows.iter().collect();
    by_ipm.sort_by(|a, b| {
        a.instrs_per_mispredict()
            .total_cmp(&b.instrs_per_mispredict())
    });
    for r in by_ipm {
        eprintln!(
            "{:<12} {:>16.1} {:>8.2}x",
            r.name,
            r.instrs_per_mispredict(),
            r.speedup()
        );
    }

    let overall = geomean(rows.iter().map(Row::speedup));
    eprintln!(
        "vmbench: geomean flat/reference speedup {overall:.2}x over {} workloads; wrote {}",
        rows.len(),
        options.out.display()
    );

    let mut failed = false;
    if let Some(gate) = options.gate {
        if overall < gate {
            eprintln!("vmbench: GATE FAILED: {overall:.2}x < required {gate:.2}x");
            failed = true;
        } else {
            eprintln!("vmbench: gate met ({overall:.2}x >= {gate:.2}x)");
        }
    }
    if let Some(floor) = options.gate_min {
        let worst = rows
            .iter()
            .min_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("at least one workload");
        if worst.speedup() < floor {
            eprintln!(
                "vmbench: MIN GATE FAILED: {} at {:.2}x < required {floor:.2}x",
                worst.name,
                worst.speedup()
            );
            failed = true;
        } else {
            eprintln!(
                "vmbench: min gate met (worst {} at {:.2}x >= {floor:.2}x)",
                worst.name,
                worst.speedup()
            );
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
