//! `dynbench`: characterizes the online dynamic-predictor zoo against
//! profile feedback.
//!
//! ```text
//! dynbench                         # full suite headline + sweeps
//! dynbench --quick                 # three-workload subset (CI smoke)
//! dynbench --quick --gate          # fail (exit 1) on malformed results
//! dynbench --out BENCH_dynpred.json
//! ```
//!
//! Four experiments, all deterministic and `--jobs`-invariant:
//!
//! 1. **Headline** — instructions per mispredicted branch for static
//!    profile feedback (leave-one-out), BTFN, the committed ML model, and
//!    every online predictor in the `mfdyn` roster, per program×dataset,
//!    with geomeans.
//! 2. **History sweep** — gshare mispredict rate at 4/8/12/16 bits of
//!    global history (fixed 12-bit table).
//! 3. **Table-size sweep** — gshare mispredict rate at 8 bits of history
//!    as the table shrinks from 12 to 4 index bits (aliasing pressure).
//! 4. **Padding distance** — a synthetic pair of perfectly correlated
//!    branches separated by a growing run of constant padding branches:
//!    once the padding exceeds the history length, the correlation falls
//!    out of the register and gshare degrades to a coin flip.
//!
//! Exit codes: 0 success, 1 `--gate` violation, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use mfbench::{
    collect, collect_subset, configure_harness, dyn_geomeans, dyn_rows, dyn_table, harness, DynRow,
    SuiteRuns, DYN_COLUMNS, ML_TRAIN_MARKER,
};
use mfdyn::DynSpec;
use mfharness::{DiskCache, HarnessOptions, RunJob};
use mfreport::{fmt_percent, Table};
use trace_vm::{Backend, Input, Vm, VmConfig};

const QUICK: &[&str] = &["doduc", "spiff", "mfcom"];

/// Gshare history lengths the sweeps and padding experiment cover.
const HISTORIES: [u32; 4] = [4, 8, 12, 16];

/// Gshare table sizes (index bits) the aliasing sweep covers.
const TABLE_BITS: [u32; 5] = [4, 6, 8, 10, 12];

/// Padding distances (correlated-branch separation) the synthetic
/// experiment covers.
const PADDINGS: [usize; 6] = [0, 1, 2, 4, 8, 16];

const USAGE: &str = "\
usage: dynbench [OPTION...]

options:
  --quick             three-workload subset instead of the full suite
  --gate              validate the results (well-formed headline, rates in
                      range, padding degrades gshare) and exit 1 on any
                      violation
  --gate-min-ipm N    with --gate: additionally fail unless every headline
                      geomean is at least N instructions per mispredict
  --out PATH          write the machine-readable results (the
                      BENCH_dynpred.json schema) to PATH
  --jobs N            worker threads for the collection harness
  --no-cache          skip the persistent run cache
  -h, --help          this message";

struct Options {
    quick: bool,
    gate: bool,
    gate_min_ipm: Option<f64>,
    out: Option<PathBuf>,
    jobs: Option<usize>,
    no_cache: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        quick: false,
        gate: false,
        gate_min_ipm: None,
        out: None,
        jobs: None,
        no_cache: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let value = |iter: &mut std::slice::Iter<String>| -> Result<String, String> {
            match inline_value.clone().or_else(|| iter.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(format!("{flag} requires a value")),
            }
        };
        match flag {
            "-h" | "--help" => return Ok(None),
            "--quick" => options.quick = true,
            "--gate" => options.gate = true,
            "--gate-min-ipm" => {
                let v = value(&mut iter)?;
                let n: f64 = v
                    .parse()
                    .map_err(|_| format!("--gate-min-ipm expects a number, got '{v}'"))?;
                if !n.is_finite() || n < 0.0 {
                    return Err("--gate-min-ipm must be a finite non-negative number".to_string());
                }
                options.gate_min_ipm = Some(n);
            }
            "--out" => options.out = Some(PathBuf::from(value(&mut iter)?)),
            "--jobs" => {
                let v = value(&mut iter)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got '{v}'"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                options.jobs = Some(n);
            }
            "--no-cache" => options.no_cache = true,
            _ => return Err(format!("unknown flag '{arg}'")),
        }
    }
    Ok(Some(options))
}

fn section(title: &str) {
    println!(
        "\n==== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

/// The measurement VM configuration for the sweep runs: the workload's
/// canonical limits on the flat backend (predictor tallies are
/// backend-invariant; flat is just faster).
fn sweep_config(base: VmConfig) -> VmConfig {
    VmConfig {
        backend: Backend::Flat,
        ..base
    }
}

/// One sweep row: gshare mispredict rates per swept parameter value.
struct SweepRow {
    program: String,
    dataset: String,
    rates: Vec<f64>,
}

/// Drives a parameterized gshare family over each selected workload's
/// first dataset through the harness (one observed run per workload, all
/// predictors riding on it).
fn gshare_sweep(names: &[&str], specs: &[DynSpec]) -> Vec<SweepRow> {
    let all = mfwork::suite();
    let mut selected = Vec::new();
    let mut jobs = Vec::new();
    for w in all.iter().filter(|w| names.contains(&w.name)) {
        let d = &w.datasets[0];
        let program = Arc::new(w.compile().expect("bundled workload compiles"));
        jobs.push(
            RunJob::new(
                w.name,
                d.name.clone(),
                program,
                d.inputs.clone(),
                sweep_config(w.vm_config()),
            )
            .with_zoo(specs.to_vec()),
        );
        selected.push((w.name.to_string(), d.name.clone()));
    }
    let outcomes = harness().run(jobs).unwrap_or_else(|e| panic!("{e}"));
    selected
        .into_iter()
        .zip(outcomes)
        .map(|((program, dataset), outcome)| {
            let report = outcome.zoo.as_deref().expect("zoo jobs carry a report");
            let rates = specs
                .iter()
                .map(|&spec| {
                    report
                        .get(spec)
                        .expect("sweep spec in report")
                        .mispredict_rate()
                })
                .collect();
            SweepRow {
                program,
                dataset,
                rates,
            }
        })
        .collect()
}

fn sweep_table(title_cols: &[String], rows: &[SweepRow]) -> Table {
    let mut headers: Vec<&str> = vec!["PROGRAM", "DATASET"];
    headers.extend(title_cols.iter().map(String::as_str));
    let mut t = Table::new(&headers);
    for r in rows {
        let mut cells = vec![r.program.clone(), r.dataset.clone()];
        cells.extend(r.rates.iter().map(|&v| fmt_percent(v)));
        t.row_owned(cells);
    }
    t
}

/// The synthetic correlated-branch program: branch A follows a
/// pseudo-random bit, `pad` constant (always-taken) branches execute, then
/// branch B repeats A's direction exactly. With `pad + 1 <= history` the
/// gshare register still holds A's outcome when B is predicted; past that,
/// B's relevant bit has been shifted out and only constants remain.
///
/// Every `if` body deliberately holds *two* statements: the mflang front
/// end if-converts single-assignment bodies into `select` instructions
/// (as the Trace front ends did), which would erase the very branches
/// this experiment measures.
fn padding_source(pad: usize) -> String {
    let mut body = String::new();
    for _ in 0..pad {
        body.push_str("        if (i >= 0) { acc = acc + 1; acc = acc + 1; }\n");
    }
    format!(
        "fn main(n: int) {{\n\
         \x20   var seed: int = 123456789;\n\
         \x20   var acc: int = 0;\n\
         \x20   var i: int = 0;\n\
         \x20   while (i < n) {{\n\
         \x20       seed = (seed * 1103515245 + 12345) % 1073741824;\n\
         \x20       var a: int = seed / 536870912;\n\
         \x20       if (a == 1) {{ acc = acc + 1; acc = acc + 1; }}\n\
         {body}\
         \x20       if (a == 1) {{ acc = acc + 2; acc = acc + 2; }}\n\
         \x20       i = i + 1;\n\
         \x20   }}\n\
         \x20   emit(acc);\n\
         }}\n"
    )
}

/// Loop iterations the synthetic padding programs run.
const PADDING_ITERS: i64 = 3000;

/// One padding row: gshare mispredicts *per loop iteration* per history
/// length at one padding distance. Per-iteration, not rate: the padding
/// branches are perfectly predictable, so a plain rate would be diluted by
/// the very padding under study. Per iteration, the pseudo-random branch A
/// costs ~0.5 regardless, and its correlated copy B costs ~0 while A's
/// outcome is still in the history register — and another ~0.5 once the
/// padding has pushed it out.
struct PaddingRow {
    pad: usize,
    misp_per_iter: Vec<f64>,
}

fn padding_experiment() -> Vec<PaddingRow> {
    let specs: Vec<DynSpec> = HISTORIES
        .iter()
        .map(|&h| DynSpec::Gshare {
            history: h,
            table_bits: 16,
        })
        .collect();
    PADDINGS
        .iter()
        .map(|&pad| {
            let source = padding_source(pad);
            let program = mflang::compile(&source).expect("synthetic program compiles");
            let mut zoo = mfdyn::Zoo::for_program(&specs, &program);
            Vm::with_config(&program, sweep_config(VmConfig::default()))
                .run_branches(&[Input::Int(PADDING_ITERS)], &mut zoo)
                .expect("synthetic program runs");
            let report = zoo.report();
            let misp_per_iter = specs
                .iter()
                .map(|&spec| {
                    report.get(spec).expect("spec in report").mispredicted as f64
                        / PADDING_ITERS as f64
                })
                .collect();
            PaddingRow { pad, misp_per_iter }
        })
        .collect()
}

fn padding_table(rows: &[PaddingRow]) -> Table {
    let cols: Vec<String> = HISTORIES.iter().map(|h| format!("H{h}")).collect();
    let mut headers: Vec<&str> = vec!["PADDING"];
    headers.extend(cols.iter().map(String::as_str));
    let mut t = Table::new(&headers);
    for r in rows {
        let mut cells = vec![r.pad.to_string()];
        cells.extend(r.misp_per_iter.iter().map(|&v| format!("{v:.3}")));
        t.row_owned(cells);
    }
    t
}

fn json_f64(v: f64) -> String {
    format!("{v:.4}")
}

/// The whole result set as the committed `BENCH_dynpred.json` schema.
fn results_json(
    quick: bool,
    rows: &[DynRow],
    geomeans: &[Option<f64>],
    history: &[SweepRow],
    tables: &[SweepRow],
    padding: &[PaddingRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"columns\": [{}],\n",
        DYN_COLUMNS
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let cell = |v: &Option<f64>| match v {
        Some(v) => json_f64(*v),
        None => "null".to_string(),
    };
    let headline: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"program\": \"{}\", \"dataset\": \"{}\", \"ipm\": [{}]}}",
                r.program,
                r.dataset,
                r.ipm.iter().map(cell).collect::<Vec<_>>().join(", ")
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"headline\": [\n{}\n  ],\n",
        headline.join(",\n")
    ));
    out.push_str(&format!(
        "  \"geomean\": [{}],\n",
        geomeans.iter().map(cell).collect::<Vec<_>>().join(", ")
    ));
    let sweep_json = |rows: &[SweepRow], labels: &[String]| -> String {
        rows.iter()
            .map(|r| {
                let pairs: Vec<String> = labels
                    .iter()
                    .zip(&r.rates)
                    .map(|(l, v)| format!("\"{l}\": {}", json_f64(*v)))
                    .collect();
                format!(
                    "    {{\"program\": \"{}\", \"dataset\": \"{}\", {}}}",
                    r.program,
                    r.dataset,
                    pairs.join(", ")
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let h_labels: Vec<String> = HISTORIES.iter().map(|h| format!("h{h}")).collect();
    let t_labels: Vec<String> = TABLE_BITS.iter().map(|t| format!("t{t}")).collect();
    out.push_str(&format!(
        "  \"history_sweep\": [\n{}\n  ],\n",
        sweep_json(history, &h_labels)
    ));
    out.push_str(&format!(
        "  \"table_sweep\": [\n{}\n  ],\n",
        sweep_json(tables, &t_labels)
    ));
    let padding_rows: Vec<String> = padding
        .iter()
        .map(|r| {
            let pairs: Vec<String> = h_labels
                .iter()
                .zip(&r.misp_per_iter)
                .map(|(l, v)| format!("\"{l}\": {}", json_f64(*v)))
                .collect();
            format!("    {{\"pad\": {}, {}}}", r.pad, pairs.join(", "))
        })
        .collect();
    out.push_str(&format!(
        "  \"padding\": [\n{}\n  ]\n",
        padding_rows.join(",\n")
    ));
    out.push_str("}\n");
    out
}

/// `--gate`: structural and directional sanity over the computed results.
/// Everything here is deterministic, so a pass is a permanent pass.
fn gate(
    options: &Options,
    rows: &[DynRow],
    geomeans: &[Option<f64>],
    history: &[SweepRow],
    tables: &[SweepRow],
    padding: &[PaddingRow],
) -> Result<(), String> {
    if rows.is_empty() {
        return Err("headline has no rows".to_string());
    }
    for r in rows {
        if r.ipm.len() != DYN_COLUMNS.len() {
            return Err(format!("{}/{}: ragged headline row", r.program, r.dataset));
        }
        for (c, v) in r.ipm.iter().enumerate() {
            match v {
                Some(v) if *v > 0.0 && v.is_finite() => {}
                Some(v) => {
                    return Err(format!(
                        "{}/{} {}: non-positive ipm {v}",
                        r.program, r.dataset, DYN_COLUMNS[c]
                    ))
                }
                None if DYN_COLUMNS[c] == "ML" => {}
                None => {
                    return Err(format!(
                        "{}/{} {}: missing cell",
                        r.program, r.dataset, DYN_COLUMNS[c]
                    ))
                }
            }
        }
    }
    let rate_ok = |rows: &[SweepRow]| {
        rows.iter()
            .all(|r| !r.rates.is_empty() && r.rates.iter().all(|v| (0.0..=1.0).contains(v)))
    };
    if !rate_ok(history) || !rate_ok(tables) {
        return Err("a sweep rate left [0, 1]".to_string());
    }
    let (first, last) = (
        padding.first().ok_or("padding experiment is empty")?,
        padding.last().ok_or("padding experiment is empty")?,
    );
    // Shortest history, shortest vs longest padding: the correlation must
    // fall out of the register and cost real mispredicts — roughly an
    // extra half-mispredict per iteration (branch B degrading to a coin
    // flip).
    if last.misp_per_iter[0] <= first.misp_per_iter[0] + 0.25 {
        return Err(format!(
            "padding failed to degrade gshare/h{}: {:.3} misp/iter at pad {} vs {:.3} at pad {}",
            HISTORIES[0], last.misp_per_iter[0], last.pad, first.misp_per_iter[0], first.pad,
        ));
    }
    if let Some(min) = options.gate_min_ipm {
        for (c, g) in geomeans.iter().enumerate() {
            if let Some(g) = g {
                if *g < min {
                    return Err(format!(
                        "geomean {} = {g:.2} below --gate-min-ipm {min}",
                        DYN_COLUMNS[c]
                    ));
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("dynbench: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Preflight --out before the (long) collection: an unwritable path is
    // a usage error the user wants now, not after the full suite ran.
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            eprintln!("dynbench: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut harness_options = HarnessOptions::from_env();
    if options.jobs.is_some() {
        harness_options.jobs = options.jobs;
    }
    if options.no_cache {
        harness_options.disk_cache = DiskCache::Off;
    }
    configure_harness(harness_options);

    let names: Vec<&str> = if options.quick {
        QUICK.to_vec()
    } else {
        mfwork::suite().iter().map(|w| w.name).collect()
    };
    eprintln!(
        "dynbench: collecting {} workloads with the online predictor zoo…",
        names.len()
    );
    let s: SuiteRuns = if options.quick {
        collect_subset(QUICK)
    } else {
        collect()
    };

    let rows = dyn_rows(&s);
    let geomeans = dyn_geomeans(&rows);
    section("Headline: instructions per mispredicted branch");
    print!("{}", dyn_table(&s).render());
    println!("(ML column: \"{ML_TRAIN_MARKER}\" rows trained the committed model)");

    // History sweep comes straight off the headline zoo (gshare at 4
    // history lengths rides on every collected run).
    let gshare_at = |h: u32| DynSpec::Gshare {
        history: h,
        table_bits: 12,
    };
    let history_rows: Vec<SweepRow> = s
        .workloads
        .iter()
        .flat_map(|w| {
            w.runs.iter().zip(&w.zoo).map(|(run, report)| SweepRow {
                program: w.name.clone(),
                dataset: run.dataset.clone(),
                rates: HISTORIES
                    .iter()
                    .map(|&h| {
                        report
                            .get(gshare_at(h))
                            .expect("full_zoo has the history family")
                            .mispredict_rate()
                    })
                    .collect(),
            })
        })
        .collect();
    section("Gshare history-length sensitivity (12-bit table, mispredict rate)");
    let h_cols: Vec<String> = HISTORIES.iter().map(|h| format!("H{h}")).collect();
    print!("{}", sweep_table(&h_cols, &history_rows).render());

    let table_specs: Vec<DynSpec> = TABLE_BITS
        .iter()
        .map(|&t| DynSpec::Gshare {
            history: 8,
            table_bits: t,
        })
        .collect();
    let table_rows = gshare_sweep(&names, &table_specs);
    section("Gshare table-size/aliasing sweep (8-bit history, mispredict rate)");
    let t_cols: Vec<String> = TABLE_BITS.iter().map(|t| format!("T{t}")).collect();
    print!("{}", sweep_table(&t_cols, &table_rows).render());

    let padding_rows = padding_experiment();
    section("Correlated-branch padding distance (synthetic, gshare misp/iter)");
    print!("{}", padding_table(&padding_rows).render());
    println!(
        "(two perfectly correlated branches; once the padding run exceeds the\n\
         history length, the correlating outcome has left the register)"
    );

    let json = results_json(
        options.quick,
        &rows,
        &geomeans,
        &history_rows,
        &table_rows,
        &padding_rows,
    );
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("dynbench: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("dynbench: wrote {}", path.display());
    }

    if options.gate {
        if let Err(message) = gate(
            &options,
            &rows,
            &geomeans,
            &history_rows,
            &table_rows,
            &padding_rows,
        ) {
            eprintln!("dynbench: gate violation: {message}");
            return ExitCode::from(1);
        }
        eprintln!("dynbench: gate passed");
    }
    ExitCode::SUCCESS
}
