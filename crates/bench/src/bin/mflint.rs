//! `mflint`: the standalone lint driver over the `mfcheck` analysis stack.
//!
//! ```text
//! mflint examples/branch_mix.mf          # compile + semantic verification
//! mflint --suite                         # lint every bundled workload
//! mflint prog.mf --pipeline              # also verify between opt passes
//! mflint prog.mf --profile counts.txt    # check a profile against prog
//! mflint --profile counts.txt            # internal profile consistency only
//! ```
//!
//! Sources are `.mf` guest programs. Profiles are either the raw counter
//! format (`br<id> <executed> <taken>` per line, `#` comments) or `!MF!
//! IFPROB` directive text; directive files need exactly one source so the
//! branch keys can be resolved.
//!
//! Raw profiles may carry structural site fingerprints as `# fp br<id>
//! <hex>` comment lines (legacy parsers skip them as comments). With
//! fingerprints and exactly one source program, the profile is remapped
//! onto the program by `mfstale` before site checking: counts recorded
//! against an older program version salvage onto their surviving sites,
//! and the skew is reported as `warning[profile-version-skew]` instead of
//! a spray of `corrupt-profile` unknown-site errors.
//!
//! Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
//! or I/O errors.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use ifprob::directives;
use mfcheck::{verify_digest, verify_program, Diagnostic, Severity};
use mfopt::Pipeline;
use mfpredict::Proof;
use trace_ir::Program;
use trace_vm::{Backend, GuestValue, Input, Run, Vm, VmConfig};

const USAGE: &str = "\
usage: mflint [FILE.mf ...] [OPTION...]

options:
  --suite             lint every bundled workload program as well
  --pipeline          run the standard optimization pipeline with
                      inter-pass verification; a defective pass is a
                      finding, named in the report
  --profile PATH      check a branch profile: raw `br<id> <executed>
                      <taken>` lines or `!MF! IFPROB` directive text
                      (directives require exactly one source program).
                      Raw profiles with `# fp br<id> <hex>` fingerprint
                      comments are version-skew remapped onto the source
                      program first; skew is a warning, not corruption
  --backend NAME      also execute every linted program on the NAME VM
                      backend ('reference' or 'flat') and diff all
                      observables against the other backend; any
                      divergence is an error[backend-diff] finding.
                      Inputs come from a `// mffuzz-inputs:` header
                      (files), the bundled datasets (--suite), or
                      default to zeros
  --deny-warnings     treat warnings as findings
  --json-metrics PATH write a machine-readable summary (programs checked,
                      error/warning totals, per-code diagnostic counts,
                      per-program verification digests) as JSON to PATH
  -h, --help          this message

exit status: 0 clean, 1 findings, 2 usage/IO error";

struct Options {
    files: Vec<PathBuf>,
    suite: bool,
    pipeline: bool,
    profile: Option<PathBuf>,
    backend: Option<Backend>,
    deny_warnings: bool,
    json_metrics: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        files: Vec::new(),
        suite: false,
        pipeline: false,
        profile: None,
        backend: None,
        deny_warnings: false,
        json_metrics: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--suite" => options.suite = true,
            "--pipeline" => options.pipeline = true,
            "--deny-warnings" => options.deny_warnings = true,
            "--json-metrics" => match iter.next() {
                Some(v) => options.json_metrics = Some(PathBuf::from(v)),
                None => return Err("--json-metrics requires a path".to_string()),
            },
            "--profile" => match iter.next() {
                Some(v) => options.profile = Some(PathBuf::from(v)),
                None => return Err("--profile requires a path".to_string()),
            },
            "--backend" => match iter.next() {
                Some(v) => options.backend = Some(v.parse()?),
                None => return Err("--backend requires 'reference' or 'flat'".to_string()),
            },
            _ if arg.starts_with('-') => return Err(format!("unknown flag '{arg}'")),
            _ => options.files.push(PathBuf::from(arg)),
        }
    }
    if options.files.is_empty() && !options.suite && options.profile.is_none() {
        return Err("nothing to lint: pass FILE.mf, --suite, or --profile".to_string());
    }
    Ok(Some(options))
}

/// A linted program: where it came from plus its compiled IR, and — for
/// the `--backend` differential — the inputs and VM limits to execute it
/// under.
struct Linted {
    origin: String,
    program: Program,
    input_sets: Vec<Vec<Input>>,
    vm_config: VmConfig,
}

/// Input sets for a lint-level execution of a source file: the corpus
/// `// mffuzz-inputs:` header when present (sets separated by `|`, each a
/// whitespace-separated integer list), otherwise one all-zero set sized
/// to the entry function's arity.
fn file_input_sets(source: &str, program: &Program) -> Vec<Vec<Input>> {
    const MARKER: &str = "// mffuzz-inputs:";
    if let Some(header) = source.lines().next().and_then(|l| l.strip_prefix(MARKER)) {
        let sets: Vec<Vec<Input>> = header
            .split('|')
            .map(|set| {
                set.split_whitespace()
                    .filter_map(|w| w.parse().ok())
                    .map(Input::Int)
                    .collect()
            })
            .collect();
        if !sets.is_empty() {
            return sets;
        }
    }
    let arity = program.functions[program.entry.index()].num_params as usize;
    vec![vec![Input::Int(0); arity]]
}

/// Running totals across everything linted, broken down by diagnostic
/// code so `--json-metrics` can report where the findings came from.
#[derive(Default)]
struct Findings {
    errors: usize,
    warnings: usize,
    per_code: BTreeMap<&'static str, usize>,
}

impl Findings {
    fn count(&mut self, diagnostics: &[Diagnostic]) {
        for d in diagnostics {
            match d.severity {
                Severity::Error => self.errors += 1,
                Severity::Warning => self.warnings += 1,
            }
            *self.per_code.entry(d.code).or_default() += 1;
        }
    }

    fn error(&mut self, code: &'static str) {
        self.errors += 1;
        *self.per_code.entry(code).or_default() += 1;
    }

    fn warning(&mut self, code: &'static str) {
        self.warnings += 1;
        *self.per_code.entry(code).or_default() += 1;
    }

    fn fail(&self, deny_warnings: bool) -> bool {
        self.errors > 0 || (deny_warnings && self.warnings > 0)
    }
}

fn report(origin: &str, diagnostics: &[Diagnostic]) {
    for d in diagnostics {
        println!("{origin}: {d}");
    }
}

fn lint_program(
    linted: &Linted,
    pipeline: bool,
    backend: Option<Backend>,
    findings: &mut Findings,
) {
    let diagnostics = verify_program(&linted.program);
    report(&linted.origin, &diagnostics);
    findings.count(&diagnostics);
    predict_lints(linted, &diagnostics, findings);

    if pipeline {
        let mut optimized = linted.program.clone();
        if let Err(defect) = Pipeline::standard().run_checked(&mut optimized) {
            println!("{}: error[pass-defect]: {defect}", linted.origin);
            findings.error("pass-defect");
        }
    }

    if let Some(backend) = backend {
        backend_diff(linted, backend, findings);
    }
}

/// Warnings derived from the `mfpredict` interval abstract interpreter:
/// branch directions the analysis proves constant, blocks it proves
/// unreachable, and divisions it proves always trap. Proofs quantify
/// over every possible execution, so each of these marks source the
/// author probably did not mean to write.
fn predict_lints(linted: &Linted, diagnostics: &[Diagnostic], findings: &mut Findings) {
    // Proofs assume the IR is semantically well-formed; a program the
    // verifier rejects gets no interval-based advice.
    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        return;
    }
    let p = &linted.program;
    let analysis = mfpredict::analyze(p);
    for (&id, &proof) in &analysis.proofs {
        let direction = match proof {
            Proof::AlwaysTaken => "always",
            Proof::NeverTaken => "never",
            Proof::Unknown => continue,
        };
        let code = match proof {
            Proof::AlwaysTaken => "branch-always-taken",
            _ => "branch-never-taken",
        };
        let info = &p.branch_info[id.index()];
        let func = &p.functions[info.func.index()].name;
        let at = if info.line > 0 {
            format!("line {}", info.line)
        } else {
            "synthetic".to_string()
        };
        println!(
            "{}: warning[{code}]: interval analysis proves {id} \
             (fn {func}, {at}) is {direction} taken",
            linted.origin
        );
        findings.warning(code);
    }
    for &(f, b) in &analysis.dead_blocks {
        let func = &p.functions[f.index()].name;
        println!(
            "{}: warning[provably-dead-block]: interval analysis proves \
             {b} in fn {func} can never execute",
            linted.origin
        );
        findings.warning("provably-dead-block");
    }
    for &(f, b) in &analysis.div_by_zero {
        let func = &p.functions[f.index()].name;
        println!(
            "{}: warning[provable-div-by-zero]: interval analysis proves \
             the divisor in {b} of fn {func} is always zero (the block \
             traps whenever it executes)",
            linted.origin
        );
        findings.warning("provable-div-by-zero");
    }
}

/// Bit-level value equality: floats compare by bit pattern so NaN payloads
/// and signed zeros count as observable.
fn values_eq(a: &[GuestValue], b: &[GuestValue]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (GuestValue::Float(x), GuestValue::Float(y)) => x.to_bits() == y.to_bits(),
            _ => x == y,
        })
}

/// What diverged between two runs of the same program, if anything.
fn run_divergence(a: &Run, b: &Run) -> Option<&'static str> {
    if !values_eq(&a.output, &b.output) {
        return Some("emitted output differs");
    }
    match (&a.result, &b.result) {
        (Some(x), Some(y)) if values_eq(std::slice::from_ref(x), std::slice::from_ref(y)) => {}
        (None, None) => {}
        _ => return Some("entry return value differs"),
    }
    if a.stats != b.stats {
        return Some("run statistics differ");
    }
    if a.branch_trace != b.branch_trace {
        return Some("branch trace differs");
    }
    None
}

/// Executes the linted program on `backend` and on the other backend with
/// the same inputs, and reports any observable divergence — the two
/// engines are required to be bit-identical, so a difference is a VM bug,
/// not a program bug.
fn backend_diff(linted: &Linted, backend: Backend, findings: &mut Findings) {
    let other = match backend {
        Backend::Reference => Backend::Flat,
        Backend::Flat => Backend::Reference,
    };
    for (si, inputs) in linted.input_sets.iter().enumerate() {
        let run_on = |b: Backend| {
            let config = VmConfig {
                backend: b,
                ..linted.vm_config
            };
            Vm::with_config(&linted.program, config).run(inputs)
        };
        let divergence = match (run_on(backend), run_on(other)) {
            (Ok(a), Ok(b)) => run_divergence(&a, &b),
            (Err(a), Err(b)) => (a != b).then_some("runtime errors differ"),
            (Ok(_), Err(_)) => Some("one backend faults, the other completes"),
            (Err(_), Ok(_)) => Some("one backend faults, the other completes"),
        };
        if let Some(what) = divergence {
            println!(
                "{}: error[backend-diff]: input set {si}: {what} between the \
                 {} and {} backends",
                linted.origin,
                backend.name(),
                other.name()
            );
            findings.error("backend-diff");
        }
    }
}

/// Checks a profile's internal consistency, and its branch sites against
/// `program` when one is available.
fn lint_profile(
    path: &std::path::Path,
    text: &str,
    program: Option<&Linted>,
    findings: &mut Findings,
) {
    let origin = path.display();

    // Directive text carries the IFPROB marker; it can only be resolved
    // against a program's source-level branch keys.
    if text.contains(directives::MARKER) {
        let Some(linted) = program else {
            println!(
                "{origin}: error[profile-needs-program]: directive profiles require \
                 exactly one source program to resolve branch keys"
            );
            findings.error("profile-needs-program");
            return;
        };
        match directives::parse_directives(&linted.program, text) {
            Ok(counts) => {
                let entries: Vec<_> = counts.iter().collect();
                check_entries_against(&origin, &entries, Some(&linted.program), findings);
            }
            Err(e) => {
                println!("{origin}: error[bad-directive]: {e}");
                findings.error("bad-directive");
            }
        }
        return;
    }

    match mfcheck::parse_raw_profile(text) {
        Ok(entries) => {
            let old_fps = parse_fp_comments(text);
            if let (Some(linted), false) = (program, old_fps.is_empty()) {
                // Fingerprinted profile against a known program: remap
                // across any version skew before site checking, so a
                // profile recorded against an older program version is
                // reported as skew, not corruption.
                let new_fps = mfstale::site_fingerprints(&linted.program);
                let remapped = mfstale::remap_counts(&entries, &old_fps, &new_fps);
                let r = &remapped.report;
                if !r.is_identity() {
                    println!(
                        "{origin}: warning[profile-version-skew]: profile predates \
                         this program version: {} matched, {} salvaged by \
                         fingerprint, {} orphaned (counts dropped), {} degraded \
                         site{} fall back to the static tier",
                        r.matched,
                        r.salvaged,
                        r.orphaned,
                        r.degraded,
                        if r.degraded == 1 { "" } else { "s" },
                    );
                    findings.warning("profile-version-skew");
                }
                check_entries_against(&origin, &remapped.counts, Some(&linted.program), findings);
            } else {
                check_entries_against(&origin, &entries, program.map(|l| &l.program), findings);
            }
        }
        Err(e) => {
            println!("{origin}: error[bad-profile]: {e}");
            findings.error("bad-profile");
        }
    }
}

/// Extracts `# fp br<id> <hex>` fingerprint comment lines from raw
/// profile text. Anything else — including malformed fingerprint
/// comments — is an ordinary comment and is skipped, keeping the format
/// fully backward compatible.
fn parse_fp_comments(text: &str) -> BTreeMap<trace_ir::BranchId, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("# fp br") else {
            continue;
        };
        let mut words = rest.split_whitespace();
        let (Some(id), Some(fp), None) = (words.next(), words.next(), words.next()) else {
            continue;
        };
        let Ok(id) = id.parse::<u32>() else { continue };
        let fp = fp.strip_prefix("0x").unwrap_or(fp);
        let Ok(fp) = u64::from_str_radix(fp, 16) else {
            continue;
        };
        out.insert(trace_ir::BranchId(id), fp);
    }
    out
}

fn check_entries_against(
    origin: &std::path::Display,
    entries: &[(trace_ir::BranchId, u64, u64)],
    program: Option<&Program>,
    findings: &mut Findings,
) {
    let issues = match program {
        Some(p) => mfcheck::check_against_program(p, entries),
        None => mfcheck::check_entries(entries),
    };
    for issue in &issues {
        println!("{origin}: error[corrupt-profile]: {issue}");
        findings.error("corrupt-profile");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("mflint: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Findings::default();
    let mut linted: Vec<Linted> = Vec::new();

    for path in &options.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mflint: reading {} failed: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match mflang::compile(&source) {
            Ok(program) => {
                let input_sets = file_input_sets(&source, &program);
                linted.push(Linted {
                    origin: path.display().to_string(),
                    program,
                    input_sets,
                    vm_config: VmConfig::default(),
                });
            }
            Err(e) => {
                println!("{}: error[compile]: {e}", path.display());
                findings.error("compile");
            }
        }
    }

    // File programs are the profile-resolution candidates; the suite rides
    // along for verification only.
    let file_programs = linted.len();
    if options.suite {
        for w in mfwork::suite() {
            match w.compile() {
                Ok(program) => linted.push(Linted {
                    origin: format!("workload `{}`", w.name),
                    program,
                    input_sets: w.datasets.iter().map(|d| d.inputs.clone()).collect(),
                    vm_config: w.vm_config(),
                }),
                Err(e) => {
                    println!("workload `{}`: error[compile]: {e}", w.name);
                    findings.error("compile");
                }
            }
        }
    }

    for l in &linted {
        lint_program(l, options.pipeline, options.backend, &mut findings);
    }

    if let Some(path) = &options.profile {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mflint: reading {} failed: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let resolve_against = if file_programs == 1 {
            Some(&linted[0])
        } else {
            None
        };
        lint_profile(path, &text, resolve_against, &mut findings);
    }

    println!(
        "mflint: {} program{} checked, {} error{}, {} warning{}",
        linted.len(),
        if linted.len() == 1 { "" } else { "s" },
        findings.errors,
        if findings.errors == 1 { "" } else { "s" },
        findings.warnings,
        if findings.warnings == 1 { "" } else { "s" },
    );
    if let Some(path) = &options.json_metrics {
        if let Err(e) = std::fs::write(path, metrics_json(&linted, &findings)) {
            eprintln!("mflint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote lint metrics to {}", path.display());
    }
    if findings.fail(options.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Minimal JSON string escaper, same dialect as the other drivers'
/// hand-rolled metrics writers.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `--json-metrics` body: totals, per-code diagnostic counts (sorted
/// by code, so the key order is stable), and each linted program's
/// verification digest as a hex string — the same digest `repro
/// --verify-each` stamps on run records, so a lint run and a collection
/// run over the same program can be cross-checked.
fn metrics_json(linted: &[Linted], findings: &Findings) -> String {
    let mut out = String::with_capacity(512 + linted.len() * 96);
    out.push_str("{\n");
    out.push_str("  \"tool\": \"mflint\",\n");
    out.push_str(&format!(
        "  \"programs_checked\": {},\n  \"errors\": {},\n  \"warnings\": {},\n",
        linted.len(),
        findings.errors,
        findings.warnings
    ));
    let codes: Vec<String> = findings
        .per_code
        .iter()
        .map(|(code, n)| format!("    {}: {n}", json_str(code)))
        .collect();
    out.push_str(&format!(
        "  \"diagnostics\": {{\n{}\n  }},\n",
        codes.join(",\n")
    ));
    if findings.per_code.is_empty() {
        // No codes: collapse the object to avoid a dangling blank line.
        out = out.replace("  \"diagnostics\": {\n\n  },\n", "  \"diagnostics\": {},\n");
    }
    out.push_str("  \"programs\": [\n");
    for (i, l) in linted.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"origin\": {}, \"verify_digest\": \"{:#018x}\"}}{}\n",
            json_str(&l.origin),
            verify_digest(&l.program),
            if i + 1 < linted.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_comments_parse_and_malformed_lines_stay_comments() {
        let text = "\
# ordinary comment
# fp br0 0x1f
# fp br3 2A
br0 10 4
# fp br1 not-hex
# fp br2
# fp brX 10
# fp br4 10 extra
";
        let fps = parse_fp_comments(text);
        assert_eq!(fps.len(), 2);
        assert_eq!(fps[&trace_ir::BranchId(0)], 0x1f);
        assert_eq!(fps[&trace_ir::BranchId(3)], 0x2a);
    }

    #[test]
    fn fingerprinted_profile_remaps_across_a_deleted_function() {
        // v1 has a dead function ahead of main; v2 deletes it, shifting
        // every branch id. With fingerprints the counts salvage; without
        // them the stale ids would be unknown-site corruption.
        let v1 = "\
fn dead(z: int) -> int {
    if (z > 100) { emit(z); return 1; }
    return 0;
}
fn main(n: int) {
    for (var i: int = 0; i < n; i = i + 1) {
        if (i < 3) { emit(i); } else { emit(0 - i); }
    }
}
";
        let v2 = "\
fn main(n: int) {
    for (var i: int = 0; i < n; i = i + 1) {
        if (i < 3) { emit(i); } else { emit(0 - i); }
    }
}
";
        let p1 = mflang::compile(v1).expect("v1 compiles");
        let p2 = mflang::compile(v2).expect("v2 compiles");
        let fps1 = mfstale::site_fingerprints(&p1);
        let mut text = String::new();
        for (id, fp) in &fps1 {
            text.push_str(&format!("# fp br{} {:x}\n", id.0, fp));
        }
        // Counts only for main's sites (the dead function never ran).
        let loop_sites: Vec<_> = fps1.keys().filter(|id| id.0 >= 1).collect();
        assert!(!loop_sites.is_empty());
        for id in &loop_sites {
            text.push_str(&format!("br{} 12 5\n", id.0));
        }
        let entries = mfcheck::parse_raw_profile(&text).expect("profile parses");
        let old_fps = parse_fp_comments(&text);
        let new_fps = mfstale::site_fingerprints(&p2);
        let remapped = mfstale::remap_counts(&entries, &old_fps, &new_fps);
        let r = &remapped.report;
        assert!(!r.is_identity(), "deleting a function is skew: {r:?}");
        assert_eq!(r.orphaned, 0, "every counted site survives: {r:?}");
        assert_eq!(r.salvaged, loop_sites.len(), "{r:?}");
        // The remapped counts must check clean against v2.
        assert!(mfcheck::check_against_program(&p2, &remapped.counts).is_empty());
    }
}
