//! `mflint`: the standalone lint driver over the `mfcheck` analysis stack.
//!
//! ```text
//! mflint examples/branch_mix.mf          # compile + semantic verification
//! mflint --suite                         # lint every bundled workload
//! mflint prog.mf --pipeline              # also verify between opt passes
//! mflint prog.mf --profile counts.txt    # check a profile against prog
//! mflint --profile counts.txt            # internal profile consistency only
//! ```
//!
//! Sources are `.mf` guest programs. Profiles are either the raw counter
//! format (`br<id> <executed> <taken>` per line, `#` comments) or `!MF!
//! IFPROB` directive text; directive files need exactly one source so the
//! branch keys can be resolved.
//!
//! Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
//! or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ifprob::directives;
use mfcheck::{verify_program, Diagnostic, Severity};
use mfopt::Pipeline;
use trace_ir::Program;

const USAGE: &str = "\
usage: mflint [FILE.mf ...] [OPTION...]

options:
  --suite             lint every bundled workload program as well
  --pipeline          run the standard optimization pipeline with
                      inter-pass verification; a defective pass is a
                      finding, named in the report
  --profile PATH      check a branch profile: raw `br<id> <executed>
                      <taken>` lines or `!MF! IFPROB` directive text
                      (directives require exactly one source program)
  --deny-warnings     treat warnings as findings
  -h, --help          this message

exit status: 0 clean, 1 findings, 2 usage/IO error";

struct Options {
    files: Vec<PathBuf>,
    suite: bool,
    pipeline: bool,
    profile: Option<PathBuf>,
    deny_warnings: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        files: Vec::new(),
        suite: false,
        pipeline: false,
        profile: None,
        deny_warnings: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--suite" => options.suite = true,
            "--pipeline" => options.pipeline = true,
            "--deny-warnings" => options.deny_warnings = true,
            "--profile" => match iter.next() {
                Some(v) => options.profile = Some(PathBuf::from(v)),
                None => return Err("--profile requires a path".to_string()),
            },
            _ if arg.starts_with('-') => return Err(format!("unknown flag '{arg}'")),
            _ => options.files.push(PathBuf::from(arg)),
        }
    }
    if options.files.is_empty() && !options.suite && options.profile.is_none() {
        return Err("nothing to lint: pass FILE.mf, --suite, or --profile".to_string());
    }
    Ok(Some(options))
}

/// A linted program: where it came from plus its compiled IR.
struct Linted {
    origin: String,
    program: Program,
}

/// Running totals across everything linted.
#[derive(Default)]
struct Findings {
    errors: usize,
    warnings: usize,
}

impl Findings {
    fn count(&mut self, diagnostics: &[Diagnostic]) {
        for d in diagnostics {
            match d.severity {
                Severity::Error => self.errors += 1,
                Severity::Warning => self.warnings += 1,
            }
        }
    }

    fn fail(&self, deny_warnings: bool) -> bool {
        self.errors > 0 || (deny_warnings && self.warnings > 0)
    }
}

fn report(origin: &str, diagnostics: &[Diagnostic]) {
    for d in diagnostics {
        println!("{origin}: {d}");
    }
}

fn lint_program(linted: &Linted, pipeline: bool, findings: &mut Findings) {
    let diagnostics = verify_program(&linted.program);
    report(&linted.origin, &diagnostics);
    findings.count(&diagnostics);

    if pipeline {
        let mut optimized = linted.program.clone();
        if let Err(defect) = Pipeline::standard().run_checked(&mut optimized) {
            println!("{}: error[pass-defect]: {defect}", linted.origin);
            findings.errors += 1;
        }
    }
}

/// Checks a profile's internal consistency, and its branch sites against
/// `program` when one is available.
fn lint_profile(
    path: &std::path::Path,
    text: &str,
    program: Option<&Linted>,
    findings: &mut Findings,
) {
    let origin = path.display();

    // Directive text carries the IFPROB marker; it can only be resolved
    // against a program's source-level branch keys.
    if text.contains(directives::MARKER) {
        let Some(linted) = program else {
            println!(
                "{origin}: error[profile-needs-program]: directive profiles require \
                 exactly one source program to resolve branch keys"
            );
            findings.errors += 1;
            return;
        };
        match directives::parse_directives(&linted.program, text) {
            Ok(counts) => {
                let entries: Vec<_> = counts.iter().collect();
                check_entries_against(&origin, &entries, Some(&linted.program), findings);
            }
            Err(e) => {
                println!("{origin}: error[bad-directive]: {e}");
                findings.errors += 1;
            }
        }
        return;
    }

    match mfcheck::parse_raw_profile(text) {
        Ok(entries) => {
            check_entries_against(&origin, &entries, program.map(|l| &l.program), findings);
        }
        Err(e) => {
            println!("{origin}: error[bad-profile]: {e}");
            findings.errors += 1;
        }
    }
}

fn check_entries_against(
    origin: &std::path::Display,
    entries: &[(trace_ir::BranchId, u64, u64)],
    program: Option<&Program>,
    findings: &mut Findings,
) {
    let issues = match program {
        Some(p) => mfcheck::check_against_program(p, entries),
        None => mfcheck::check_entries(entries),
    };
    for issue in &issues {
        println!("{origin}: error[corrupt-profile]: {issue}");
    }
    findings.errors += issues.len();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("mflint: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Findings::default();
    let mut linted: Vec<Linted> = Vec::new();

    for path in &options.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mflint: reading {} failed: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match mflang::compile(&source) {
            Ok(program) => linted.push(Linted {
                origin: path.display().to_string(),
                program,
            }),
            Err(e) => {
                println!("{}: error[compile]: {e}", path.display());
                findings.errors += 1;
            }
        }
    }

    // File programs are the profile-resolution candidates; the suite rides
    // along for verification only.
    let file_programs = linted.len();
    if options.suite {
        for w in mfwork::suite() {
            match w.compile() {
                Ok(program) => linted.push(Linted {
                    origin: format!("workload `{}`", w.name),
                    program,
                }),
                Err(e) => {
                    println!("workload `{}`: error[compile]: {e}", w.name);
                    findings.errors += 1;
                }
            }
        }
    }

    for l in &linted {
        lint_program(l, options.pipeline, &mut findings);
    }

    if let Some(path) = &options.profile {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mflint: reading {} failed: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let resolve_against = if file_programs == 1 {
            Some(&linted[0])
        } else {
            None
        };
        lint_profile(path, &text, resolve_against, &mut findings);
    }

    println!(
        "mflint: {} program{} checked, {} error{}, {} warning{}",
        linted.len(),
        if linted.len() == 1 { "" } else { "s" },
        findings.errors,
        if findings.errors == 1 { "" } else { "s" },
        findings.warnings,
        if findings.warnings == 1 { "" } else { "s" },
    );
    if findings.fail(options.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
