//! `repro`: regenerates every table and figure of Fisher & Freudenberger
//! (ASPLOS 1992) from the reproduced system.
//!
//! ```text
//! repro                      # everything, in parallel, cached
//! repro --table1             # just Table 1
//! repro --fig2 --jobs 8      # just Figure 2a/2b, eight workers
//! repro --json-metrics m.json --no-cache
//! ```
//!
//! Build with `--release`; the full matrix executes a few hundred million
//! guest instructions. Runs go through the mfharness scheduler: repeats
//! are served from `target/mfharness-cache/` (delete the directory or
//! pass `--no-cache` for a cold start), and a scheduler/cache summary is
//! printed at the end.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use mfbench::{
    collect, combination_table, configure_harness, coverage_table, crossmode_table,
    distribution_table, dyn_table, dynamic_table, fig1_chart, fig2_chart, fig2_rows, fig3_chart,
    fig3_rows, harness, heuristic_rows, heuristic_table, inlining_table, percent_correct_table,
    percent_taken_table, record_suite_svc, selects_table, suite_skew, table1, table2, table3,
    SuiteRuns, SuiteSkew,
};
use mffault::{FaultPlan, FaultVfs, RealVfs, RetryPolicy, Vfs};
use mfharness::{DiskCache, HarnessOptions};
use mfprofsvc::{ProfileService, ServiceOptions};
use mfwork::Group;

const WIDTH: usize = 60;

/// Section-selecting flags, in print order.
const SECTIONS: &[&str] = &[
    "--table1",
    "--table2",
    "--table3",
    "--fig1",
    "--fig2",
    "--fig3",
    "--correct",
    "--taken",
    "--combine",
    "--heuristic",
    "--selects",
    "--crossmode",
    "--coverage",
    "--dynamic",
    "--inline",
    "--distribution",
    "--dyn",
];

const USAGE: &str = "\
usage: repro [SECTION...] [OPTION...]

sections (default: all):
  --table1 --table2 --table3 --fig1 --fig2 --fig3
  --correct --taken --combine --heuristic --selects --crossmode
  --coverage --dynamic --inline --distribution --dyn

options:
  --jobs N            worker threads (default: MFHARNESS_JOBS or
                      available parallelism, clamped to 8)
  --backend NAME      VM backend for measured runs: 'flat' (default,
                      the pre-compiled bytecode interpreter) or
                      'reference' (the tree-walking baseline); both
                      produce bit-identical tables and figures
  --json-metrics PATH write the harness report (timings, cache hits,
                      utilization) as JSON to PATH
  --no-cache          skip the persistent cache (target/mfharness-cache/)
  --verify-each       run the mfcheck semantic verifier between
                      optimization passes (a defective pass aborts, named)
                      and stamp each run record with its program's
                      verification digest
  --profile-db DIR    append every collected run's branch profile to the
                      crash-safe sharded profile database at DIR (created
                      on first use; repeat invocations accumulate; an old
                      single-log database migrates on first write) and
                      print a persistence summary
  --shards N          shard count for a NEWLY created profile database
                      (default: 8); an existing database keeps the count
                      pinned in its manifest
  --compact-every N   fold the profile database's history only once it
                      holds at least N committed batches (default: 1,
                      i.e. compact on every invocation that recorded)
  --io-retries N      bounded retries for transient I/O faults in the
                      run cache and profile db (default: 2)
  --fault-seed N      deterministically inject I/O faults into the run
                      cache and profile db (a robustness experiment:
                      tables and figures stay exact; persistence may
                      degrade without failing the run)
  -h, --help          this message";

struct Options {
    sections: Vec<String>,
    jobs: Option<usize>,
    json_metrics: Option<PathBuf>,
    no_cache: bool,
    verify_each: bool,
    profile_db: Option<PathBuf>,
    shards: Option<u32>,
    compact_every: Option<u64>,
    io_retries: Option<u32>,
    fault_seed: Option<u64>,
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("repro: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        sections: Vec::new(),
        jobs: None,
        json_metrics: None,
        no_cache: false,
        verify_each: false,
        profile_db: None,
        shards: None,
        compact_every: None,
        io_retries: None,
        fault_seed: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let value = |iter: &mut std::slice::Iter<String>| -> Result<String, String> {
            match inline_value.clone().or_else(|| iter.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(format!("{flag} requires a value")),
            }
        };
        match flag {
            "-h" | "--help" => return Ok(None),
            "--jobs" => {
                let v = value(&mut iter)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got '{v}'"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                options.jobs = Some(n);
            }
            "--backend" => {
                let backend = value(&mut iter)?.parse()?;
                mfbench::set_backend(backend);
            }
            "--json-metrics" => {
                options.json_metrics = Some(PathBuf::from(value(&mut iter)?));
            }
            "--no-cache" => options.no_cache = true,
            "--verify-each" => options.verify_each = true,
            "--profile-db" => {
                options.profile_db = Some(PathBuf::from(value(&mut iter)?));
            }
            "--shards" => {
                let v = value(&mut iter)?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--shards expects a positive integer, got '{v}'"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                options.shards = Some(n);
            }
            "--compact-every" => {
                let v = value(&mut iter)?;
                let n: u64 = v.parse().map_err(|_| {
                    format!("--compact-every expects a positive integer, got '{v}'")
                })?;
                if n == 0 {
                    return Err("--compact-every must be at least 1".to_string());
                }
                options.compact_every = Some(n);
            }
            "--io-retries" => {
                let v = value(&mut iter)?;
                options.io_retries = Some(
                    v.parse()
                        .map_err(|_| format!("--io-retries expects a retry count, got '{v}'"))?,
                );
            }
            "--fault-seed" => {
                let v = value(&mut iter)?;
                options.fault_seed =
                    Some(v.parse().map_err(|_| {
                        format!("--fault-seed expects an unsigned seed, got '{v}'")
                    })?);
            }
            _ if inline_value.is_none() && SECTIONS.contains(&flag) => {
                options.sections.push(flag.to_string());
            }
            _ => return Err(format!("unknown flag '{arg}'")),
        }
    }
    Ok(Some(options))
}

fn section(title: &str) {
    println!(
        "\n==== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => return usage_error(&message),
    };

    // CLI flags override the MFHARNESS_* environment knobs, which in turn
    // override the built-in defaults.
    let mut harness_options = HarnessOptions::from_env();
    if options.jobs.is_some() {
        harness_options.jobs = options.jobs;
    }
    if options.no_cache {
        harness_options.disk_cache = DiskCache::Off;
    }
    if options.verify_each {
        harness_options.verify = true;
        mfbench::set_verify_each(true);
    }
    if options.io_retries.is_some() {
        harness_options.io_retries = options.io_retries;
    }
    if options.fault_seed.is_some() {
        harness_options.fault_seed = options.fault_seed;
    }
    let store = options
        .profile_db
        .as_ref()
        .map(|dir| open_profile_db(dir, &options, &harness_options));
    configure_harness(harness_options);
    let want =
        |flag: &str| options.sections.is_empty() || options.sections.iter().any(|s| s == flag);

    if want("--table2") {
        section("Table 2: programs and datasets");
        print!("{}", table2().render());
        if options.sections == ["--table2"] {
            // Nothing ran, but --json-metrics still deserves a (zeroed)
            // report — and a failure exit if the path is unwritable or
            // the profile database could not be made persistent.
            let db_failed = profile_db_summary(&options, store.as_ref(), None);
            let metrics = write_json_metrics(&options, None, None);
            return if db_failed {
                ExitCode::from(2)
            } else {
                metrics
            };
        }
    }

    eprintln!("collecting runs for the whole suite (one run per program x dataset)…");
    let start = std::time::Instant::now();
    let s: SuiteRuns = collect();
    let total: u64 = s
        .workloads
        .iter()
        .flat_map(|w| w.runs.iter())
        .map(|r| r.stats.total_instrs)
        .sum();
    eprintln!(
        "collected {} runs, {} guest instructions, in {:.1}s",
        s.workloads.iter().map(|w| w.runs.len()).sum::<usize>(),
        total,
        start.elapsed().as_secs_f64()
    );
    // Assess how the prior generation's counts map onto the programs as
    // compiled now — BEFORE this generation's runs are recorded on top.
    let skew = store.as_ref().and_then(|db| assess_skew(db, &s));
    if let Some(db) = store.as_ref() {
        let (committed, in_memory) = record_suite_svc(&db.svc, &s)
            .expect("probabilistic fault plans never include crash points");
        eprintln!(
            "profile db: recorded {} runs ({committed} durable, {in_memory} in memory)",
            committed + in_memory
        );
        // Fold the accumulated history so the database stays bounded
        // across repeat invocations — by default on every run, or only
        // once at least `--compact-every` batches piled up.
        let threshold = options.compact_every.unwrap_or(1);
        let batches = db
            .svc
            .total_batches()
            .expect("probabilistic fault plans never include crash points");
        if batches >= threshold {
            db.svc
                .compact()
                .expect("probabilistic fault plans never include crash points");
        } else {
            eprintln!("profile db: compaction deferred ({batches} of {threshold} batches)");
        }
    }

    if want("--table1") {
        section("Table 1: dynamic dead code the compiler's DCE would remove");
        print!("{}", table1(&s).render());
    }
    if want("--fig1") {
        section("Figure 1a/1b: instrs per break, no prediction");
        print!("{}", fig1_chart(&s, Group::FortranFp).render(WIDTH));
        println!();
        print!("{}", fig1_chart(&s, Group::CInteger).render(WIDTH));
    }
    if want("--fig2") {
        section("Figure 2a/2b: instrs per break, predicted (self vs sum-of-others)");
        print!("{}", fig2_chart(&s, true).render(WIDTH));
        println!();
        print!("{}", fig2_chart(&s, false).render(WIDTH));
        let rows = fig2_rows(&s, false);
        let recovered: Vec<f64> = rows
            .iter()
            .filter(|r| r.self_ipb > 0.0)
            .map(|r| r.others_ipb / r.self_ipb)
            .collect();
        if !recovered.is_empty() {
            let mean = recovered.iter().sum::<f64>() / recovered.len() as f64;
            println!(
                "\n(sum-of-others recovers on average {:.0}% of the self-prediction bound)",
                mean * 100.0
            );
        }
    }
    if want("--table3") {
        section("Table 3: instrs/break (FORTRAN programs, little dataset variability)");
        print!("{}", table3(&s).render());
    }
    if want("--fig3") {
        section("Figure 3a/3b: best/worst single-dataset predictor, % of self");
        print!("{}", fig3_chart(&s, true).render(WIDTH));
        println!();
        print!("{}", fig3_chart(&s, false).render(WIDTH));
        let worst = fig3_rows(&s, false)
            .into_iter()
            .min_by(|a, b| a.worst.1.partial_cmp(&b.worst.1).expect("finite"));
        if let Some(w) = worst {
            println!(
                "\n(most dramatic worst case: {} predicted by {} at {:.0}% of self)",
                w.label,
                w.worst.0,
                w.worst.1 * 100.0
            );
        }
    }
    if want("--correct") {
        section("The misleading measure: % branches correct vs instrs/break");
        print!("{}", percent_correct_table(&s).render());
    }
    if want("--taken") {
        section("Informal: percent-taken as a program constant");
        print!("{}", percent_taken_table(&s).render());
    }
    if want("--combine") {
        section("Informal: scaled vs unscaled vs polling combination");
        print!("{}", combination_table(&s).render());
    }
    if want("--heuristic") {
        section("Informal: loop heuristic vs profile feedback");
        print!("{}", heuristic_table(&s).render());
    }
    if want("--selects") {
        section("Informal: select instructions as a fraction of all instructions");
        print!("{}", selects_table(&s).render());
    }
    if want("--crossmode") {
        section("Informal: compress and uncompress do not predict each other");
        if let Some(t) = crossmode_table(&s) {
            print!("{}", t.render());
        }
    }
    if want("--coverage") {
        section("Informal: does poor cross-prediction come from coverage or flips?");
        print!("{}", coverage_table(&s).render());
    }
    if want("--dynamic") {
        section("Extension: static profile feedback vs 1-bit/2-bit hardware schemes");
        print!("{}", dynamic_table().render());
    }
    if want("--inline") {
        section("Extension: inlining removes direct call/return breaks");
        print!("{}", inlining_table().render());
    }
    if want("--distribution") {
        section("Run lengths between mispredicted branches are not evenly spaced");
        print!("{}", distribution_table().render());
    }
    if want("--dyn") {
        section("Extension: online dynamic-predictor zoo (instrs per mispredict)");
        print!("{}", dyn_table(&s).render());
        println!("(higher is better; dynamic predictors observe every outcome online,");
        println!(" profile feedback sees only a prior run's aggregate counts)");
    }

    let report = harness().report();
    section("Harness: scheduler and cache summary");
    print!("{}", report.summary_table().render());
    if let Some(dir) = harness().cache_dir() {
        println!(
            "(persistent cache: {}; delete it or pass --no-cache for a cold run)",
            dir.display()
        );
    }
    let db_failed = profile_db_summary(&options, store.as_ref(), skew.as_ref());
    let metrics = write_json_metrics(&options, Some(&s), skew.as_ref());
    if db_failed {
        ExitCode::from(2)
    } else {
        metrics
    }
}

/// The opened `--profile-db` service plus a point-in-time snapshot of
/// what it held *before* this invocation recorded anything — the prior
/// generation the version-skew remap assesses reuse against.
struct DbSession {
    svc: ProfileService,
    /// Per-dataset merged totals at open time. Empty on the very first
    /// generation (a fresh database).
    prior: mfprofsvc::MergedTotals,
    /// Stored structural fingerprints at open time, per dataset label.
    prior_fps: std::collections::BTreeMap<String, std::collections::BTreeMap<u32, u64>>,
}

/// Opens the `--profile-db` sharded service, with fault injection and
/// retry budget matching the harness's own I/O discipline. `--shards`
/// applies only when the database is created here; an existing manifest
/// wins, and an old single-log database opens read-only and migrates on
/// the first write.
fn open_profile_db(dir: &Path, options: &Options, harness_options: &HarnessOptions) -> DbSession {
    let vfs: Arc<dyn Vfs> = match harness_options.fault_seed {
        Some(seed) => Arc::new(FaultVfs::new(
            Arc::new(RealVfs) as Arc<dyn Vfs>,
            FaultPlan::from_seed(seed),
        )),
        None => Arc::new(RealVfs),
    };
    let svc_options = ServiceOptions {
        shards: options.shards.unwrap_or(8),
        retry: RetryPolicy::immediate(harness_options.io_retries.unwrap_or(2)),
        ..ServiceOptions::default()
    };
    let svc = ProfileService::open(vfs, dir, svc_options)
        .expect("probabilistic fault plans never include crash points");
    let prior = svc.merged_totals().unwrap_or_else(|e| {
        eprintln!("repro: warning: reading prior profile totals failed: {e}");
        Default::default()
    });
    let prior_fps = svc.merged_fingerprints_by_dataset().unwrap_or_else(|e| {
        eprintln!("repro: warning: reading prior profile fingerprints failed: {e}");
        Default::default()
    });
    DbSession {
        svc,
        prior,
        prior_fps,
    }
}

/// Assesses how the prior generation's counts carry over to the programs
/// as compiled now. `None` when there is no prior data to assess (the
/// first generation) or the prior records are corrupt (warned, never
/// fatal — skew tolerance degrades, it does not fail the run).
fn assess_skew(db: &DbSession, s: &SuiteRuns) -> Option<SuiteSkew> {
    if db.prior.is_empty() {
        return None;
    }
    match suite_skew(&db.prior, &db.prior_fps, s) {
        Ok(skew) => Some(skew),
        Err(e) => {
            eprintln!("repro: warning: prior profile unusable for reuse ({e}); recording fresh");
            None
        }
    }
}

/// Prints the profile-database section and surfaces its warnings. Returns
/// true when the run must fail: the database could not be made (or kept)
/// persistent and no fault injection was requested, so data the user
/// asked to keep exists only in this process's memory.
fn profile_db_summary(
    options: &Options,
    store: Option<&DbSession>,
    skew: Option<&SuiteSkew>,
) -> bool {
    let Some(db) = store else {
        return false;
    };
    let store = &db.svc;
    section("Profile database");
    let svc = store.counters();
    let c = svc.store;
    let datasets = store.merged_totals().map(|m| m.len()).unwrap_or(0);
    println!("path: {}", store.dir().display());
    println!(
        "state: {}",
        if store.is_persistent() {
            "persistent"
        } else {
            "in-memory only (degraded)"
        }
    );
    println!("  shards                   {}", store.shard_count());
    println!("  datasets                 {datasets}");
    println!("  records committed        {}", c.committed_appends);
    println!("  records in memory only   {}", c.degraded_appends);
    println!("  records salvaged at open {}", c.salvaged_records);
    println!("  torn bytes truncated     {}", c.truncated_bytes);
    println!("  io retries               {}", c.io_retries);
    println!("  compactions              {}", c.compactions);
    println!("  group commits            {}", svc.group_commits);
    println!("  records migrated         {}", svc.migrated_records);
    println!("\nProfile reuse (version skew):");
    if db.prior.is_empty() {
        println!("  first generation (no prior runs)");
    } else if let Some(skew) = skew {
        println!("  prior datasets           {}", db.prior.len());
        println!("  sites: {}", skew.total);
        println!(
            "  reuse                    {:.1}% of recorded sites{}",
            skew.total.reuse_fraction() * 100.0,
            if skew.is_identity() {
                " (identity: program unchanged)"
            } else {
                ""
            }
        );
        for w in &skew.workloads {
            println!(
                "    {:<12} {} [{} prior dataset{}]",
                w.name,
                w.report,
                w.prior_datasets,
                if w.prior_datasets == 1 { "" } else { "s" }
            );
            for &(id, taken, source) in &w.fallback {
                println!(
                    "      site {} -> static tier {:?} predicts {}",
                    id.0,
                    source,
                    if taken { "taken" } else { "not taken" }
                );
            }
        }
    } else {
        println!(
            "  prior profile present ({} datasets); reuse is assessed when runs are collected",
            db.prior.len()
        );
    }
    for w in store.warnings() {
        eprintln!("repro: warning: {w}");
    }
    if !store.is_persistent() && options.fault_seed.is_none() {
        eprintln!(
            "repro: profile database at {} is not persistent",
            store.dir().display()
        );
        return true;
    }
    false
}

/// Minimal JSON string escaper for table cells (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The heuristic table as a JSON object with an explicit, stable column
/// order (`mfbench::HEURISTIC_COLUMNS`): consumers key cells by position
/// in `columns`, never by guessing at render-time alignment.
fn heuristic_table_json(s: &SuiteRuns) -> String {
    let columns: Vec<String> = mfbench::HEURISTIC_COLUMNS
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect();
    let rows: Vec<String> = heuristic_rows(s)
        .iter()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("      [{}]", cells.join(", "))
        })
        .collect();
    format!(
        "{{\n    \"columns\": [{}],\n    \"rows\": [\n{}\n    ]\n  }}",
        columns.join(", "),
        rows.join(",\n")
    )
}

/// The dynamic-predictor headline as a JSON object: column order is
/// `mfbench::DYN_COLUMNS`, cells are instrs-per-mispredict (null where a
/// predictor is out of scope, e.g. the ML column on its own training
/// workloads), and `geomean` aggregates each column across rows.
fn dyn_table_json(s: &SuiteRuns) -> String {
    let columns: Vec<String> = mfbench::DYN_COLUMNS
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect();
    let cell = |v: &Option<f64>| match v {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    };
    let rows_data = mfbench::dyn_rows(s);
    let rows: Vec<String> = rows_data
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.ipm.iter().map(cell).collect();
            format!(
                "      {{\"program\": \"{}\", \"dataset\": \"{}\", \"ipm\": [{}]}}",
                json_escape(&row.program),
                json_escape(&row.dataset),
                cells.join(", ")
            )
        })
        .collect();
    let geomean: Vec<String> = mfbench::dyn_geomeans(&rows_data).iter().map(cell).collect();
    format!(
        "{{\n    \"columns\": [{}],\n    \"rows\": [\n{}\n    ],\n    \"geomean\": [{}]\n  }}",
        columns.join(", "),
        rows.join(",\n"),
        geomean.join(", ")
    )
}

/// The version-skew assessment as a JSON object: the suite-wide
/// [`mfstale::SkewReport`] tallies plus per-workload rows. The key set —
/// `first_generation`, `matched`, `salvaged`, `degraded`, `orphaned`,
/// `unverified`, `reuse_fraction`, `workloads` — is the schema contract
/// the chaos-smoke CI job checks.
fn skew_json(skew: Option<&SuiteSkew>) -> String {
    let Some(skew) = skew else {
        return "{\n    \"first_generation\": true\n  }".to_string();
    };
    let t = &skew.total;
    let workloads: Vec<String> = skew
        .workloads
        .iter()
        .map(|w| {
            format!(
                "      {{\"name\": \"{}\", \"prior_datasets\": {}, \"matched\": {}, \
                 \"salvaged\": {}, \"degraded\": {}, \"orphaned\": {}, \"unverified\": {}, \
                 \"fallback_sites\": {}, \"op_count\": {}}}",
                json_escape(&w.name),
                w.prior_datasets,
                w.report.matched,
                w.report.salvaged,
                w.report.degraded,
                w.report.orphaned,
                w.report.unverified,
                w.fallback.len(),
                w.op_count
            )
        })
        .collect();
    format!(
        "{{\n    \"first_generation\": false,\n    \"matched\": {},\n    \"salvaged\": {},\n    \
         \"degraded\": {},\n    \"orphaned\": {},\n    \"unverified\": {},\n    \
         \"reuse_fraction\": {:.6},\n    \"workloads\": [\n{}\n    ]\n  }}",
        t.matched,
        t.salvaged,
        t.degraded,
        t.orphaned,
        t.unverified,
        t.reuse_fraction(),
        workloads.join(",\n")
    )
}

/// Writes the harness report to `--json-metrics` (when requested) and turns
/// a write failure into a failing exit code. When the suite was collected,
/// the heuristic table (mispredict rate per strategy), the dynamic
/// predictor headline, and — under `--profile-db` — the version-skew
/// assessment are spliced in as additive `heuristic_table`, `dyn_table`,
/// and `skew` keys.
fn write_json_metrics(
    options: &Options,
    s: Option<&SuiteRuns>,
    skew: Option<&SuiteSkew>,
) -> ExitCode {
    if let Some(path) = &options.json_metrics {
        let report = harness().report();
        let mut body = report.to_json();
        if let Some(s) = s {
            let trimmed = body.trim_end().strip_suffix('}').map(str::to_string);
            if let Some(prefix) = trimmed {
                let skew_part = if options.profile_db.is_some() {
                    format!(",\n  \"skew\": {}", skew_json(skew))
                } else {
                    String::new()
                };
                body = format!(
                    "{},\n  \"heuristic_table\": {},\n  \"dyn_table\": {}{}\n}}\n",
                    prefix.trim_end(),
                    heuristic_table_json(s),
                    dyn_table_json(s),
                    skew_part
                );
            }
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("repro: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote harness metrics to {}", path.display());
    }
    ExitCode::SUCCESS
}
