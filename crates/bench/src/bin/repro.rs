//! `repro`: regenerates every table and figure of Fisher & Freudenberger
//! (ASPLOS 1992) from the reproduced system.
//!
//! ```text
//! repro            # everything
//! repro --table1   # just Table 1
//! repro --fig2     # just Figure 2a/2b
//! ```
//!
//! Build with `--release`; the full matrix executes a few hundred million
//! guest instructions.

use mfbench::{
    collect, combination_table, coverage_table, crossmode_table, distribution_table,
    dynamic_table, fig1_chart, fig2_chart, fig2_rows, fig3_chart, fig3_rows, heuristic_table,
    inlining_table, percent_correct_table, percent_taken_table, selects_table, table1, table2,
    table3, SuiteRuns,
};
use mfwork::Group;

const WIDTH: usize = 60;

fn section(title: &str) {
    println!(
        "\n==== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: repro [--table1] [--table2] [--table3] [--fig1] [--fig2] [--fig3]\n\
             \x20            [--taken] [--combine] [--heuristic] [--selects] [--crossmode]\n\
             \x20            [--correct] [--dynamic] [--inline]\n\
             with no flags, everything is regenerated."
        );
        return;
    }

    if want("--table2") {
        section("Table 2: programs and datasets");
        print!("{}", table2().render());
        if args.iter().any(|a| a == "--table2") && args.len() == 1 {
            return;
        }
    }

    eprintln!("collecting runs for the whole suite (one run per program x dataset)…");
    let start = std::time::Instant::now();
    let s: SuiteRuns = collect();
    let total: u64 = s
        .workloads
        .iter()
        .flat_map(|w| w.runs.iter())
        .map(|r| r.stats.total_instrs)
        .sum();
    eprintln!(
        "collected {} runs, {} guest instructions, in {:.1}s",
        s.workloads.iter().map(|w| w.runs.len()).sum::<usize>(),
        total,
        start.elapsed().as_secs_f64()
    );

    if want("--table1") {
        section("Table 1: dynamic dead code the compiler's DCE would remove");
        print!("{}", table1(&s).render());
    }
    if want("--fig1") {
        section("Figure 1a/1b: instrs per break, no prediction");
        print!("{}", fig1_chart(&s, Group::FortranFp).render(WIDTH));
        println!();
        print!("{}", fig1_chart(&s, Group::CInteger).render(WIDTH));
    }
    if want("--fig2") {
        section("Figure 2a/2b: instrs per break, predicted (self vs sum-of-others)");
        print!("{}", fig2_chart(&s, true).render(WIDTH));
        println!();
        print!("{}", fig2_chart(&s, false).render(WIDTH));
        let rows = fig2_rows(&s, false);
        let recovered: Vec<f64> = rows
            .iter()
            .filter(|r| r.self_ipb > 0.0)
            .map(|r| r.others_ipb / r.self_ipb)
            .collect();
        if !recovered.is_empty() {
            let mean = recovered.iter().sum::<f64>() / recovered.len() as f64;
            println!(
                "\n(sum-of-others recovers on average {:.0}% of the self-prediction bound)",
                mean * 100.0
            );
        }
    }
    if want("--table3") {
        section("Table 3: instrs/break (FORTRAN programs, little dataset variability)");
        print!("{}", table3(&s).render());
    }
    if want("--fig3") {
        section("Figure 3a/3b: best/worst single-dataset predictor, % of self");
        print!("{}", fig3_chart(&s, true).render(WIDTH));
        println!();
        print!("{}", fig3_chart(&s, false).render(WIDTH));
        let worst = fig3_rows(&s, false)
            .into_iter()
            .min_by(|a, b| a.worst.1.partial_cmp(&b.worst.1).expect("finite"));
        if let Some(w) = worst {
            println!(
                "\n(most dramatic worst case: {} predicted by {} at {:.0}% of self)",
                w.label,
                w.worst.0,
                w.worst.1 * 100.0
            );
        }
    }
    if want("--correct") {
        section("The misleading measure: % branches correct vs instrs/break");
        print!("{}", percent_correct_table(&s).render());
    }
    if want("--taken") {
        section("Informal: percent-taken as a program constant");
        print!("{}", percent_taken_table(&s).render());
    }
    if want("--combine") {
        section("Informal: scaled vs unscaled vs polling combination");
        print!("{}", combination_table(&s).render());
    }
    if want("--heuristic") {
        section("Informal: loop heuristic vs profile feedback");
        print!("{}", heuristic_table(&s).render());
    }
    if want("--selects") {
        section("Informal: select instructions as a fraction of all instructions");
        print!("{}", selects_table(&s).render());
    }
    if want("--crossmode") {
        section("Informal: compress and uncompress do not predict each other");
        if let Some(t) = crossmode_table(&s) {
            print!("{}", t.render());
        }
    }
    if want("--coverage") {
        section("Informal: does poor cross-prediction come from coverage or flips?");
        print!("{}", coverage_table(&s).render());
    }
    if want("--dynamic") {
        section("Extension: static profile feedback vs 1-bit/2-bit hardware schemes");
        print!("{}", dynamic_table().render());
    }
    if want("--inline") {
        section("Extension: inlining removes direct call/return breaks");
        print!("{}", inlining_table().render());
    }
    if want("--distribution") {
        section("Run lengths between mispredicted branches are not evenly spaced");
        print!("{}", distribution_table().render());
    }
}
