#![warn(missing_docs)]

//! # mfbench
//!
//! The experiment driver: runs the whole program sample base once,
//! collecting per-dataset run statistics, then regenerates every table and
//! figure of the paper analytically from those runs (a static predictor's
//! mispredictions on a recorded run are fully determined by the per-branch
//! counts, so nothing is ever re-executed per predictor).
//!
//! The `repro` binary prints everything; the Criterion benches under
//! `benches/` time each experiment's computation.
//!
//! All guest execution is routed through one process-global
//! [`mfharness::Harness`]: runs are deduplicated by content key, repeats
//! are served from the cache, and misses execute on a work-stealing pool.
//! Results come back in submission order, so every table and figure is
//! bit-identical to the serial reference path ([`collect_serial`]) at any
//! worker count.

pub mod chaos;

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use bpredict::experiment::{self, DatasetRun};
use bpredict::{evaluate, evaluate_unpredicted, BreakConfig, Metrics, Predictor};
use ifprob::CombineRule;
use mfdyn::{DynSpec, ZooReport};
use mfharness::{Harness, HarnessOptions, RunJob};
use mfreport::{fmt_percent, fmt_value, BarChart, Table};
use mfwork::{suite, Group, Workload};
use trace_ir::Program;
use trace_vm::{Backend, VmConfig};

/// One workload's collected experiment data.
#[derive(Clone, Debug)]
pub struct WorkloadRuns {
    /// Program name.
    pub name: String,
    /// FORTRAN/FP or C/integer.
    pub group: Group,
    /// One profiled run per dataset (profiling build: optimization off).
    pub runs: Vec<DatasetRun>,
    /// Dynamic instructions of the *optimized* build on the first dataset
    /// (for Table 1).
    pub opt_instrs_first: u64,
    /// Dynamic instructions of the profiling build on the first dataset.
    pub base_instrs_first: u64,
    /// Select-instruction fraction on the first dataset.
    pub select_ratio: f64,
    /// The heuristic (backward-taken / forward-not-taken) predictor for
    /// this program's profiling build.
    pub heuristic: Predictor,
    /// The BTFN static-heuristic predictor computed from the loop forest
    /// (back edges by dominance, not block layout).
    pub btfn: Predictor,
    /// BTFN with every branch the interval abstract interpreter *proved*
    /// pinned to its proven direction (`mfpredict::analyze`).
    pub proof: Predictor,
    /// The committed static ML model's per-branch predictions
    /// (`mfpredict::Model::committed` over `mfpredict` feature vectors).
    pub ml: Predictor,
    /// Online dynamic-predictor tallies per dataset, aligned with `runs`:
    /// the [`mfdyn::full_zoo`] roster driven over each profiling run's
    /// branch stream as it executed (same run, observed — attaching the
    /// zoo changes no statistic).
    pub zoo: Vec<ZooReport>,
}

/// The whole suite's collected data.
#[derive(Clone, Debug)]
pub struct SuiteRuns {
    /// Per-workload data, in Table 2 order.
    pub workloads: Vec<WorkloadRuns>,
}

impl SuiteRuns {
    /// Finds one workload's data by name.
    pub fn workload(&self, name: &str) -> Option<&WorkloadRuns> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

// --------------------------------------------------------------------
// The process-global execution harness
// --------------------------------------------------------------------

static HARNESS: OnceLock<Harness> = OnceLock::new();

/// When set, every optimized build runs the `mfcheck` semantic verifier
/// between passes ([`mfopt::Pipeline::run_checked`]), so a defective pass
/// is reported by name instead of corrupting the measurement. Surfaced as
/// `repro --verify-each`.
static VERIFY_EACH: AtomicBool = AtomicBool::new(false);

/// Turns inter-pass verification of optimized builds on or off.
pub fn set_verify_each(on: bool) {
    VERIFY_EACH.store(on, Ordering::Relaxed);
}

/// Whether optimized builds verify between passes.
pub fn verify_each_enabled() -> bool {
    VERIFY_EACH.load(Ordering::Relaxed)
}

/// The VM backend harness-scheduled measurement runs execute on. Both
/// backends are observably identical, so this never changes a table or
/// figure — it only changes how fast the collection step goes. Bench
/// collection defaults to the flat backend; `repro --backend reference`
/// restores the tree-walking baseline. The serial reference path
/// ([`collect_serial`]) always runs the reference interpreter, so the
/// harness-vs-serial equivalence tests double as a whole-suite
/// flat-vs-reference differential.
static BACKEND: AtomicU8 = AtomicU8::new(Backend::Flat as u8);

/// Selects the VM backend for harness-scheduled measurement runs.
pub fn set_backend(backend: Backend) {
    BACKEND.store(backend as u8, Ordering::Relaxed);
}

/// The VM backend harness-scheduled measurement runs execute on.
pub fn backend() -> Backend {
    if BACKEND.load(Ordering::Relaxed) == Backend::Reference as u8 {
        Backend::Reference
    } else {
        Backend::Flat
    }
}

/// Stamps the selected backend onto a base VM configuration.
fn run_config(base: VmConfig) -> VmConfig {
    VmConfig {
        backend: backend(),
        ..base
    }
}

/// A recorded run's branch counters must be consistent with the program
/// that produced them — `taken ≤ executed` and every counter keyed by a
/// registered branch site. A violation means the measurement itself is
/// corrupt, so it stops the experiment rather than skewing a table.
fn check_run_profile(program: &Program, label: &str, dataset: &str, stats: &trace_vm::RunStats) {
    let entries: Vec<_> = stats.branches.iter().collect();
    let issues = mfcheck::check_against_program(program, &entries);
    assert!(
        issues.is_empty(),
        "{label}/{dataset}: corrupt branch profile: {}",
        issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Installs the process-global harness with explicit options (worker
/// count, cache mode). Must be called before the first run executes;
/// returns `false` if a harness was already installed (the call is then a
/// no-op).
pub fn configure_harness(options: HarnessOptions) -> bool {
    HARNESS.set(Harness::new(options)).is_ok()
}

/// The process-global harness every measured run goes through. Created
/// from the environment (`MFHARNESS_JOBS`, `MFHARNESS_CACHE`) on first
/// use unless [`configure_harness`] installed one earlier.
pub fn harness() -> &'static Harness {
    HARNESS.get_or_init(Harness::from_env)
}

/// A workload with its compiled artifacts, ready to submit.
struct Prepared {
    workload: Workload,
    program: Arc<Program>,
    optimized: Arc<Program>,
    heuristic: Predictor,
    btfn: Predictor,
    proof: Predictor,
    ml: Predictor,
}

/// BTFN with interval proofs pinned: every site the abstract interpreter
/// proved keeps its proven direction; everything else falls back to the
/// loop-forest heuristic.
fn proof_predictor(analysis: &mfpredict::ProgramProofs, btfn: &Predictor) -> Predictor {
    use bpredict::Direction;
    let mut dirs: std::collections::BTreeMap<_, _> = btfn.iter().collect();
    for (id, taken) in analysis.proven_directions() {
        let dir = if taken {
            Direction::Taken
        } else {
            Direction::NotTaken
        };
        dirs.insert(id, dir);
    }
    Predictor::from_directions(dirs, Direction::NotTaken)
}

/// The committed ML model's predictions over `program`'s static features.
fn ml_predictor(program: &Program, analysis: &mfpredict::ProgramProofs) -> Predictor {
    use bpredict::Direction;
    let features = mfpredict::extract(program, analysis);
    Predictor::from_directions(
        mfpredict::Model::committed()
            .predict_branches(&features)
            .map(|(id, taken)| {
                let dir = if taken {
                    Direction::Taken
                } else {
                    Direction::NotTaken
                };
                (id, dir)
            }),
        Direction::NotTaken,
    )
}

fn prepare(workload: Workload) -> Prepared {
    let program = Arc::new(workload.compile().expect("bundled workload compiles"));
    let optimized = Arc::new(if verify_each_enabled() {
        workload
            .compile_optimized_verified()
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name))
    } else {
        workload
            .compile_optimized()
            .expect("bundled workload optimizes")
    });
    let heuristic = Predictor::heuristic(&program);
    let btfn = Predictor::static_heuristic(&program);
    let analysis = mfpredict::analyze(&program);
    let proof = proof_predictor(&analysis, &btfn);
    let ml = ml_predictor(&program, &analysis);
    Prepared {
        workload,
        program,
        optimized,
        heuristic,
        btfn,
        proof,
        ml,
    }
}

/// Submits the whole batch — every dataset of every prepared workload,
/// plus each workload's optimized build on its first dataset — and
/// assembles per-workload results in submission order.
fn collect_prepared(h: &Harness, prepared: Vec<Prepared>) -> SuiteRuns {
    let mut jobs = Vec::new();
    for p in &prepared {
        for d in &p.workload.datasets {
            jobs.push(
                RunJob::new(
                    p.workload.name,
                    d.name.clone(),
                    Arc::clone(&p.program),
                    d.inputs.clone(),
                    run_config(p.workload.vm_config()),
                )
                .with_zoo(mfdyn::full_zoo()),
            );
        }
        let first = &p.workload.datasets[0];
        jobs.push(RunJob::new(
            format!("{}:optimized", p.workload.name),
            first.name.clone(),
            Arc::clone(&p.optimized),
            first.inputs.clone(),
            run_config(p.workload.vm_config()),
        ));
    }
    let outcomes = h.run(jobs).unwrap_or_else(|e| panic!("{e}"));
    let mut outcomes = outcomes.into_iter();
    let mut workloads = Vec::with_capacity(prepared.len());
    for p in prepared {
        let mut runs = Vec::with_capacity(p.workload.datasets.len());
        let mut zoo = Vec::with_capacity(p.workload.datasets.len());
        for d in &p.workload.datasets {
            let outcome = outcomes.next().expect("one outcome per dataset job");
            check_run_profile(&p.program, p.workload.name, &d.name, &outcome.stats);
            runs.push(DatasetRun::new(d.name.clone(), (*outcome.stats).clone()));
            zoo.push(
                outcome
                    .zoo
                    .as_deref()
                    .expect("zoo jobs always carry a report")
                    .clone(),
            );
        }
        let opt = outcomes.next().expect("one outcome per optimized job");
        let base_instrs_first = runs[0].stats.total_instrs;
        let select_ratio = runs[0].stats.select_ratio();
        workloads.push(WorkloadRuns {
            name: p.workload.name.to_string(),
            group: p.workload.group,
            runs,
            opt_instrs_first: opt.stats.total_instrs,
            base_instrs_first,
            select_ratio,
            heuristic: p.heuristic,
            btfn: p.btfn,
            proof: p.proof,
            ml: p.ml,
            zoo,
        });
    }
    SuiteRuns { workloads }
}

/// Runs every workload on every dataset (the expensive step — everything
/// downstream is analytic) through the process-global harness.
pub fn collect() -> SuiteRuns {
    collect_with(harness())
}

/// Structural site fingerprints for one suite workload, recomputed from
/// its bundled source (compilation is cheap next to the runs the counts
/// came from). Empty for a name not in the suite.
fn workload_fingerprints(name: &str) -> std::collections::BTreeMap<trace_ir::BranchId, u64> {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .map(|w| {
            let program = w.compile().expect("bundled workload compiles");
            mfstale::site_fingerprints(&program)
        })
        .unwrap_or_default()
}

/// Appends every collected run's branch counters to the profile database,
/// one record per program × dataset labelled `program/dataset`, each
/// frame carrying the program's structural site fingerprints so a later
/// `repro --profile-db` can reuse the counts across a program edit
/// (see `mfstale`). Returns `(committed, in_memory_only)` record counts;
/// `Err` only on an injected crash point (never from a probabilistic
/// fault plan).
pub fn record_suite(
    store: &mut mfprofdb::ProfileStore,
    s: &SuiteRuns,
) -> Result<(usize, usize), mfprofdb::DbError> {
    let (mut committed, mut degraded) = (0usize, 0usize);
    for w in &s.workloads {
        let fps = workload_fingerprints(&w.name);
        for r in &w.runs {
            let label = format!("{}/{}", w.name, r.dataset);
            match store.append_with_fps(&label, &r.stats.branches, &fps)? {
                mfprofdb::Persistence::Committed => committed += 1,
                mfprofdb::Persistence::Degraded => degraded += 1,
            }
        }
    }
    Ok((committed, degraded))
}

/// [`record_suite`] against the sharded profile service: every run is
/// enqueued (fingerprints riding along), then one `flush` group-commits
/// the whole suite — a single append+sync per touched shard instead of
/// one per run. Returns `(committed, in_memory_only)` record counts;
/// `Err` only on an injected crash point (never from a probabilistic
/// fault plan).
pub fn record_suite_svc(
    svc: &mfprofsvc::ProfileService,
    s: &SuiteRuns,
) -> Result<(usize, usize), mfprofsvc::DbError> {
    for w in &s.workloads {
        let fps = workload_fingerprints(&w.name);
        for r in &w.runs {
            let label = format!("{}/{}", w.name, r.dataset);
            svc.enqueue_with_fps(&label, &r.stats.branches, &fps)?;
        }
    }
    let (mut committed, mut degraded) = (0usize, 0usize);
    for (_, p) in svc.flush()? {
        match p {
            mfprofsvc::Persistence::Committed => committed += 1,
            mfprofsvc::Persistence::Degraded => degraded += 1,
        }
    }
    Ok((committed, degraded))
}

// --------------------------------------------------------------------
// Profile reuse under version skew
// --------------------------------------------------------------------

/// One workload's profile-reuse assessment: how a prior database's
/// accumulated counts mapped onto the program as it compiles *today*.
#[derive(Clone, Debug)]
pub struct WorkloadSkew {
    /// Program name.
    pub name: String,
    /// Prior `program/dataset` records consumed.
    pub prior_datasets: usize,
    /// How every recorded site and every live site classified.
    pub report: mfstale::SkewReport,
    /// Live sites no prior record could feed, with their static-tier
    /// fallback prediction (interval proof → ML model → BTFN).
    pub fallback: Vec<(trace_ir::BranchId, bool, mfpredict::StaticTierSource)>,
    /// Op count of the flat-backend compilation steered by the remapped
    /// profile with the degraded sites held to BTFN
    /// ([`trace_vm::FlatProgram::compile_with_confidence`]).
    pub op_count: usize,
}

/// The whole suite's profile-reuse assessment against a prior database.
#[derive(Clone, Debug, Default)]
pub struct SuiteSkew {
    /// Per-workload assessments, suite order, only workloads with prior
    /// records.
    pub workloads: Vec<WorkloadSkew>,
    /// All per-workload reports folded together.
    pub total: mfstale::SkewReport,
}

impl SuiteSkew {
    /// True when every workload's remap was a pure identity — the program
    /// has not changed since the counts were recorded.
    pub fn is_identity(&self) -> bool {
        self.total.is_identity()
    }
}

/// Assesses how a prior profile database's counts carry over to the suite
/// programs as they compile now — the read half of version-skew-tolerant
/// reuse (`repro --profile-db` across a program edit).
///
/// `prior` and `prior_fps` come from
/// [`mfprofsvc::ProfileService::merged_totals`] and
/// [`mfprofsvc::ProfileService::merged_fingerprints_by_dataset`] *before*
/// this generation's runs are recorded. Per workload, every prior
/// `workload/dataset` record is remapped by structural fingerprint onto
/// the freshly compiled program ([`ifprob::combine_skewed`]); sites no
/// record could feed degrade to the static tier
/// ([`mfpredict::static_tier`]) and are excluded from steering trace
/// formation. Workloads with no prior records are skipped — that is the
/// first-generation case, not an error.
///
/// # Errors
///
/// [`ifprob::CombineError::Corrupt`] if a prior record is internally
/// inconsistent (`taken > executed`) — skew tolerance does not excuse
/// corruption. Never [`ifprob::CombineError::SiteMismatch`].
pub fn suite_skew(
    prior: &mfprofsvc::MergedTotals,
    prior_fps: &std::collections::BTreeMap<String, std::collections::BTreeMap<u32, u64>>,
    s: &SuiteRuns,
) -> Result<SuiteSkew, ifprob::CombineError> {
    use trace_ir::BranchId;
    use trace_vm::{confidence_digest, FlatProgram, TraceConfig};

    let all = suite();
    let mut out = SuiteSkew::default();
    for w in &s.workloads {
        let prefix = format!("{}/", w.name);
        type DatasetRows<'a> = Vec<(&'a String, &'a Vec<(u32, u64, u64)>)>;
        let datasets: DatasetRows = prior
            .iter()
            .filter(|(label, _)| label.starts_with(&prefix))
            .collect();
        if datasets.is_empty() {
            continue;
        }
        let Some(workload) = all.iter().find(|x| x.name == w.name) else {
            continue;
        };
        let program = workload.compile().expect("bundled workload compiles");
        let new_fps = mfstale::site_fingerprints(&program);
        // Stored fingerprints, unioned across the workload's datasets
        // (they all describe the same program; later records win).
        let mut old_fps: std::collections::BTreeMap<BranchId, u64> = Default::default();
        for (label, _) in &datasets {
            if let Some(fps) = prior_fps.get(*label) {
                old_fps.extend(fps.iter().map(|(&id, &fp)| (BranchId(id), fp)));
            }
        }
        // Validate each dataset before touching BranchCounts (whose
        // accumulation API rejects `taken > executed` outright).
        let mut profiles: Vec<trace_vm::BranchCounts> = Vec::with_capacity(datasets.len());
        let mut summed: std::collections::BTreeMap<BranchId, (u64, u64)> = Default::default();
        for (i, (_, rows)) in datasets.iter().enumerate() {
            let entries: Vec<(BranchId, u64, u64)> = rows
                .iter()
                .map(|&(id, e, t)| (BranchId(id), e, t))
                .collect();
            let issues = mfcheck::check_entries(&entries);
            if !issues.is_empty() {
                return Err(ifprob::CombineError::Corrupt { dataset: i, issues });
            }
            for &(id, e, t) in &entries {
                let slot = summed.entry(id).or_insert((0, 0));
                slot.0 = slot.0.saturating_add(e);
                slot.1 = slot.1.saturating_add(t);
            }
            profiles.push(entries.into_iter().collect());
        }
        let refs: Vec<&trace_vm::BranchCounts> = profiles.iter().collect();
        let skewed = ifprob::combine_skewed(&refs, &old_fps, &new_fps, CombineRule::Scaled)?;
        // The integer-count remap of the summed prior records steers trace
        // formation; a site is in `skewed.degraded` exactly when the sum
        // feeds it nothing, so the two views agree on the degraded set.
        let summed_entries: Vec<(BranchId, u64, u64)> =
            summed.into_iter().map(|(id, (e, t))| (id, e, t)).collect();
        let remap = mfstale::remap_counts(&summed_entries, &old_fps, &new_fps);
        debug_assert_eq!(remap.degraded, skewed.degraded);
        let profile: trace_vm::BranchCounts = remap.counts.into_iter().collect();
        let tcfg = TraceConfig {
            confidence_digest: confidence_digest(&skewed.degraded),
            ..TraceConfig::default()
        };
        let compiled =
            FlatProgram::compile_with_confidence(&program, Some(&profile), &skewed.degraded, tcfg);
        let fallback = mfpredict::static_tier(&program, &skewed.degraded);
        out.total.merge(&skewed.report);
        out.workloads.push(WorkloadSkew {
            name: w.name.clone(),
            prior_datasets: datasets.len(),
            report: skewed.report,
            fallback,
            op_count: compiled.op_count(),
        });
    }
    Ok(out)
}

/// [`collect`] through an explicit harness (tests use this to pin worker
/// counts and cache modes).
pub fn collect_with(h: &Harness) -> SuiteRuns {
    collect_prepared(h, suite().into_iter().map(prepare).collect())
}

/// Runs a named subset (used by tests and the quick bench profile).
pub fn collect_subset(names: &[&str]) -> SuiteRuns {
    collect_subset_with(harness(), names)
}

/// [`collect_subset`] through an explicit harness.
pub fn collect_subset_with(h: &Harness, names: &[&str]) -> SuiteRuns {
    collect_prepared(
        h,
        suite()
            .into_iter()
            .filter(|w| names.contains(&w.name))
            .map(prepare)
            .collect(),
    )
}

// --------------------------------------------------------------------
// The serial reference path. This is the seed's original collection
// loop, kept verbatim as the ground truth the harness must match
// bit-for-bit (see the equivalence tests).
// --------------------------------------------------------------------

fn collect_workload_serial(w: &Workload) -> WorkloadRuns {
    let program = w.compile().expect("bundled workload compiles");
    let optimized = if verify_each_enabled() {
        w.compile_optimized_verified()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
    } else {
        w.compile_optimized().expect("bundled workload optimizes")
    };
    let heuristic = Predictor::heuristic(&program);
    let btfn = Predictor::static_heuristic(&program);
    let analysis = mfpredict::analyze(&program);
    let proof = proof_predictor(&analysis, &btfn);
    let ml = ml_predictor(&program, &analysis);
    let mut runs = Vec::with_capacity(w.datasets.len());
    let mut zoo = Vec::with_capacity(w.datasets.len());
    for d in &w.datasets {
        let run = w
            .run(&program, d)
            .unwrap_or_else(|e| panic!("{}/{}: {e}", w.name, d.name));
        check_run_profile(&program, w.name, &d.name, &run.stats);
        runs.push(DatasetRun::new(d.name.clone(), run.stats));
        // The reference zoo pass: same program, same inputs, observed by
        // the predictor roster. Predictor tallies are backend-invariant,
        // so this must match the harness path bit for bit.
        let mut observers = mfdyn::Zoo::for_program(&mfdyn::full_zoo(), &program);
        trace_vm::Vm::with_config(&program, w.vm_config())
            .run_branches(&d.inputs, &mut observers)
            .unwrap_or_else(|e| panic!("{}/{} zoo pass: {e}", w.name, d.name));
        zoo.push(observers.report());
    }
    let first = &w.datasets[0];
    let base_instrs_first = runs[0].stats.total_instrs;
    let select_ratio = runs[0].stats.select_ratio();
    let opt_run = w
        .run(&optimized, first)
        .unwrap_or_else(|e| panic!("{} optimized: {e}", w.name));
    WorkloadRuns {
        name: w.name.to_string(),
        group: w.group,
        runs,
        opt_instrs_first: opt_run.stats.total_instrs,
        base_instrs_first,
        select_ratio,
        heuristic,
        btfn,
        proof,
        ml,
        zoo,
    }
}

/// [`collect`] without the harness: one thread, no cache, no dedup.
pub fn collect_serial() -> SuiteRuns {
    SuiteRuns {
        workloads: suite().iter().map(collect_workload_serial).collect(),
    }
}

/// [`collect_subset`] without the harness.
pub fn collect_subset_serial(names: &[&str]) -> SuiteRuns {
    SuiteRuns {
        workloads: suite()
            .iter()
            .filter(|w| names.contains(&w.name))
            .map(collect_workload_serial)
            .collect(),
    }
}

// --------------------------------------------------------------------
// Table 1: dynamic dead-code percentage
// --------------------------------------------------------------------

/// Table 1: the dynamic fraction of instructions the compiler's DCE (plus
/// constant-branch folding) would have removed, per program.
pub fn table1(s: &SuiteRuns) -> Table {
    let mut t = Table::new(&["PROGRAM", "DEAD CODE"]);
    let mut rows: Vec<(String, f64)> = s
        .workloads
        .iter()
        .map(|w| {
            let dead = 1.0 - w.opt_instrs_first as f64 / w.base_instrs_first as f64;
            (w.name.clone(), dead.max(0.0))
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, dead) in rows {
        t.row_owned(vec![name, format!("{:.0}%", dead * 100.0)]);
    }
    t
}

// --------------------------------------------------------------------
// Table 2: the program/dataset inventory
// --------------------------------------------------------------------

/// Table 2: the programs tested and their datasets.
pub fn table2() -> Table {
    let mut t = Table::new(&["GROUP", "PROGRAM", "DATASET", "DESCRIPTION"]);
    for w in suite() {
        let group = match w.group {
            Group::FortranFp => "FORTRAN/FP",
            Group::CInteger => "C/Integer",
        };
        for d in &w.datasets {
            t.row(&[group, w.name, &d.name, &d.description]);
        }
    }
    t
}

// --------------------------------------------------------------------
// Table 3: instrs/break for the low-variability FORTRAN programs
// --------------------------------------------------------------------

/// The programs Table 3 covers: FORTRAN programs with little or no dataset
/// variability.
pub const TABLE3_PROGRAMS: &[&str] = &["tomcatv", "matrix300", "nasa7", "fpppp", "lfk", "doduc"];

/// Table 3: instructions per break under self-prediction for the FORTRAN
/// programs with little dataset variability.
pub fn table3(s: &SuiteRuns) -> Table {
    let mut t = Table::new(&["PROGRAM", "DATASET", "INSTRS/BREAK"]);
    let cfg = BreakConfig::fig2();
    for name in TABLE3_PROGRAMS {
        let Some(w) = s.workload(name) else { continue };
        for run in &w.runs {
            let m = experiment::self_metrics(run, cfg);
            let ds = if run.dataset == "ref" && w.runs.len() == 1 {
                ""
            } else {
                &run.dataset
            };
            t.row_owned(vec![
                w.name.clone(),
                ds.to_string(),
                fmt_value(m.instrs_per_break),
            ]);
        }
    }
    t
}

// --------------------------------------------------------------------
// Figure 1: instructions per break with no prediction
// --------------------------------------------------------------------

/// One Figure 1 row: a program×dataset pair's unpredicted
/// instructions-per-break, without and with direct call/return breaks.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig1Row {
    /// `program/dataset` label.
    pub label: String,
    /// Black bar: conditional branches + unavoidable breaks.
    pub without_calls: f64,
    /// White bar: plus direct calls and returns.
    pub with_calls: f64,
}

/// Figure 1 data for one program group (1a = FORTRAN/FP, 1b = C/integer).
pub fn fig1_rows(s: &SuiteRuns, group: Group) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for w in s.workloads.iter().filter(|w| w.group == group) {
        for run in &w.runs {
            let black = evaluate_unpredicted(&run.stats, BreakConfig::fig1());
            let white = evaluate_unpredicted(&run.stats, BreakConfig::fig1_with_calls());
            rows.push(Fig1Row {
                label: format!("{}/{}", w.name, run.dataset),
                without_calls: black.instrs_per_break,
                with_calls: white.instrs_per_break,
            });
        }
    }
    rows
}

/// Renders Figure 1a or 1b.
pub fn fig1_chart(s: &SuiteRuns, group: Group) -> BarChart {
    let (title, letter) = match group {
        Group::FortranFp => ("Figure 1a: instrs/break, no prediction (FORTRAN/FP)", "a"),
        Group::CInteger => ("Figure 1b: instrs/break, no prediction (C/Integer)", "b"),
    };
    let _ = letter;
    let mut c = BarChart::new(title, "branches+unavoidable", "+direct calls/returns");
    for r in fig1_rows(s, group) {
        c.entry(&r.label, r.without_calls, r.with_calls);
    }
    c
}

// --------------------------------------------------------------------
// Figure 2: instructions per break with prediction
// --------------------------------------------------------------------

/// One Figure 2 row: self-prediction (black) vs the scaled sum of all
/// other datasets (white).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2Row {
    /// `program/dataset` label.
    pub label: String,
    /// Black bar: the dataset predicting itself (upper bound).
    pub self_ipb: f64,
    /// White bar: leave-one-out scaled-combined predictor. Equal to
    /// `self_ipb` for single-dataset programs (nothing else to combine).
    pub others_ipb: f64,
}

/// Figure 2 data: `spice_only` selects Figure 2a (the spice2g6 datasets);
/// otherwise the C/integer programs (Figure 2b).
pub fn fig2_rows(s: &SuiteRuns, spice_only: bool) -> Vec<Fig2Row> {
    let cfg = BreakConfig::fig2();
    let mut rows = Vec::new();
    for w in &s.workloads {
        let included = if spice_only {
            w.name == "spice2g6"
        } else {
            w.group == Group::CInteger
        };
        if !included {
            continue;
        }
        for (i, run) in w.runs.iter().enumerate() {
            let self_m = experiment::self_metrics(run, cfg);
            let others = if w.runs.len() > 1 {
                experiment::loo_metrics(&w.runs, i, CombineRule::Scaled, cfg).instrs_per_break
            } else {
                self_m.instrs_per_break
            };
            rows.push(Fig2Row {
                label: format!("{}/{}", w.name, run.dataset),
                self_ipb: self_m.instrs_per_break,
                others_ipb: others,
            });
        }
    }
    rows
}

/// Renders Figure 2a or 2b.
pub fn fig2_chart(s: &SuiteRuns, spice_only: bool) -> BarChart {
    let title = if spice_only {
        "Figure 2a: instrs/break, predicted (spice2g6)"
    } else {
        "Figure 2b: instrs/break, predicted (C/Integer)"
    };
    let mut c = BarChart::new(title, "self (best possible)", "scaled sum of others");
    for r in fig2_rows(s, spice_only) {
        c.entry(&r.label, r.self_ipb, r.others_ipb);
    }
    c
}

// --------------------------------------------------------------------
// Figure 3: best and worst single-dataset predictors
// --------------------------------------------------------------------

/// One Figure 3 row: the best/worst single other dataset as a fraction of
/// self-prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig3Row {
    /// `program/dataset` label of the target.
    pub label: String,
    /// Best single other dataset (fraction of self, and its name).
    pub best: (String, f64),
    /// Worst single other dataset.
    pub worst: (String, f64),
}

/// Figure 3 data: `spice_only` selects 3a; otherwise C/integer programs
/// with ≥2 datasets (3b).
pub fn fig3_rows(s: &SuiteRuns, spice_only: bool) -> Vec<Fig3Row> {
    let cfg = BreakConfig::fig2();
    let mut rows = Vec::new();
    for w in &s.workloads {
        let included = if spice_only {
            w.name == "spice2g6"
        } else {
            w.group == Group::CInteger && w.runs.len() >= 2
        };
        if !included {
            continue;
        }
        for i in 0..w.runs.len() {
            if let Some(bw) = experiment::best_worst(&w.runs, i, cfg) {
                rows.push(Fig3Row {
                    label: format!("{}/{}", w.name, w.runs[i].dataset),
                    best: bw.best,
                    worst: bw.worst,
                });
            }
        }
    }
    rows
}

/// Renders Figure 3a or 3b.
pub fn fig3_chart(s: &SuiteRuns, spice_only: bool) -> BarChart {
    let title = if spice_only {
        "Figure 3a: best/worst single-dataset prediction, % of self (spice2g6)"
    } else {
        "Figure 3b: best/worst single-dataset prediction, % of self (C/Integer)"
    };
    let mut c = BarChart::new(title, "best other dataset", "worst other dataset");
    for r in fig3_rows(s, spice_only) {
        c.entry(&r.label, r.best.1 * 100.0, r.worst.1 * 100.0);
    }
    c
}

// --------------------------------------------------------------------
// Informal observations
// --------------------------------------------------------------------

/// Percent-taken per dataset and the per-program spread (the paper's
/// "program constant" observation: ≤9% spread except spice2g6).
pub fn percent_taken_table(s: &SuiteRuns) -> Table {
    let mut t = Table::new(&["PROGRAM", "DATASET", "% TAKEN", "PROGRAM SPREAD"]);
    for w in &s.workloads {
        let spread = experiment::percent_taken_spread(&w.runs)
            .map(|(lo, hi)| fmt_percent(hi - lo))
            .unwrap_or_default();
        for (i, run) in w.runs.iter().enumerate() {
            let pt = run.percent_taken().map(fmt_percent).unwrap_or_default();
            t.row_owned(vec![
                w.name.clone(),
                run.dataset.clone(),
                pt,
                if i == 0 {
                    spread.clone()
                } else {
                    String::new()
                },
            ]);
        }
    }
    t
}

/// Scaled vs unscaled vs polling: leave-one-out instrs/break per target
/// under each combination rule (multi-dataset programs only).
pub fn combination_table(s: &SuiteRuns) -> Table {
    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&["PROGRAM", "DATASET", "SCALED", "UNSCALED", "POLLING"]);
    for w in &s.workloads {
        if w.runs.len() < 2 {
            continue;
        }
        for i in 0..w.runs.len() {
            let m =
                |rule| fmt_value(experiment::loo_metrics(&w.runs, i, rule, cfg).instrs_per_break);
            t.row_owned(vec![
                w.name.clone(),
                w.runs[i].dataset.clone(),
                m(CombineRule::Scaled),
                m(CombineRule::Unscaled),
                m(CombineRule::Polling),
            ]);
        }
    }
    t
}

/// The heuristic table's fixed column order. This exact sequence is the
/// contract for both the rendered table and the `heuristic_table` object
/// in `repro --json-metrics` — reorder here and you have changed the
/// JSON schema, so don't.
pub const HEURISTIC_COLUMNS: [&str; 11] = [
    "PROGRAM",
    "DATASET",
    "BRANCHES",
    "BTFN",
    "HEURISTIC",
    "PROOF",
    "ML",
    "PROFILE",
    "SELF",
    "2-BIT",
    "GSHARE",
];

/// The online 2-bit counter configuration the heuristic table's `2-BIT`
/// column reports (from the [`mfdyn::full_zoo`] roster).
pub const TWO_BIT_SPEC: DynSpec = DynSpec::TwoBit { table_bits: 12 };

/// The online gshare configuration the heuristic table's `GSHARE` column
/// reports (from the [`mfdyn::full_zoo`] roster).
pub const GSHARE_SPEC: DynSpec = DynSpec::Gshare {
    history: 8,
    table_bits: 12,
};

/// Placeholder in the ML column for workloads whose profiles the
/// committed model trained on: their numbers would be in-sample, so they
/// are never reported (the held-out half carries the ML result).
pub const ML_TRAIN_MARKER: &str = "(train)";

/// The heuristic table's row data, unformatted except for the percent
/// cells, in [`HEURISTIC_COLUMNS`] order. Shared by [`heuristic_table`]
/// and the JSON metrics writer so the two can never disagree.
///
/// Per program/dataset: executed conditional branches, then the
/// mispredict rate (fraction of executed branches predicted wrong) under
/// each prediction family — BTFN (loop forest), the source-kind loop
/// heuristic, interval proofs pinned over BTFN, the static ML model
/// (held-out workloads only — training-half rows show
/// [`ML_TRAIN_MARKER`]), leave-one-out profile feedback (frequency), and
/// self-prediction (the real-profile upper bound).
pub fn heuristic_rows(s: &SuiteRuns) -> Vec<Vec<String>> {
    let cfg = BreakConfig::fig2();
    let mut rows = Vec::new();
    for w in &s.workloads {
        for (i, run) in w.runs.iter().enumerate() {
            let rate = |m: Metrics| fmt_percent(1.0 - m.correct_fraction());
            let of = |p: &Predictor| rate(evaluate(&run.stats, p, cfg));
            let loo = if w.runs.len() > 1 {
                experiment::loo_metrics(&w.runs, i, CombineRule::Scaled, cfg)
            } else {
                experiment::self_metrics(run, cfg)
            };
            let ml = if mfpredict::is_train_workload(&w.name) {
                ML_TRAIN_MARKER.to_string()
            } else {
                of(&w.ml)
            };
            let dyn_rate = |spec: DynSpec| {
                fmt_percent(
                    w.zoo[i]
                        .get(spec)
                        .expect("full_zoo carries the table's specs")
                        .mispredict_rate(),
                )
            };
            rows.push(vec![
                w.name.clone(),
                run.dataset.clone(),
                run.stats.branches.total_executed().to_string(),
                of(&w.btfn),
                of(&w.heuristic),
                of(&w.proof),
                ml,
                rate(loo),
                rate(experiment::self_metrics(run, cfg)),
                dyn_rate(TWO_BIT_SPEC),
                dyn_rate(GSHARE_SPEC),
            ]);
        }
    }
    rows
}

/// Static prediction vs profile feedback: per-dataset mispredict rate
/// under the BTFN static heuristic (loop forest: back edges taken,
/// everything else not-taken), the source-kind loop heuristic, interval
/// proofs over BTFN, the profile-free ML model (evaluated strictly on
/// the held-out workload half), leave-one-out profile prediction, and
/// the self-prediction upper bound.
pub fn heuristic_table(s: &SuiteRuns) -> Table {
    let mut t = Table::new(&HEURISTIC_COLUMNS);
    for row in heuristic_rows(s) {
        t.row_owned(row);
    }
    t
}

/// Select-instruction ratios (the paper: under 0.2–0.7% of executed
/// instructions).
pub fn selects_table(s: &SuiteRuns) -> Table {
    let mut t = Table::new(&["PROGRAM", "SELECT % OF INSTRS"]);
    for w in &s.workloads {
        t.row_owned(vec![w.name.clone(), fmt_percent(w.select_ratio)]);
    }
    t
}

/// compress vs uncompress cross-mode prediction: each mode's datasets
/// predicting the other mode (the paper: "a very bad idea").
pub fn crossmode_table(s: &SuiteRuns) -> Option<Table> {
    let cfg = BreakConfig::fig2();
    let comp = s.workload("compress")?;
    let unc = s.workload("uncompress")?;
    let mut t = Table::new(&["TARGET", "SELF", "OTHER MODE", "FRACTION"]);
    let combined = |w: &WorkloadRuns| {
        let profiles: Vec<_> = w.runs.iter().map(|r| &r.stats.branches).collect();
        ifprob::combine(&profiles, CombineRule::Scaled)
    };
    let comp_profile = combined(comp);
    let unc_profile = combined(unc);
    for (target, other_profile) in [(comp, &unc_profile), (unc, &comp_profile)] {
        for run in &target.runs {
            let self_m = experiment::self_metrics(run, cfg).instrs_per_break;
            let cross = evaluate(
                &run.stats,
                &Predictor::from_weighted(other_profile, Default::default()),
                cfg,
            )
            .instrs_per_break;
            t.row_owned(vec![
                format!("{}/{}", target.name, run.dataset),
                fmt_value(self_m),
                fmt_value(cross),
                fmt_percent(cross / self_m),
            ]);
        }
    }
    Some(t)
}

/// Static vs dynamic prediction (extension): simulate the hardware
/// literature's 1-bit and 2-bit per-branch schemes over recorded branch
/// traces and put them next to static profile feedback on the same runs —
/// the comparison the paper frames against [Smith 81] / [Lee and Smith 84].
/// A profile-seeded 2-bit hybrid is included (feedback sets the initial
/// counter state, hardware adapts).
///
/// Batches traced jobs for `pairs` through `h` (full runs are required —
/// the branch trace never goes to the disk tier). The traced pairs shared
/// by [`dynamic_table`] and [`distribution_table`] execute once.
fn traced_runs(
    h: &Harness,
    pairs: &[(&'static str, &'static str)],
) -> Vec<((&'static str, &'static str), mfharness::RunOutcome)> {
    let all = suite();
    let vm_cfg = run_config(VmConfig {
        record_branch_trace: true,
        ..VmConfig::default()
    });
    let mut selected = Vec::new();
    let mut jobs = Vec::new();
    for &(prog, dataset) in pairs {
        let Some(w) = all.iter().find(|w| w.name == prog) else {
            continue;
        };
        let Some(d) = w.dataset(dataset) else {
            continue;
        };
        let program = Arc::new(w.compile().expect("bundled workload compiles"));
        jobs.push(RunJob::new(prog, dataset, program, d.inputs.clone(), vm_cfg).needing_run());
        selected.push((prog, dataset));
    }
    let outcomes = h.run(jobs).unwrap_or_else(|e| panic!("{e}"));
    selected.into_iter().zip(outcomes).collect()
}

/// Runs a fixed set of small program×dataset pairs (traces are recorded in
/// full, so inputs are kept modest).
pub fn dynamic_table() -> Table {
    dynamic_table_with(harness())
}

/// [`dynamic_table`] through an explicit harness.
pub fn dynamic_table_with(h: &Harness) -> Table {
    use bpredict::dynamic::{simulate, simulate_seeded, DynamicScheme};

    let pairs = [
        ("doduc", "tiny"),
        ("gcc", "loop_mod"),
        ("espresso", "ti"),
        ("li", "kittyv"),
        ("compress", "cmprssc"),
        ("spiff", "case1"),
        ("mfcom", "c_metric"),
    ];
    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&[
        "PROGRAM/DATASET",
        "STATIC SELF",
        "1-BIT",
        "2-BIT",
        "2-BIT+PROFILE",
        "I/B STATIC",
        "I/B 2-BIT",
    ]);
    for ((prog, dataset), outcome) in traced_runs(h, &pairs) {
        let run = outcome.run();

        let self_pred = Predictor::from_counts(&run.stats.branches, bpredict::Direction::NotTaken);
        let static_m = evaluate(&run.stats, &self_pred, cfg);
        let one = simulate(
            &run.branch_trace,
            DynamicScheme::OneBit,
            bpredict::Direction::NotTaken,
        );
        let two = simulate(
            &run.branch_trace,
            DynamicScheme::TwoBit,
            bpredict::Direction::NotTaken,
        );
        let seeded = simulate_seeded(&run.branch_trace, DynamicScheme::TwoBit, &self_pred);
        let ipb = |mispredicted: u64| {
            let breaks = mispredicted + run.stats.events.unavoidable();
            if breaks == 0 {
                run.stats.total_instrs as f64
            } else {
                run.stats.total_instrs as f64 / breaks as f64
            }
        };
        t.row_owned(vec![
            format!("{prog}/{dataset}"),
            fmt_percent(static_m.correct_fraction()),
            fmt_percent(one.correct_fraction()),
            fmt_percent(two.correct_fraction()),
            fmt_percent(seeded.correct_fraction()),
            fmt_value(static_m.instrs_per_break),
            fmt_value(ipb(two.mispredicted)),
        ]);
    }
    t
}

/// The run-length distribution between mispredicted branches (§3 "The
/// distribution of runs of instructions between mispredicted branches will
/// not be constant"): percentiles of instructions between mispredicts
/// under self-prediction, showing how unevenly the breaks fall.
pub fn distribution_table() -> Table {
    distribution_table_with(harness())
}

/// [`distribution_table`] through an explicit harness.
pub fn distribution_table_with(h: &Harness) -> Table {
    use bpredict::dynamic::mispredict_gaps;

    let pairs = [
        ("doduc", "tiny"),
        ("gcc", "loop_mod"),
        ("li", "kittyv"),
        ("compress", "cmprssc"),
        ("spiff", "case1"),
        ("espresso", "ti"),
    ];
    let mut t = Table::new(&[
        "PROGRAM/DATASET",
        "MEAN",
        "P10",
        "MEDIAN",
        "P90",
        "MAX",
        "P90/P10",
    ]);
    for ((prog, dataset), outcome) in traced_runs(h, &pairs) {
        let run = outcome.run();
        let p = Predictor::from_counts(&run.stats.branches, bpredict::Direction::NotTaken);
        let g = mispredict_gaps(&run.branch_trace, &p);
        let spread = if g.p10 > 0 {
            format!("{:.1}x", g.p90 as f64 / g.p10 as f64)
        } else {
            "-".to_string()
        };
        t.row_owned(vec![
            format!("{prog}/{dataset}"),
            fmt_value(g.mean),
            g.p10.to_string(),
            g.p50.to_string(),
            g.p90.to_string(),
            g.max.to_string(),
            spread,
        ]);
    }
    t
}

/// Inlining (extension): the paper argues inlining removes the two breaks
/// per executed call. Compare instrs/break with calls counted, before and
/// after the `mfopt` inliner, on a subset of programs.
pub fn inlining_table() -> Table {
    inlining_table_with(harness())
}

/// [`inlining_table`] through an explicit harness. Base and inlined
/// builds are distinct IR, hence distinct run keys — both are submitted
/// in one batch and execute in parallel.
pub fn inlining_table_with(h: &Harness) -> Table {
    use mfopt::Inliner;

    let cfg = BreakConfig::fig2_with_calls();
    let all = suite();
    let mut t = Table::new(&[
        "PROGRAM/DATASET",
        "I/B (CALLS BREAK)",
        "AFTER INLINING",
        "CALLS BEFORE",
        "CALLS AFTER",
    ]);
    let mut selected = Vec::new();
    let mut jobs = Vec::new();
    for (prog, dataset) in [
        ("doduc", "tiny"),
        ("gcc", "loop_mod"),
        ("li", "kittyv"),
        ("mfcom", "c_metric"),
        ("spiff", "case1"),
    ] {
        let Some(w) = all.iter().find(|w| w.name == prog) else {
            continue;
        };
        let Some(d) = w.dataset(dataset) else {
            continue;
        };
        let base = Arc::new(w.compile().expect("compiles"));
        let mut inlined = (*base).clone();
        Inliner::default().run(&mut inlined);
        let config = run_config(VmConfig::default());
        jobs.push(RunJob::new(prog, dataset, base, d.inputs.clone(), config).needing_run());
        jobs.push(
            RunJob::new(
                format!("{prog}:inlined"),
                dataset,
                Arc::new(inlined),
                d.inputs.clone(),
                config,
            )
            .needing_run(),
        );
        selected.push((prog, dataset));
    }
    let outcomes = h.run(jobs).unwrap_or_else(|e| panic!("{e}"));
    let mut outcomes = outcomes.into_iter();
    for (prog, dataset) in selected {
        let base_run = outcomes.next().expect("base outcome");
        let in_run = outcomes.next().expect("inlined outcome");
        let (base_run, in_run) = (base_run.run(), in_run.run());
        assert_eq!(base_run.output, in_run.output, "{prog}: inlining broke it");
        let m = |stats: &trace_vm::RunStats| {
            let p = Predictor::from_counts(&stats.branches, bpredict::Direction::NotTaken);
            evaluate(stats, &p, cfg)
        };
        t.row_owned(vec![
            format!("{prog}/{dataset}"),
            fmt_value(m(&base_run.stats).instrs_per_break),
            fmt_value(m(&in_run.stats).instrs_per_break),
            base_run.stats.events.direct_calls.to_string(),
            in_run.stats.events.direct_calls.to_string(),
        ]);
    }
    t
}

/// The paper's "coverage" hunt (§3 informal): the authors suspected poor
/// cross-prediction came from the predictor *emphasizing different parts
/// of the program* rather than branches flipping direction, but could not
/// find a quantity that correlated. This table takes every (target,
/// worst-single-predictor) pair and puts the prediction ratio next to the
/// predictor's dynamic coverage of the target and, where covered, the
/// direction-agreement rate — separating the two hypotheses directly.
pub fn coverage_table(s: &SuiteRuns) -> Table {
    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&[
        "TARGET",
        "WORST PREDICTOR",
        "% OF SELF",
        "DYN COVERAGE",
        "AGREEMENT",
        "OVERLAP",
    ]);
    for w in &s.workloads {
        if w.runs.len() < 2 {
            continue;
        }
        for i in 0..w.runs.len() {
            let Some(bw) = experiment::best_worst(&w.runs, i, cfg) else {
                continue;
            };
            let worst = w
                .runs
                .iter()
                .find(|r| r.dataset == bw.worst.0)
                .expect("worst predictor is one of the runs");
            let cov = ifprob::coverage(&worst.stats.branches, &w.runs[i].stats.branches);
            let ovl = ifprob::overlap(&worst.stats.branches, &w.runs[i].stats.branches);
            t.row_owned(vec![
                format!("{}/{}", w.name, w.runs[i].dataset),
                bw.worst.0.clone(),
                fmt_percent(bw.worst.1),
                fmt_percent(cov.dynamic),
                fmt_percent(cov.agreement),
                fmt_percent(ovl),
            ]);
        }
    }
    t
}

/// The percent-correct measure the paper opens with (fpppp 83% vs li 85%):
/// self-prediction percent-correct next to instrs-per-mispredict, showing
/// why percent-correct is the wrong measure.
pub fn percent_correct_table(s: &SuiteRuns) -> Table {
    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&["PROGRAM", "DATASET", "% CORRECT", "INSTRS/BREAK"]);
    for w in &s.workloads {
        for run in &w.runs {
            let m: Metrics = experiment::self_metrics(run, cfg);
            t.row_owned(vec![
                w.name.clone(),
                run.dataset.clone(),
                fmt_percent(m.correct_fraction()),
                fmt_value(m.instrs_per_break),
            ]);
        }
    }
    t
}

// --------------------------------------------------------------------
// Dynamic predictors (extension): instructions per mispredict
// --------------------------------------------------------------------

/// The dynamic-predictor headline's value columns, in order: static
/// profile feedback (leave-one-out, self for single-dataset programs),
/// the BTFN loop-forest heuristic, the committed static ML model
/// (held-out workloads only), then the online hardware-style predictors
/// from the [`mfdyn::full_zoo`] roster. This exact sequence is the
/// contract for the rendered table, `BENCH_dynpred.json`, and the
/// `dyn_table` object in `repro --json-metrics`.
pub const DYN_COLUMNS: [&str; 10] = [
    "PROFILE",
    "BTFN",
    "ML",
    "1-BIT",
    "2-BIT",
    "GSHARE/4",
    "GSHARE/8",
    "GSHARE/12",
    "GSHARE/16",
    "PERCEPTRON",
];

/// The zoo specs behind [`DYN_COLUMNS`]' online columns (same order).
const DYN_ZOO_SPECS: [DynSpec; 7] = [
    DynSpec::OneBit { table_bits: 12 },
    DynSpec::TwoBit { table_bits: 12 },
    DynSpec::Gshare {
        history: 4,
        table_bits: 12,
    },
    DynSpec::Gshare {
        history: 8,
        table_bits: 12,
    },
    DynSpec::Gshare {
        history: 12,
        table_bits: 12,
    },
    DynSpec::Gshare {
        history: 16,
        table_bits: 12,
    },
    DynSpec::Perceptron {
        history: 12,
        table_bits: 8,
    },
];

/// One headline row: a program×dataset pair's instructions-per-mispredict
/// under each prediction family, in [`DYN_COLUMNS`] order.
#[derive(Clone, Debug, PartialEq)]
pub struct DynRow {
    /// Program name.
    pub program: String,
    /// Dataset name.
    pub dataset: String,
    /// Instructions per mispredicted conditional branch, one per value
    /// column; `None` where the cell is not reported (the ML column on
    /// the committed model's training workloads).
    pub ipm: Vec<Option<f64>>,
}

/// Instructions per mispredict, with the whole run as the value when
/// nothing was mispredicted (the same convention as instrs-per-break).
fn per_mispredict(instrs: u64, mispredicted: u64) -> f64 {
    if mispredicted == 0 {
        instrs as f64
    } else {
        instrs as f64 / mispredicted as f64
    }
}

/// The headline data: every program×dataset pair's
/// instructions-per-mispredict under profile feedback and each dynamic
/// predictor, in [`DYN_COLUMNS`] order. Purely analytic over the
/// collected runs — the online tallies ride along on the profiling runs,
/// so nothing is re-executed here.
pub fn dyn_rows(s: &SuiteRuns) -> Vec<DynRow> {
    let cfg = BreakConfig::fig2();
    let mut rows = Vec::new();
    for w in &s.workloads {
        for (i, run) in w.runs.iter().enumerate() {
            let of = |m: Metrics| per_mispredict(m.instrs, m.mispredicted);
            let loo = if w.runs.len() > 1 {
                experiment::loo_metrics(&w.runs, i, CombineRule::Scaled, cfg)
            } else {
                experiment::self_metrics(run, cfg)
            };
            let ml = if mfpredict::is_train_workload(&w.name) {
                None
            } else {
                Some(of(evaluate(&run.stats, &w.ml, cfg)))
            };
            let mut ipm = vec![
                Some(of(loo)),
                Some(of(evaluate(&run.stats, &w.btfn, cfg))),
                ml,
            ];
            for spec in DYN_ZOO_SPECS {
                let counts = w.zoo[i].get(spec).expect("full_zoo carries the roster");
                ipm.push(Some(per_mispredict(
                    run.stats.total_instrs,
                    counts.mispredicted,
                )));
            }
            rows.push(DynRow {
                program: w.name.clone(),
                dataset: run.dataset.clone(),
                ipm,
            });
        }
    }
    rows
}

/// Per-column geometric means over the headline rows, skipping cells that
/// are not reported; `None` for a column with no reported cells.
pub fn dyn_geomeans(rows: &[DynRow]) -> Vec<Option<f64>> {
    (0..DYN_COLUMNS.len())
        .map(|c| {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|r| r.ipm[c])
                .filter(|v| *v > 0.0)
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
            }
        })
        .collect()
}

/// The dynamic-predictor headline: instructions per mispredicted branch,
/// profile feedback vs each online predictor, with a closing geomean row.
pub fn dyn_table(s: &SuiteRuns) -> Table {
    let mut headers = vec!["PROGRAM", "DATASET"];
    headers.extend(DYN_COLUMNS);
    let mut t = Table::new(&headers);
    let fmt_cell = |v: Option<f64>| match v {
        Some(v) => fmt_value(v),
        None => ML_TRAIN_MARKER.to_string(),
    };
    let rows = dyn_rows(s);
    for r in &rows {
        let mut cells = vec![r.program.clone(), r.dataset.clone()];
        cells.extend(r.ipm.iter().map(|&v| fmt_cell(v)));
        t.row_owned(cells);
    }
    let mut cells = vec!["GEOMEAN".to_string(), String::new()];
    cells.extend(dyn_geomeans(&rows).into_iter().map(|v| match v {
        Some(v) => fmt_value(v),
        None => "-".to_string(),
    }));
    t.row_owned(cells);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfharness::DiskCache;

    const QUICK: &[&str] = &["doduc", "spiff", "mfcom"];

    fn test_harness(jobs: usize) -> Harness {
        Harness::new(HarnessOptions {
            jobs: Some(jobs),
            disk_cache: DiskCache::Off,
            ..HarnessOptions::default()
        })
    }

    fn quick() -> &'static SuiteRuns {
        static RUNS: OnceLock<SuiteRuns> = OnceLock::new();
        // An isolated in-memory harness: tests must not read or write the
        // persistent cache under target/.
        RUNS.get_or_init(|| collect_subset_with(&test_harness(4), QUICK))
    }

    #[test]
    fn collect_subset_gathers_runs() {
        let s = quick();
        assert_eq!(s.workloads.len(), 3);
        let doduc = s.workload("doduc").unwrap();
        assert_eq!(doduc.runs.len(), 3);
        assert!(doduc.base_instrs_first > 0);
        assert!(doduc.opt_instrs_first <= doduc.base_instrs_first);
    }

    #[test]
    fn table1_reports_positive_dead_code() {
        let t = table1(quick());
        assert_eq!(t.len(), 3);
        assert!(t.render().contains('%'));
    }

    #[test]
    fn table2_covers_whole_suite() {
        let t = table2();
        let text = t.render();
        for name in ["spice2g6", "li", "compress", "fpppp"] {
            assert!(text.contains(name));
        }
        assert!(t.len() >= 30, "rows = {}", t.len());
    }

    #[test]
    fn fig_rows_have_expected_shape() {
        let s = quick();
        let f1 = fig1_rows(s, Group::CInteger);
        assert!(!f1.is_empty());
        for r in &f1 {
            assert!(r.without_calls >= r.with_calls, "{}", r.label);
        }
        let f2 = fig2_rows(s, false);
        for r in &f2 {
            assert!(
                r.self_ipb >= r.others_ipb - 1e-9,
                "{}: self must be the bound",
                r.label
            );
        }
        let f3 = fig3_rows(s, false);
        for r in &f3 {
            assert!(r.best.1 >= r.worst.1);
            assert!(r.best.1 <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn informal_tables_render() {
        let s = quick();
        assert!(!percent_taken_table(s).is_empty());
        assert!(!combination_table(s).is_empty());
        assert!(!heuristic_table(s).is_empty());
        assert!(!selects_table(s).is_empty());
        assert!(!percent_correct_table(s).is_empty());
    }

    #[test]
    fn heuristic_columns_are_explicit_and_stable() {
        // The `--json-metrics` contract keys cells by position in this
        // array; reordering or renaming is a breaking change.
        assert_eq!(
            HEURISTIC_COLUMNS,
            [
                "PROGRAM",
                "DATASET",
                "BRANCHES",
                "BTFN",
                "HEURISTIC",
                "PROOF",
                "ML",
                "PROFILE",
                "SELF",
                "2-BIT",
                "GSHARE"
            ]
        );
        let s = quick();
        for row in heuristic_rows(s) {
            assert_eq!(row.len(), HEURISTIC_COLUMNS.len());
        }
    }

    #[test]
    fn heuristic_table_aligns_seven_digit_site_counts() {
        // Regression: a BRANCHES cell past six digits must widen its
        // column instead of shearing every column to its right.
        let mut t = Table::new(&HEURISTIC_COLUMNS);
        t.row(&[
            "doduc", "tiny", "917", "29.7%", "30.1%", "28.0%", "24.2%", "13.0%", "9.9%", "11.4%",
            "10.2%",
        ]);
        t.row(&[
            "gcc",
            "insn-emit",
            "1436537",
            "12.3%",
            "11.9%",
            "12.3%",
            "(train)",
            "8.0%",
            "6.1%",
            "5.5%",
            "4.9%",
        ]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        let btfn = lines[0].find("BTFN").unwrap();
        for line in &lines[2..] {
            assert_eq!(&line[btfn - 2..btfn], "  ", "sheared columns:\n{rendered}");
            assert_ne!(&line[btfn..btfn + 1], " ", "sheared columns:\n{rendered}");
        }
    }

    #[test]
    fn heuristic_table_has_a_btfn_column() {
        let s = quick();
        let rendered = heuristic_table(s).render();
        assert!(rendered.contains("BTFN"), "{rendered}");
        assert!(rendered.contains("HEURISTIC"));
        assert!(rendered.contains("PROFILE"));
        // Every workload carries a distinct BTFN predictor with at least
        // one branch site classified.
        for w in &s.workloads {
            assert!(!w.btfn.is_empty(), "{}: empty BTFN predictor", w.name);
        }
    }

    #[test]
    fn verify_each_collection_matches_plain_collection() {
        let plain = collect_subset_with(&test_harness(2), &["spiff"]);
        set_verify_each(true);
        let checked = collect_subset_serial(&["spiff"]);
        set_verify_each(false);
        // The verifier must be invisible in the science: same optimized
        // instruction counts, same run statistics.
        let (a, b) = (&plain.workloads[0], &checked.workloads[0]);
        assert_eq!(a.opt_instrs_first, b.opt_instrs_first);
        assert_eq!(a.base_instrs_first, b.base_instrs_first);
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn charts_render() {
        let s = quick();
        let text = fig2_chart(s, false).render(40);
        assert!(text.contains("Figure 2b"));
        let text = fig1_chart(s, Group::FortranFp).render(40);
        assert!(text.contains("Figure 1a"));
    }

    /// The scheduler must be invisible in the science: the same subset
    /// collected serially (the seed's original loop), on one worker, and
    /// on eight workers yields byte-identical figure rows and tables.
    #[test]
    fn worker_count_does_not_change_results() {
        let serial = collect_subset_serial(QUICK);
        let one = collect_subset_with(&test_harness(1), QUICK);
        let eight = collect_subset_with(&test_harness(8), QUICK);

        for group in [Group::FortranFp, Group::CInteger] {
            assert_eq!(fig1_rows(&serial, group), fig1_rows(&one, group));
            assert_eq!(fig1_rows(&one, group), fig1_rows(&eight, group));
        }
        for spice_only in [true, false] {
            assert_eq!(fig2_rows(&serial, spice_only), fig2_rows(&one, spice_only));
            assert_eq!(fig2_rows(&one, spice_only), fig2_rows(&eight, spice_only));
            assert_eq!(fig3_rows(&one, spice_only), fig3_rows(&eight, spice_only));
        }
        assert_eq!(table1(&serial).render(), table1(&one).render());
        assert_eq!(table1(&one).render(), table1(&eight).render());
        assert_eq!(table3(&one).render(), table3(&eight).render());
        // The heuristic table now carries online-predictor columns, so
        // this also proves the serial reference zoo pass (reference
        // backend) matches the harness zoo observers (flat backend) and
        // that worker count never perturbs a predictor tally.
        assert_eq!(
            heuristic_table(&serial).render(),
            heuristic_table(&one).render()
        );
        assert_eq!(
            heuristic_table(&one).render(),
            heuristic_table(&eight).render()
        );
        assert_eq!(dyn_table(&serial).render(), dyn_table(&one).render());
        assert_eq!(dyn_table(&one).render(), dyn_table(&eight).render());
        assert_eq!(
            percent_taken_table(&serial).render(),
            percent_taken_table(&eight).render()
        );
    }

    /// Re-collecting through the same harness is served entirely from the
    /// memo table: no new executions, identical results.
    #[test]
    fn recollection_hits_the_cache() {
        let h = test_harness(4);
        let first = collect_subset_with(&h, QUICK);
        let computed_after_first = h.report().computed();
        let second = collect_subset_with(&h, QUICK);
        let report = h.report();
        assert_eq!(
            report.computed(),
            computed_after_first,
            "second collection must not execute anything"
        );
        assert!(report.cache.mem_hits > 0);
        assert_eq!(table1(&first).render(), table1(&second).render());
        assert_eq!(fig2_rows(&first, false), fig2_rows(&second, false));
    }

    #[test]
    fn dyn_rows_have_expected_shape() {
        let s = quick();
        let rows = dyn_rows(s);
        assert_eq!(
            rows.len(),
            s.workloads.iter().map(|w| w.runs.len()).sum::<usize>()
        );
        for r in &rows {
            assert_eq!(r.ipm.len(), DYN_COLUMNS.len(), "{}", r.program);
            for (c, v) in r.ipm.iter().enumerate() {
                match v {
                    Some(v) => assert!(*v > 0.0, "{}/{}: {}", r.program, r.dataset, c),
                    None => assert_eq!(DYN_COLUMNS[c], "ML", "only ML cells may be absent"),
                }
            }
        }
        let geo = dyn_geomeans(&rows);
        assert_eq!(geo.len(), DYN_COLUMNS.len());
        let rendered = dyn_table(s).render();
        assert!(rendered.contains("GEOMEAN"), "{rendered}");
        assert!(rendered.contains("PERCEPTRON"), "{rendered}");
    }

    #[test]
    fn zoo_reports_cover_every_dataset() {
        let s = quick();
        for w in &s.workloads {
            assert_eq!(w.zoo.len(), w.runs.len(), "{}", w.name);
            for (run, report) in w.runs.iter().zip(&w.zoo) {
                assert_eq!(report.entries.len(), mfdyn::full_zoo().len());
                let executed = run.stats.branches.total_executed();
                for (spec, counts) in &report.entries {
                    assert_eq!(
                        counts.executed, executed,
                        "{}/{} {spec}: every predictor sees every branch",
                        w.name, run.dataset
                    );
                }
            }
        }
    }

    fn mem_service() -> mfprofsvc::ProfileService {
        let mem: Arc<dyn mffault::Vfs> = Arc::new(mffault::MemVfs::new());
        mfprofsvc::ProfileService::open(
            mem,
            "profile-db",
            mfprofsvc::ServiceOptions {
                shards: 2,
                ..Default::default()
            },
        )
        .expect("in-memory service opens")
    }

    /// Recording a suite and immediately assessing reuse against the same
    /// build is a pure identity: every recorded site matches by
    /// fingerprint, nothing salvages, degrades, or orphans, and no site
    /// needs the static fallback tier.
    #[test]
    fn suite_skew_is_identity_on_unedited_programs() {
        let s = quick();
        let svc = mem_service();
        let (committed, degraded) = record_suite_svc(&svc, s).unwrap();
        assert!(committed > 0, "quick subset records something");
        assert_eq!(degraded, 0);
        let prior = svc.merged_totals().unwrap();
        let prior_fps = svc.merged_fingerprints_by_dataset().unwrap();
        let skew = suite_skew(&prior, &prior_fps, s).unwrap();
        assert_eq!(skew.workloads.len(), s.workloads.len());
        assert!(skew.is_identity(), "{}", skew.total);
        assert!((skew.total.reuse_fraction() - 1.0).abs() < 1e-12);
        for w in &skew.workloads {
            assert!(w.report.is_identity(), "{}: {}", w.name, w.report);
            assert!(w.fallback.is_empty(), "{}", w.name);
            assert!(w.op_count > 0, "{}", w.name);
            assert!(w.prior_datasets > 0, "{}", w.name);
        }
    }

    /// A database written by a fingerprint-free (legacy) writer still
    /// remaps — by id, flagged unverified — and an empty database skips
    /// every workload (the first-generation case).
    #[test]
    fn suite_skew_handles_legacy_and_empty_databases() {
        let s = quick();
        let svc = mem_service();
        let empty = suite_skew(
            &svc.merged_totals().unwrap(),
            &svc.merged_fingerprints_by_dataset().unwrap(),
            s,
        )
        .unwrap();
        assert!(empty.workloads.is_empty());
        assert!(empty.is_identity());

        for w in &s.workloads {
            for r in &w.runs {
                svc.enqueue(&format!("{}/{}", w.name, r.dataset), &r.stats.branches)
                    .unwrap();
            }
        }
        svc.flush().unwrap();
        let prior = svc.merged_totals().unwrap();
        let prior_fps = svc.merged_fingerprints_by_dataset().unwrap();
        assert!(prior_fps.is_empty(), "legacy writer stored no fingerprints");
        let skew = suite_skew(&prior, &prior_fps, s).unwrap();
        assert_eq!(skew.workloads.len(), s.workloads.len());
        assert!(!skew.is_identity(), "unverified reuse is not identity");
        assert_eq!(skew.total.unverified, skew.total.matched);
        assert_eq!(skew.total.orphaned, 0);
        // A legacy database stores no fingerprints, so sites that never
        // executed in any dataset cannot be structurally verified: exactly
        // those degrade to the static tier.
        let mut never_executed = 0usize;
        for w in &s.workloads {
            let program = suite()
                .into_iter()
                .find(|x| x.name == w.name)
                .unwrap()
                .compile()
                .unwrap();
            let mut fed = std::collections::BTreeSet::new();
            for r in &w.runs {
                for (id, _, _) in r.stats.branches.iter() {
                    fed.insert(id);
                }
            }
            never_executed += mfstale::site_fingerprints(&program)
                .keys()
                .filter(|id| !fed.contains(id))
                .count();
        }
        assert_eq!(skew.total.degraded, never_executed, "{}", skew.total);
        let listed: usize = skew.workloads.iter().map(|w| w.fallback.len()).sum();
        assert_eq!(
            listed, never_executed,
            "every degraded site gets a static fallback"
        );
    }

    #[test]
    fn coverage_table_renders() {
        let t = coverage_table(quick());
        // doduc has 3 datasets -> 3 worst-pair rows; the others in the
        // quick subset contribute theirs too.
        assert!(t.len() >= 3);
        assert!(t.render().contains("doduc"));
    }

    // The extension tables execute additional traced/inlined runs; they are
    // exercised every time `repro` or `cargo bench` runs in release, and can
    // be run here explicitly with `cargo test -p mfbench -- --ignored`.
    #[test]
    #[ignore = "runs several traced workloads; covered by the release harness"]
    fn dynamic_table_renders() {
        let t = dynamic_table_with(&test_harness(4));
        assert!(t.len() >= 5);
    }

    #[test]
    #[ignore = "runs inlined workload builds; covered by the release harness"]
    fn inlining_table_renders() {
        let t = inlining_table_with(&test_harness(4));
        assert!(t.len() >= 4);
    }

    #[test]
    #[ignore = "runs several traced workloads; covered by the release harness"]
    fn distribution_table_renders() {
        let h = test_harness(4);
        let t = distribution_table_with(&h);
        assert!(t.len() >= 4);
        // Its traced pairs are a subset of dynamic_table's; running that
        // next reuses every shared run.
        let before = h.report().computed();
        let _ = dynamic_table_with(&h);
        let after = h.report().computed();
        assert_eq!(after - before, 1, "only mfcom/c_metric is new");
    }
}
