//! Determinism contract for `dynbench`: the quick characterization run is
//! byte-identical across worker counts and across consecutive runs — the
//! online predictor zoo observes the exact same branch outcome stream no
//! matter how the harness schedules the jobs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dynbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dynbench"))
        .args(args)
        .output()
        .expect("dynbench runs")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mfbench-dynbench-{tag}-{}", std::process::id()))
}

#[test]
fn quick_run_is_jobs_invariant_and_repeatable() {
    let run = |jobs: &str, tag: &str| -> (Vec<u8>, String) {
        let path = temp_path(tag);
        let out = dynbench(&[
            "--quick",
            "--gate",
            "--no-cache",
            "--jobs",
            jobs,
            "--out",
            path.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&path).expect("results written");
        let _ = std::fs::remove_file(&path);
        (out.stdout, json)
    };

    let (stdout_serial, json_serial) = run("1", "j1");
    let (stdout_eight, json_eight) = run("8", "j8");
    let (stdout_again, json_again) = run("8", "j8-again");

    assert_eq!(
        stdout_serial, stdout_eight,
        "stdout must not depend on worker count"
    );
    assert_eq!(stdout_eight, stdout_again, "stdout must be repeatable");
    assert_eq!(
        json_serial, json_eight,
        "results file must not depend on worker count"
    );
    assert_eq!(json_eight, json_again, "results file must be repeatable");

    // The results are real, not vacuously equal: the headline holds every
    // advertised column and a padding experiment with multiple rows.
    assert!(
        json_serial.contains("\"PERCEPTRON\""),
        "json: {json_serial}"
    );
    assert!(json_serial.contains("\"padding\""), "json: {json_serial}");
    assert!(
        json_serial.contains("\"quick\": true"),
        "json: {json_serial}"
    );
}
