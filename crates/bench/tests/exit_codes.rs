//! Pins the exit-code contract shared by every driver binary in the
//! workspace: 0 = clean run, 1 = findings (the tool worked and found
//! something wrong), 2 = usage or I/O error (the tool could not do its
//! job). `mffuzz` pins the same contract in its own crate's CLI tests.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn mflint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mflint"))
        .args(args)
        .output()
        .expect("mflint runs")
}

fn dynbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dynbench"))
        .args(args)
        .output()
        .expect("dynbench runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mfbench-exit-{tag}-{}", std::process::id()))
}

#[test]
fn repro_help_and_small_section_exit_zero() {
    assert_eq!(repro(&["--help"]).status.code(), Some(0));
    // --table2 alone runs nothing, so it stays fast.
    assert_eq!(repro(&["--table2", "--no-cache"]).status.code(), Some(0));
}

#[test]
fn repro_usage_errors_exit_two() {
    for args in [
        &["--frobnicate"][..],
        &["--jobs", "0"][..],
        &["--jobs", "many"][..],
        &["--jobs"][..],
    ] {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "repro {args:?}: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains("usage") || stderr(&out).to_lowercase().contains("repro:"),
            "usage error should explain itself: {}",
            stderr(&out)
        );
    }
}

#[test]
fn repro_unwritable_json_metrics_exits_two() {
    // An I/O failure is a "could not do the job" error, not a finding:
    // exit 2, same as a bad flag.
    let out = repro(&[
        "--table2",
        "--no-cache",
        "--json-metrics",
        "/nonexistent-mfbench-dir/metrics.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("failed"), "stderr: {}", stderr(&out));
}

#[test]
fn repro_writable_json_metrics_exits_zero() {
    let path = temp_path("metrics.json");
    let out = repro(&[
        "--table2",
        "--no-cache",
        "--json-metrics",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let body = std::fs::read_to_string(&path).expect("metrics written");
    assert!(body.trim_start().starts_with('{'), "json body: {body}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn repro_profile_db_flag_values_are_validated() {
    for args in [
        &["--io-retries", "many"][..],
        &["--io-retries"][..],
        &["--fault-seed", "stormy"][..],
        &["--fault-seed"][..],
        &["--profile-db"][..],
        &["--shards", "0"][..],
        &["--shards", "lots"][..],
        &["--shards"][..],
        &["--compact-every", "0"][..],
        &["--compact-every", "sometimes"][..],
        &["--compact-every"][..],
    ] {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "repro {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn repro_profile_db_to_a_writable_dir_exits_zero() {
    let dir = temp_path("profdb-ok");
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "--table2",
        "--no-cache",
        "--profile-db",
        dir.to_str().unwrap(),
        "--shards",
        "4",
        "--compact-every",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("Profile database") && stdout.contains("persistent"),
        "summary section missing: {stdout}"
    );
    assert!(stdout.contains("shards"), "shard count missing: {stdout}");
    // The service really hit the disk: the manifest pins the shard
    // count, and no legacy single-log segment sits in the root.
    let manifest = std::fs::read(dir.join("MANIFEST")).expect("manifest written");
    assert_eq!(manifest.len(), 17, "manifest is the fixed 17-byte header");
    assert_eq!(&manifest[..4], b"MFPS");
    let root_segments = std::fs::read_dir(&dir)
        .expect("db dir created")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "mfdb")
        })
        .count();
    assert_eq!(root_segments, 0, "sharded db keeps no root segments");

    // A second open honors the manifest, not the flag: asking for a
    // different shard count is not an error, just ignored.
    let out = repro(&[
        "--table2",
        "--no-cache",
        "--profile-db",
        dir.to_str().unwrap(),
        "--shards",
        "9",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let reread = std::fs::read(dir.join("MANIFEST")).expect("manifest kept");
    assert_eq!(manifest, reread, "manifest must pin the original count");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_empty_profile_db_announces_first_generation() {
    // Opening a fresh (or still-empty) database must say so explicitly —
    // "no prior runs" is the expected first-generation state, not a
    // silent absence of the reuse section, and never a failure.
    let dir = temp_path("profdb-firstgen");
    let _ = std::fs::remove_dir_all(&dir);
    for _round in 0..2 {
        // The --table2 fast path records nothing, so the database stays
        // empty: both invocations are "first generation".
        let out = repro(&[
            "--table2",
            "--no-cache",
            "--profile-db",
            dir.to_str().unwrap(),
            "--shards",
            "2",
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            stdout.contains("Profile reuse (version skew)"),
            "reuse section missing: {stdout}"
        );
        assert!(
            stdout.contains("first generation (no prior runs)"),
            "first-generation line missing: {stdout}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_unusable_profile_db_exits_two_unless_faults_were_requested() {
    // A file where the db directory should be: the store degrades to
    // in-memory accumulation. Without fault injection that loses data
    // the user asked to keep — exit 2, with the warning surfaced.
    let blocker = temp_path("profdb-blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let db = blocker.join("db");

    let out = repro(&[
        "--table2",
        "--no-cache",
        "--profile-db",
        db.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("not persistent"),
        "stderr: {}",
        stderr(&out)
    );

    // Under --fault-seed, degradation is the experiment, not a failure.
    let out = repro(&[
        "--table2",
        "--no-cache",
        "--profile-db",
        db.to_str().unwrap(),
        "--fault-seed",
        "7",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn repro_dyn_is_a_section_flag_not_an_option() {
    // --dyn is advertised and parses as a section (sections never take
    // values); actually rendering it needs the full suite, which the
    // dynbench tests cover in their quick form.
    let help = repro(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&help.stdout).into_owned();
    assert!(stdout.contains("--dyn"), "usage must list --dyn: {stdout}");
    assert_eq!(repro(&["--dyn=now"]).status.code(), Some(2));
}

#[test]
fn dynbench_help_and_usage_errors() {
    let help = dynbench(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&help.stdout).into_owned();
    assert!(stdout.contains("usage: dynbench"), "help text: {stdout}");

    for args in [
        &["--frobnicate"][..],
        &["--jobs", "0"][..],
        &["--jobs", "many"][..],
        &["--jobs"][..],
        &["--gate-min-ipm", "-1"][..],
        &["--gate-min-ipm", "fast"][..],
        &["--gate-min-ipm"][..],
        &["--out"][..],
    ] {
        let out = dynbench(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "dynbench {args:?}: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains("dynbench:"),
            "usage error should explain itself: {}",
            stderr(&out)
        );
    }
}

#[test]
fn dynbench_unwritable_out_exits_two_before_collecting() {
    // The --out preflight makes an unwritable path fail fast (exit 2)
    // instead of after the whole suite ran.
    let out = dynbench(&["--out", "/nonexistent-mfbench-dir/dyn.json"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("cannot write"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn dynbench_gate_spans_the_contract() {
    // 0: a clean quick run passes its own gate.
    let out = dynbench(&["--quick", "--gate", "--no-cache"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("gate passed"),
        "stderr: {}",
        stderr(&out)
    );

    // 1: an unreachable geomean floor is a finding, not a usage error.
    let out = dynbench(&[
        "--quick",
        "--gate",
        "--gate-min-ipm",
        "1000000000",
        "--no-cache",
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("gate violation"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn mflint_json_metrics_exit_codes_and_shape() {
    let clean = temp_path("lint-metrics.mf");
    std::fs::write(&clean, "fn main(n: int) { emit(n); }").unwrap();

    // 2: the flag needs a value; an unwritable path is an I/O error.
    assert_eq!(
        mflint(&[clean.to_str().unwrap(), "--json-metrics"])
            .status
            .code(),
        Some(2)
    );
    let out = mflint(&[
        clean.to_str().unwrap(),
        "--json-metrics",
        "/nonexistent-mfbench-dir/lint.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));

    // 0: clean lint, metrics written with the stable keys.
    let path = temp_path("lint-metrics.json");
    let out = mflint(&[
        clean.to_str().unwrap(),
        "--json-metrics",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let body = std::fs::read_to_string(&path).expect("metrics written");
    for key in [
        "\"tool\": \"mflint\"",
        "\"programs_checked\": 1",
        "\"errors\": 0",
        "\"warnings\": 0",
        "\"diagnostics\": {}",
        "\"verify_digest\": \"0x",
    ] {
        assert!(body.contains(key), "missing {key} in: {body}");
    }

    // 1: findings still exit 1, and the metrics file carries the counts.
    let proved = temp_path("lint-metrics-proved.mf");
    std::fs::write(
        &proved,
        "fn main(n: int) { var x: int = 3; if (x < 10) { emit(1); } else { emit(0); } }",
    )
    .unwrap();
    let out = mflint(&[
        proved.to_str().unwrap(),
        "--deny-warnings",
        "--json-metrics",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let body = std::fs::read_to_string(&path).expect("metrics rewritten");
    assert!(
        body.contains("\"branch-always-taken\": 1"),
        "per-code counts missing: {body}"
    );

    let _ = std::fs::remove_file(clean);
    let _ = std::fs::remove_file(proved);
    let _ = std::fs::remove_file(path);
}

#[test]
fn mflint_exit_codes_span_the_contract() {
    // 0: clean source.
    let clean = temp_path("clean.mf");
    std::fs::write(&clean, "fn main(n: int) { emit(n); }").unwrap();
    assert_eq!(mflint(&[clean.to_str().unwrap()]).status.code(), Some(0));

    // 1: findings.
    let broken = temp_path("broken.mf");
    std::fs::write(&broken, "fn main( { emit(1); }").unwrap();
    assert_eq!(mflint(&[broken.to_str().unwrap()]).status.code(), Some(1));

    // 2: usage.
    assert_eq!(mflint(&["--frobnicate"]).status.code(), Some(2));
    assert_eq!(mflint(&[]).status.code(), Some(2));

    let _ = std::fs::remove_file(clean);
    let _ = std::fs::remove_file(broken);
}

fn vmbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vmbench"))
        .args(args)
        .output()
        .expect("vmbench runs")
}

#[test]
fn vmbench_usage_errors_exit_two() {
    for args in [
        &["--frobnicate"][..],
        &["--gate"][..],
        &["--gate", "fast"][..],
        &["--gate", "-1"][..],
        &["--gate-min"][..],
        &["--gate-min", "nope"][..],
        &["--gate-min", "0"][..],
        &["--workload", "no-such-workload"][..],
    ] {
        let out = vmbench(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "vmbench {args:?}: {}",
            stderr(&out)
        );
    }
    assert_eq!(vmbench(&["--help"]).status.code(), Some(0));
}

#[test]
fn vmbench_gate_min_is_a_per_workload_floor() {
    // One small workload, quick batches: enough to exercise the gate
    // logic without a full benchmark run.
    let out_path = temp_path("vmbench.json");
    let base = |extra: &[&str]| {
        let mut args = vec![
            "--quick",
            "--workload",
            "uncompress",
            "--out",
            out_path.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        vmbench(&args)
    };

    // An impossible per-workload floor fails with exit 1 and names the
    // offending workload, even when the geomean gate passes.
    let out = base(&["--gate", "0.001", "--gate-min", "1000"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("MIN GATE FAILED: uncompress"),
        "stderr: {}",
        stderr(&out)
    );

    // A trivially met floor passes, and the report carries the
    // mispredict-derived run-length column.
    let out = base(&["--gate-min", "0.001"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("min gate met"),
        "stderr: {}",
        stderr(&out)
    );
    let body = std::fs::read_to_string(&out_path).expect("report written");
    assert!(
        body.contains("\"instrs_per_mispredict\"") && body.contains("\"profile_mispredicts\""),
        "report misses run-length fields: {body}"
    );

    let _ = std::fs::remove_file(out_path);
}

fn chaos(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(args)
        .output()
        .expect("chaos runs")
}

#[test]
fn chaos_exit_codes_span_the_contract() {
    // 0: a tiny clean battery; the summary must account for its seeds.
    let out = chaos(&["--seeds", "2", "--rounds", "2"]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(text.contains("findings: 0"), "summary: {text}");

    // 2: usage errors.
    for args in [
        &["--frobnicate"][..],
        &["--seeds"][..],
        &["--seeds", "0"][..],
        &["--rounds", "none"][..],
        &["--jobs", "0"][..],
    ] {
        let out = chaos(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "chaos {args:?}: {}",
            stderr(&out)
        );
    }
    assert_eq!(chaos(&["--help"]).status.code(), Some(0));
}

#[test]
fn chaos_json_report_lands_on_disk() {
    let out_path = temp_path("chaos.json");
    let out = chaos(&[
        "--seeds",
        "2",
        "--rounds",
        "2",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let body = std::fs::read_to_string(&out_path).expect("report written");
    assert!(
        body.contains("\"outcomes\"") && body.contains("\"findings\": 0"),
        "report: {body}"
    );
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn mflint_warns_on_version_skewed_profiles() {
    // A profile whose fingerprint comments prove it was recorded against
    // an older program version: the site ids no longer line up, so the
    // lint must warn profile-version-skew (exit 0 without
    // --deny-warnings, exit 1 with).
    let v1 = "fn dead(z: int) -> int {\n\
              \x20 if (z > 100) { emit(z); return 1; }\n\
              \x20 return 0;\n\
              }\n\
              fn main(n: int) {\n\
              \x20 var t: int = 0;\n\
              \x20 for (var i: int = 0; i < n; i = i + 1) {\n\
              \x20   if (i < 3) { emit(i); t = t + 1; } else { emit(t); }\n\
              \x20 }\n\
              \x20 emit(t);\n\
              }\n";
    let v2 = v1.replace(
        "fn dead(z: int) -> int {\n\
         \x20 if (z > 100) { emit(z); return 1; }\n\
         \x20 return 0;\n\
         }\n",
        "",
    );
    assert_ne!(v1, v2);

    let p1 = mflang::compile(v1).expect("v1 compiles");
    let fps1 = mfstale::site_fingerprints(&p1);
    let mut profile = String::new();
    for (id, fp) in &fps1 {
        profile.push_str(&format!("# fp br{} {:x}\n", id.0, fp));
    }
    for id in fps1.keys() {
        profile.push_str(&format!("br{} 12 5\n", id.0));
    }

    let src = temp_path("skew-src.mf");
    let prof = temp_path("skew-prof.txt");
    std::fs::write(&src, v2).unwrap();
    std::fs::write(&prof, profile).unwrap();

    let out = mflint(&[src.to_str().unwrap(), "--profile", prof.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        text.contains("profile-version-skew"),
        "no skew warning: {text}"
    );

    let out = mflint(&[
        src.to_str().unwrap(),
        "--profile",
        prof.to_str().unwrap(),
        "--deny-warnings",
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(prof);
}
