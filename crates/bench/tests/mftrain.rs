//! End-to-end determinism of the `mftrain` pipeline: the training
//! feature matrix and the serialized model artifact must be
//! byte-identical across worker counts and across consecutive runs.
//! This is the repro contract behind the committed in-tree artifact —
//! CI retrains from scratch and compares bytes (`mftrain --check`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn mftrain(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mftrain"))
        .args(args)
        .output()
        .expect("mftrain runs")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mftrain-it-{tag}-{}", std::process::id()))
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn features_and_artifact_are_jobs_invariant() {
    let f1 = temp_path("feat-j1.tsv");
    let f8 = temp_path("feat-j8.tsv");
    let m1 = temp_path("model-j1.bin");
    let m8 = temp_path("model-j8.bin");

    for (jobs, feat, model) in [("1", &f1, &m1), ("8", &f8, &m8)] {
        let out = mftrain(&[
            "--jobs",
            jobs,
            "--features",
            feat.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    }

    let features_1 = std::fs::read(&f1).expect("features at --jobs 1");
    let features_8 = std::fs::read(&f8).expect("features at --jobs 8");
    assert_eq!(
        features_1, features_8,
        "feature matrix differs between --jobs 1 and --jobs 8"
    );

    let model_1 = std::fs::read(&m1).expect("artifact at --jobs 1");
    let model_8 = std::fs::read(&m8).expect("artifact at --jobs 8");
    assert_eq!(
        model_1, model_8,
        "model artifact differs between --jobs 1 and --jobs 8"
    );
    assert_eq!(&model_1[..4], b"MFPM", "artifact magic");

    for p in [f1, f8, m1, m8] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn consecutive_runs_reproduce_the_artifact() {
    let a = temp_path("model-run-a.bin");
    let b = temp_path("model-run-b.bin");
    for model in [&a, &b] {
        let out = mftrain(&["--jobs", "2", "--out", model.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    }
    let bytes_a = std::fs::read(&a).expect("first run artifact");
    let bytes_b = std::fs::read(&b).expect("second run artifact");
    assert_eq!(bytes_a, bytes_b, "consecutive mftrain runs drifted");

    // The committed in-tree artifact is what these runs reproduce.
    let committed =
        std::fs::read(mfpredict::COMMITTED_MODEL_PATH).expect("committed artifact exists");
    assert_eq!(
        bytes_a, committed,
        "retrained artifact differs from the committed model"
    );

    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}
