//! End-to-end tests of the `mflint` binary and the `repro --verify-each`
//! wiring: exit codes, rustc-style diagnostics, seeded-corruption
//! detection, and pass-defect attribution.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mflint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mflint"))
        .args(args)
        .output()
        .expect("mflint runs")
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mflint-it-{tag}-{}", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

const CLEAN: &str = "fn main(n: int) { var acc: int = 0; \
    for (var i: int = 0; i < n; i = i + 1) { \
    if (i % 3 == 0) { acc = acc + i; } } emit(acc); }";

#[test]
fn clean_source_exits_zero() {
    let path = temp_file("clean.mf", CLEAN);
    let out = mflint(&[path.to_str().unwrap()]);
    assert!(out.status.success(), "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("0 errors"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn clean_source_survives_pipeline_verification() {
    let path = temp_file("clean-pipeline.mf", CLEAN);
    let out = mflint(&[path.to_str().unwrap(), "--pipeline"]);
    assert!(out.status.success(), "stdout: {}", stdout(&out));
    let _ = std::fs::remove_file(path);
}

#[test]
fn uncompilable_source_is_a_finding() {
    let path = temp_file("broken.mf", "fn main( { emit(1); }");
    let out = mflint(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("error[compile]"), "{}", stdout(&out));
    let _ = std::fs::remove_file(path);
}

#[test]
fn seeded_corrupt_profile_is_caught() {
    // taken > executed on br0: impossible for a genuine recorded run, so
    // this profile must have been corrupted on disk.
    let path = temp_file("corrupt.prof", "br0 5 9\n");
    let out = mflint(&["--profile", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("error[corrupt-profile]"), "{text}");
    assert!(text.contains("taken count 9"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn profile_sites_are_checked_against_the_program() {
    let program = temp_file("sited.mf", CLEAN);
    let profile = temp_file("unknown-site.prof", "br0 10 4\nbr999 3 1\n");
    let out = mflint(&[
        program.to_str().unwrap(),
        "--profile",
        profile.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("br999"), "{}", stdout(&out));
    let _ = std::fs::remove_file(program);
    let _ = std::fs::remove_file(profile);
}

#[test]
fn valid_raw_profile_passes() {
    let program = temp_file("prof-ok.mf", CLEAN);
    let profile = temp_file("ok.prof", "# run 1\nbr0 10 4\nbr1 6 6\n");
    let out = mflint(&[
        program.to_str().unwrap(),
        "--profile",
        profile.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stdout: {}", stdout(&out));
    let _ = std::fs::remove_file(program);
    let _ = std::fs::remove_file(profile);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = mflint(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn nothing_to_lint_is_a_usage_error() {
    let out = mflint(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn use_before_def_diagnostics_surface_through_the_lint_path() {
    // mflang's lowering always initializes variables, so a use-before-def
    // must be seeded at the IR level; this drives the exact function the
    // binary calls per program and checks the rendered diagnostic.
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};

    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("f", 0);
    let uninit = f.new_reg();
    f.emit_value(uninit);
    f.ret(None);
    pb.add_function(f.finish());
    let program = pb.finish("f").expect("structurally valid");

    let diagnostics = mfcheck::verify_program(&program);
    let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.iter().any(|d| d.contains("error[use-before-def]")),
        "{rendered:?}"
    );
    assert!(!mfcheck::is_clean(&diagnostics));
}

#[test]
fn verify_each_names_an_intentionally_broken_pass() {
    // The machinery `repro --verify-each` runs per function: a pass that
    // corrupts the program is caught and reported by name.
    fn clobber_first_def(func: &mut trace_ir::Function) -> bool {
        let entry = &mut func.blocks[0];
        if let Some(pos) = entry.instrs.iter().position(|i| i.dst().is_some()) {
            entry.instrs.remove(pos);
            return true;
        }
        false
    }

    let mut program = mflang::compile(CLEAN).unwrap();
    let defect = mfopt::Pipeline::none()
        .rounds(1)
        .with_pass("clobber-first-def", clobber_first_def)
        .run_checked(&mut program)
        .unwrap_err();
    assert_eq!(defect.pass, "clobber-first-def");
    assert!(defect.to_string().contains("clobber-first-def"));
}

#[test]
fn repro_usage_mentions_verify_each() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("--verify-each"));
}

#[test]
fn repro_verify_each_accepts_the_flag() {
    // --table2 prints the inventory without collecting runs, so this
    // exercises flag parsing and harness configuration cheaply.
    let out = repro(&["--verify-each", "--no-cache", "--table2"]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("spice2g6"));
}
