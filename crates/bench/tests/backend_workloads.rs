//! Backend equivalence and counter invariants over the bundled workloads.
//!
//! Each workload's first dataset runs on both backends under a reduced
//! fuel budget. Workloads that fit the budget must produce identical
//! [`Run`]s and satisfy the counter invariants (`total_instrs` equals the
//! Pixie-weighted block counts; branch counters fold exactly from the
//! recorded trace). Workloads that exceed the budget must fault with the
//! *same* `OutOfFuel` on both backends — exercising the flat backend's
//! precise fuel replay on real programs, not just synthetic ones.

use trace_ir::{BranchId, Program};
use trace_vm::{Backend, Run, RuntimeError, Vm, VmConfig};

/// Small enough to keep debug-build test time in check, large enough that
/// most of the suite completes (the rest pins the out-of-fuel path).
const TEST_FUEL: u64 = 3_000_000;

fn assert_pixie_reconciles(program: &Program, run: &Run, what: &str) {
    let mut weighted = 0u64;
    for (fi, f) in program.functions.iter().enumerate() {
        let counts = &run.stats.pixie.blocks[fi];
        assert_eq!(counts.len(), f.blocks.len(), "{what}: pixie shape");
        for (bi, block) in f.blocks.iter().enumerate() {
            weighted += counts[bi] * (block.instrs.len() as u64 + 1);
        }
    }
    assert_eq!(
        run.stats.total_instrs, weighted,
        "{what}: total_instrs vs pixie-weighted block counts"
    );
}

fn assert_branches_match_trace(run: &Run, what: &str) {
    let mut by_id: std::collections::BTreeMap<BranchId, (u64, u64)> =
        std::collections::BTreeMap::new();
    for event in &run.branch_trace {
        let slot = by_id.entry(event.id).or_insert((0, 0));
        slot.0 += 1;
        if event.taken {
            slot.1 += 1;
        }
    }
    let recorded: Vec<(BranchId, u64, u64)> = run.stats.branches.iter().collect();
    let traced: Vec<(BranchId, u64, u64)> = by_id
        .into_iter()
        .map(|(id, (executed, taken))| (id, executed, taken))
        .collect();
    assert_eq!(recorded, traced, "{what}: branch counters vs trace");
}

#[test]
fn workloads_agree_and_reconcile_on_both_backends() {
    let mut completed = 0usize;
    let mut out_of_fuel = 0usize;
    for w in mfwork::suite() {
        let program = w.compile().expect("bundled workload compiles");
        let dataset = &w.datasets[0];
        let results = Backend::ALL.map(|backend| {
            let vm = Vm::with_config(
                &program,
                VmConfig {
                    backend,
                    fuel: TEST_FUEL,
                    record_branch_trace: true,
                    ..w.vm_config()
                },
            );
            vm.run(&dataset.inputs)
        });
        let [reference, flat] = results;
        let what = format!("{} / {}", w.name, dataset.name);
        match (reference, flat) {
            (Ok(reference), Ok(flat)) => {
                assert_eq!(reference, flat, "{what}: Run differs between backends");
                for run in [&reference, &flat] {
                    assert_pixie_reconciles(&program, run, &what);
                    assert_branches_match_trace(run, &what);
                }
                completed += 1;
            }
            (Err(reference), Err(flat)) => {
                assert_eq!(reference, flat, "{what}: errors differ between backends");
                assert!(
                    matches!(reference, RuntimeError::OutOfFuel { .. }),
                    "{what}: unexpected fault {reference:?}"
                );
                out_of_fuel += 1;
            }
            (reference, flat) => {
                panic!("{what}: backends disagree on success: {reference:?} vs {flat:?}")
            }
        }
    }
    // The budget is chosen so both paths stay covered; if the workload
    // suite changes shape these counts flag it.
    assert!(completed >= 5, "too few workloads completed: {completed}");
    assert!(out_of_fuel >= 1, "no workload exercised OutOfFuel");
}
