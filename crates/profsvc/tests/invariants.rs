//! Cross-shard invariants: under seeded fault storms the merged
//! snapshot equals the union of per-shard committed prefixes; the
//! on-disk bytes are identical whether the driving harness ran at
//! `--jobs 1` or `--jobs 8`; and snapshot reads never mutate a shard a
//! writer may be streaming into.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mffault::{FaultPlan, FaultVfs, MemVfs, RetryPolicy, Vfs};
use mfprofsvc::{shard_of, LockCfg, ProfileRecord, ProfileService, ServiceOptions};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

const DIR: &str = "/svc";
const SHARDS: u32 = 4;

fn counts(rows: &[(u32, u64, u64)]) -> BranchCounts {
    rows.iter()
        .map(|&(id, e, t)| (BranchId(id), e, t))
        .collect()
}

fn opts(steal: bool) -> ServiceOptions {
    ServiceOptions {
        shards: SHARDS,
        lock: LockCfg {
            attempts: 2,
            base: Duration::ZERO,
            steal,
        },
        retry: RetryPolicy::none(),
        ..ServiceOptions::default()
    }
}

/// One scripted submission: dataset name plus its `(branch, executed,
/// taken)` rows.
type Submission = (String, Vec<(u32, u64, u64)>);

/// The scripted submissions: branch ids chosen to spread across shards.
fn script() -> Vec<Submission> {
    (0..12u32)
        .map(|i| {
            let ds = format!("ds{}", i % 3);
            let rows = vec![(i, 10 + u64::from(i), 3), (i + 100, 2, 1)];
            (ds, rows)
        })
        .collect()
}

type Fold = BTreeMap<String, Vec<(u32, u64, u64)>>;

fn fold_of(records: &[ProfileRecord]) -> Fold {
    let mut fold: BTreeMap<String, BTreeMap<u32, (u64, u64)>> = BTreeMap::new();
    for r in records {
        let per = fold.entry(r.dataset.clone()).or_default();
        for &(id, e, t) in &r.entries {
            let slot = per.entry(id).or_insert((0, 0));
            slot.0 += e;
            slot.1 += t;
        }
    }
    fold.into_iter()
        .map(|(ds, m)| (ds, m.into_iter().map(|(id, (e, t))| (id, e, t)).collect()))
        .collect()
}

fn full_expected() -> Fold {
    let records: Vec<ProfileRecord> = script()
        .into_iter()
        .map(|(ds, rows)| ProfileRecord {
            dataset: ds,
            entries: rows,
            ..Default::default()
        })
        .collect();
    fold_of(&records)
}

#[test]
fn merged_snapshot_is_union_of_shard_prefixes_under_32_seed_storm() {
    for seed in 0..32u64 {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::from_seed(seed),
        ));
        let svc = ProfileService::open(
            fv.clone() as Arc<dyn Vfs>,
            DIR,
            ServiceOptions {
                retry: RetryPolicy::immediate(4),
                ..opts(false)
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: storm plan must not crash: {e}"));
        for (i, (ds, rows)) in script().iter().enumerate() {
            svc.enqueue(ds, &counts(rows)).unwrap();
            if i % 3 == 2 {
                svc.flush().unwrap();
            }
        }
        svc.flush().unwrap();
        // Degrade, never die: the live merged view is always complete.
        assert_eq!(
            svc.merged_totals().unwrap(),
            full_expected(),
            "seed {seed}: the in-memory view must survive any I/O weather"
        );
        if !svc.is_persistent() {
            assert!(
                !svc.warnings().is_empty(),
                "seed {seed}: degradation must be surfaced"
            );
        }
        drop(svc);

        // Reopen: whatever reached each shard is an exact prefix of its
        // batch sequence, and the merge is exactly their union.
        let recovered = ProfileService::open(mem as Arc<dyn Vfs>, DIR, opts(true)).unwrap();
        let mut union = Vec::new();
        for shard in 0..SHARDS {
            for batch in recovered.shard_batches(shard).unwrap() {
                for r in &batch {
                    for &(id, _, _) in &r.entries {
                        assert_eq!(
                            shard_of(id, SHARDS),
                            shard,
                            "seed {seed}: entry leaked into the wrong shard"
                        );
                    }
                }
                union.extend(batch);
            }
        }
        assert_eq!(
            recovered.merged_totals().unwrap(),
            fold_of(&union),
            "seed {seed}: merge is not the union of shard prefixes"
        );
    }
}

/// Replays the script as a harness would: run results computed at
/// `jobs` workers (positional determinism), then recorded in index
/// order. Returns every shard segment's bytes, keyed by path.
fn record_at_jobs(jobs: usize) -> BTreeMap<PathBuf, Vec<u8>> {
    let mem = Arc::new(MemVfs::new());
    let svc = ProfileService::open(mem.clone() as Arc<dyn Vfs>, DIR, opts(false)).unwrap();
    let script = script();
    let (results, _) = mfharness::run_indexed(jobs, script.len(), |i| script[i].clone());
    for (i, (ds, rows)) in results.iter().enumerate() {
        svc.enqueue(ds, &counts(rows)).unwrap();
        if i % 4 == 3 {
            svc.flush().unwrap();
        }
    }
    svc.flush().unwrap();
    svc.compact().unwrap();
    drop(svc);

    let mut bytes = BTreeMap::new();
    for shard in 0..SHARDS {
        let dir = PathBuf::from(DIR).join(format!("shard-{shard:03}"));
        for path in mem.read_dir(&dir).unwrap() {
            if path.extension().is_some_and(|e| e == "mfdb") {
                bytes.insert(path.clone(), mem.read(&path).unwrap());
            }
        }
    }
    bytes
}

#[test]
fn shard_bytes_are_identical_at_jobs_1_and_8() {
    let one = record_at_jobs(1);
    let eight = record_at_jobs(8);
    assert!(!one.is_empty());
    assert_eq!(
        one, eight,
        "worker count leaked into the on-disk shard bytes"
    );
}

#[test]
fn snapshot_reads_never_mutate_and_survive_a_streaming_writer() {
    let mem = Arc::new(MemVfs::new());
    let svc = ProfileService::open(mem.clone() as Arc<dyn Vfs>, DIR, opts(false)).unwrap();
    for (ds, rows) in script().iter().take(6) {
        svc.submit(ds, &counts(rows)).unwrap();
    }
    let committed = svc.merged_totals().unwrap();

    // Simulate a concurrent writer caught mid-append: a torn tail on
    // one shard, and a held LOCK on another.
    let shard0 = PathBuf::from(DIR).join("shard-000");
    let seg = mem
        .read_dir(&shard0)
        .unwrap()
        .into_iter()
        .find(|p| p.extension().is_some_and(|e| e == "mfdb"))
        .expect("shard 0 has a segment");
    mem.append(&seg, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    let torn_len = mem.read(&seg).unwrap().len();
    mem.create_new(&Path::new(DIR).join("shard-001/LOCK"), b"12345")
        .unwrap();

    // A snapshot reader sees exactly the committed prefix, does not
    // block on the writer's lock, and does not repair (mutate) the torn
    // tail — that is the writer's job, under the lock.
    let reader = ProfileService::open(mem.clone() as Arc<dyn Vfs>, DIR, opts(false)).unwrap();
    assert_eq!(reader.merged_totals().unwrap(), committed);
    assert_eq!(reader.merged_totals().unwrap(), committed, "stable reread");
    assert_eq!(
        mem.read(&seg).unwrap().len(),
        torn_len,
        "snapshot read mutated the shard"
    );

    // The writer's next commit to shard 0 repairs the torn tail first.
    mem.remove_file(&Path::new(DIR).join("shard-001/LOCK"))
        .unwrap();
    svc.submit("repair", &counts(&[(0, 1, 1)])).unwrap();
    let mut expected = committed.clone();
    let slot = expected.entry("repair".into()).or_default();
    slot.push((0, 1, 1));
    assert_eq!(svc.merged_totals().unwrap(), expected);
    assert!(
        mem.read(&seg).unwrap().len() < torn_len + 4,
        "torn garbage still ahead of the new commit"
    );
}
