//! The service crash battery: the profdb battery's contract, extended
//! per-shard and across crashes mid-group-commit.
//!
//! A fixed script of enqueue+flush batches runs once fault-free to
//! count mutating operations, then re-runs with a hard crash injected
//! at every operation index. After each crash the surviving filesystem
//! reopens with a clean accessor and every shard must hold an EXACT
//! prefix of its committed batch sequence — at batch granularity, so a
//! crash mid-group-commit can never surface a partial batch — bounded
//! below by the flushes whose acks were returned. A second script
//! starts from a legacy single-log database so the crash points also
//! land inside the migration protocol and a compaction.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use mffault::{FaultPlan, FaultVfs, MemVfs, RetryPolicy, Vfs};
use mfprofsvc::{shard_of, LockCfg, Persistence, ProfileRecord, ProfileService, ServiceOptions};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

const DIR: &str = "/svc";
const SHARDS: u32 = 3;

/// One scripted submission: dataset plus raw rows.
type Submission = (&'static str, &'static [(u32, u64, u64)]);

/// The script: five flushes (group commits), several submissions each,
/// including an empty-entry dataset marker (lands in shard 0).
const FLUSHES: &[&[Submission]] = &[
    &[("train", &[(0, 10, 4), (1, 8, 8)]), ("ref", &[(2, 20, 5)])],
    &[("train", &[(0, 6, 1)])],
    &[
        ("train", &[(1, 3, 0), (4, 12, 11)]),
        ("ref", &[(2, 4, 4), (5, 9, 2)]),
        ("extra", &[(7, 1, 1)]),
    ],
    &[("marker", &[]), ("train", &[(0, 2, 2)])],
    &[("ref", &[(9, 5, 3)]), ("train", &[(3, 2, 0)])],
];

fn counts(rows: &[(u32, u64, u64)]) -> BranchCounts {
    rows.iter()
        .map(|&(id, e, t)| (BranchId(id), e, t))
        .collect()
}

fn opts(steal: bool, retry: RetryPolicy) -> ServiceOptions {
    ServiceOptions {
        shards: SHARDS,
        lock: LockCfg {
            attempts: 2,
            base: Duration::ZERO,
            steal,
        },
        retry,
        ..ServiceOptions::default()
    }
}

/// The per-shard part of one submission, mirroring the service's
/// splitter: entries hash-partitioned, empty-entry records to shard 0.
fn part_of(sub: &Submission, shard: u32) -> Option<ProfileRecord> {
    let (ds, rows) = *sub;
    if rows.is_empty() {
        return (shard == 0).then(|| ProfileRecord {
            dataset: ds.to_string(),
            entries: vec![],
            ..Default::default()
        });
    }
    let entries: Vec<(u32, u64, u64)> = rows
        .iter()
        .copied()
        .filter(|&(id, _, _)| shard_of(id, SHARDS) == shard)
        .collect();
    (!entries.is_empty()).then(|| ProfileRecord {
        dataset: ds.to_string(),
        entries,
        ..Default::default()
    })
}

/// Shard `shard`'s expected committed-batch sequence after the first
/// `m` flushes: one batch per flush that sent the shard anything.
fn expected_batches(shard: u32, m: usize) -> Vec<Vec<ProfileRecord>> {
    FLUSHES[..m]
        .iter()
        .map(|subs| subs.iter().filter_map(|s| part_of(s, shard)).collect())
        .filter(|b: &Vec<ProfileRecord>| !b.is_empty())
        .collect()
}

type Fold = BTreeMap<String, Vec<(u32, u64, u64)>>;

fn fold_of(batches: &[Vec<ProfileRecord>]) -> Fold {
    let mut fold: BTreeMap<String, BTreeMap<u32, (u64, u64)>> = BTreeMap::new();
    for b in batches {
        for r in b {
            let per = fold.entry(r.dataset.clone()).or_default();
            for &(id, e, t) in &r.entries {
                let slot = per.entry(id).or_insert((0, 0));
                slot.0 += e;
                slot.1 += t;
            }
        }
    }
    fold.into_iter()
        .map(|(ds, m)| (ds, m.into_iter().map(|(id, (e, t))| (id, e, t)).collect()))
        .collect()
}

/// The merged fold of the first `m` flushes (all shards).
fn expected_merged(m: usize) -> Fold {
    let all: Vec<Vec<ProfileRecord>> = (0..SHARDS).flat_map(|s| expected_batches(s, m)).collect();
    fold_of(&all)
}

struct ScriptRun {
    /// The live service, when the script completed without a crash.
    svc: Option<ProfileService>,
    /// Flushes that returned with every acknowledgment `Committed`.
    acked: usize,
    /// Flushes attempted (includes one possibly in flight at a crash).
    issued: usize,
}

fn run_script(vfs: Arc<dyn Vfs>, retry: RetryPolicy, compact_after: Option<usize>) -> ScriptRun {
    let mut acked = 0;
    let mut issued = 0;
    let dead = |acked, issued| ScriptRun {
        svc: None,
        acked,
        issued,
    };
    let Ok(svc) = ProfileService::open(vfs, DIR, opts(false, retry)) else {
        return dead(acked, issued);
    };
    for (f, subs) in FLUSHES.iter().enumerate() {
        if compact_after == Some(f) && svc.compact().is_err() {
            return dead(acked, issued);
        }
        for (ds, rows) in subs.iter() {
            if svc.enqueue(ds, &counts(rows)).is_err() {
                return dead(acked, issued);
            }
        }
        issued += 1;
        match svc.flush() {
            Ok(acks) => {
                if acks.values().all(|&p| p == Persistence::Committed) {
                    acked += 1;
                }
            }
            Err(_) => return dead(acked, issued),
        }
    }
    ScriptRun {
        svc: Some(svc),
        acked,
        issued,
    }
}

fn reopen(mem: Arc<MemVfs>) -> ProfileService {
    ProfileService::open(mem as Arc<dyn Vfs>, DIR, opts(true, RetryPolicy::none()))
        .expect("clean reopen must not crash")
}

#[test]
fn every_crash_point_recovers_exact_per_shard_batch_prefixes() {
    // Profiling pass: count the script's mutating operations.
    let mem = Arc::new(MemVfs::new());
    let fv = Arc::new(FaultVfs::new(
        mem.clone() as Arc<dyn Vfs>,
        FaultPlan::none(),
    ));
    let clean = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::none(), None);
    assert_eq!(clean.acked, FLUSHES.len());
    drop(clean.svc);
    let svc = reopen(mem);
    assert_eq!(svc.merged_totals().unwrap(), expected_merged(FLUSHES.len()));
    for shard in 0..SHARDS {
        assert_eq!(
            svc.shard_batches(shard).unwrap(),
            expected_batches(shard, FLUSHES.len()),
            "shard {shard}: fault-free batches mismatch"
        );
    }
    drop(svc);
    let total_ops = fv.op_count();
    assert!(
        total_ops >= 40,
        "script too small to be an interesting battery: {total_ops} ops"
    );

    for k in 0..total_ops {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::crash_at(k),
        ));
        let crashed = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::none(), None);
        drop(crashed.svc);
        assert!(fv.crashed(), "op {k} of {total_ops} never fired");

        let recovered = reopen(mem);
        // Batch granularity: every shard holds an exact prefix of its
        // committed batch sequence — never a partial batch — and at
        // least everything from fully-acknowledged flushes.
        for shard in 0..SHARDS {
            let got = recovered.shard_batches(shard).unwrap();
            let full = expected_batches(shard, FLUSHES.len());
            assert!(
                got.len() <= full.len() && got[..] == full[..got.len()],
                "crash at op {k}: shard {shard} is not an exact batch prefix: {got:?}"
            );
            let floor = expected_batches(shard, crashed.acked).len();
            assert!(
                got.len() >= floor,
                "crash at op {k}: shard {shard} lost acknowledged batches \
                 ({} < {floor})",
                got.len()
            );
        }
        // And the merged snapshot is the union of those prefixes.
        let merged = recovered.merged_totals().unwrap();
        let unioned = fold_of(
            &(0..SHARDS)
                .flat_map(|s| recovered.shard_batches(s).unwrap())
                .collect::<Vec<_>>(),
        );
        assert_eq!(merged, unioned, "crash at op {k}: merge is not the union");
    }
}

/// Builds the legacy single-log database the migration script starts
/// from. Runs on the raw memory filesystem, so its operations are not
/// part of the crash-point enumeration.
fn prepopulate_legacy(mem: &Arc<MemVfs>) -> Fold {
    let mut store = mfprofdb::ProfileStore::open(
        mem.clone() as Arc<dyn Vfs>,
        DIR,
        mfprofdb::OpenOptions {
            lock: mfprofdb::LockMode::None,
            retry: RetryPolicy::none(),
        },
    )
    .unwrap();
    store
        .append("train", &counts(&[(0, 100, 40), (6, 30, 30)]))
        .unwrap();
    store.append("legacy", &counts(&[(8, 9, 9)])).unwrap();
    drop(store);
    let mut fold = Fold::new();
    fold.insert("train".into(), vec![(0, 100, 40), (6, 30, 30)]);
    fold.insert("legacy".into(), vec![(8, 9, 9)]);
    fold
}

/// The slice of the legacy fold the migration sends to `shard`, as
/// batches (for folding).
fn legacy_shard_records(legacy: &Fold, shard: u32) -> Vec<Vec<ProfileRecord>> {
    let mut records = Vec::new();
    for (ds, rows) in legacy {
        let entries: Vec<(u32, u64, u64)> = rows
            .iter()
            .copied()
            .filter(|&(id, _, _)| shard_of(id, SHARDS) == shard)
            .collect();
        if !entries.is_empty() || (rows.is_empty() && shard == 0) {
            records.push(ProfileRecord {
                dataset: ds.clone(),
                entries,
                ..Default::default()
            });
        }
    }
    vec![records]
}

fn merge_folds(a: &Fold, b: &Fold) -> Fold {
    let mut merged: BTreeMap<String, BTreeMap<u32, (u64, u64)>> = BTreeMap::new();
    for f in [a, b] {
        for (ds, rows) in f {
            let per = merged.entry(ds.clone()).or_default();
            for &(id, e, t) in rows {
                let slot = per.entry(id).or_insert((0, 0));
                slot.0 += e;
                slot.1 += t;
            }
        }
    }
    merged
        .into_iter()
        .map(|(ds, m)| (ds, m.into_iter().map(|(id, (e, t))| (id, e, t)).collect()))
        .collect()
}

#[test]
fn every_crash_point_during_migration_and_compaction_recovers_a_prefix() {
    const COMPACT_AFTER: usize = 3;
    // Profiling pass.
    let mem = Arc::new(MemVfs::new());
    let legacy_fold = prepopulate_legacy(&mem);
    let fv = Arc::new(FaultVfs::new(
        mem.clone() as Arc<dyn Vfs>,
        FaultPlan::none(),
    ));
    let clean = run_script(
        fv.clone() as Arc<dyn Vfs>,
        RetryPolicy::none(),
        Some(COMPACT_AFTER),
    );
    assert_eq!(clean.acked, FLUSHES.len());
    let svc = clean.svc.expect("fault-free script completes");
    assert_eq!(svc.shard_count(), SHARDS, "migration happened");
    assert_eq!(
        svc.merged_totals().unwrap(),
        merge_folds(&legacy_fold, &expected_merged(FLUSHES.len()))
    );
    drop(svc);
    let total_ops = fv.op_count();

    for k in 0..total_ops {
        let mem = Arc::new(MemVfs::new());
        let legacy_fold = prepopulate_legacy(&mem);
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::crash_at(k),
        ));
        let crashed = run_script(
            fv.clone() as Arc<dyn Vfs>,
            RetryPolicy::none(),
            Some(COMPACT_AFTER),
        );
        drop(crashed.svc);
        assert!(fv.crashed(), "op {k} of {total_ops} never fired");

        let recovered = reopen(mem);
        let got = recovered.merged_totals().unwrap();
        if recovered.shard_count() == 0 {
            // Crash before the migration's manifest commit: the legacy
            // database must be exactly intact.
            assert_eq!(
                got, legacy_fold,
                "crash at op {k}: legacy database damaged pre-commit"
            );
        } else {
            // Post-commit: each shard independently holds its slice of
            // the legacy fold plus an exact prefix of its flush parts
            // (fold granularity — a compaction may have folded
            // batches). A flush is atomic per shard, not across shards.
            let mut union = Vec::new();
            for shard in 0..SHARDS {
                let batches = recovered.shard_batches(shard).unwrap();
                union.extend(batches.iter().cloned());
                let shard_got = fold_of(&batches);
                let matched = (crashed.acked..=crashed.issued).find(|&m| {
                    let mut want = legacy_shard_records(&legacy_fold, shard);
                    want.extend(expected_batches(shard, m));
                    shard_got == fold_of(&want)
                });
                assert!(
                    matched.is_some(),
                    "crash at op {k}: shard {shard} is not legacy + a \
                     committed prefix (acked {} / issued {}): {shard_got:?}",
                    crashed.acked,
                    crashed.issued
                );
            }
            assert_eq!(got, fold_of(&union), "crash at op {k}: merge ≠ union");
        }
    }
}

/// CI's fixed-seed subset: the same per-shard prefix contract under one
/// seeded mixed-fault storm plus a spread of crash points, small enough
/// for a smoke job. The storm seed is fixed so failures reproduce.
#[test]
fn fixed_fault_seed_subset_per_shard() {
    let seed = 0xC1;
    let mem = Arc::new(MemVfs::new());
    let fv = Arc::new(FaultVfs::new(
        mem.clone() as Arc<dyn Vfs>,
        FaultPlan::from_seed(seed),
    ));
    let run = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::immediate(4), None);
    let svc = run.svc.expect("no crash points in a storm plan");
    assert_eq!(run.issued, FLUSHES.len());
    assert_eq!(
        svc.merged_totals().unwrap(),
        expected_merged(FLUSHES.len()),
        "the in-memory view must survive any I/O weather"
    );
    drop(svc);
    let recovered = reopen(mem);
    for shard in 0..SHARDS {
        let got = recovered.shard_batches(shard).unwrap();
        let full = expected_batches(shard, FLUSHES.len());
        assert!(
            got.len() <= full.len() && got[..] == full[..got.len()],
            "storm seed {seed}: shard {shard} is not an exact batch prefix"
        );
    }
    for k in [3, 11, 19, 27, 35] {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::crash_at(k),
        ));
        let crashed = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::none(), None);
        drop(crashed.svc);
        let recovered = reopen(mem);
        for shard in 0..SHARDS {
            let got = recovered.shard_batches(shard).unwrap();
            let full = expected_batches(shard, FLUSHES.len());
            assert!(
                got.len() <= full.len() && got[..] == full[..got.len()],
                "crash at op {k}: shard {shard} is not an exact batch prefix"
            );
        }
    }
}
