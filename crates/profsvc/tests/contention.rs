//! Lock-file contention fairness: two live writers hammering the same
//! shard must interleave under the deterministic backoff schedule, and
//! neither may starve or silently lose a commit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mffault::{MemVfs, RetryPolicy, Vfs};
use mfprofsvc::{LockCfg, ProfileService, ServiceOptions};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

const DIR: &str = "/svc";
const COMMITS_PER_WRITER: u64 = 24;

fn one(id: u32) -> BranchCounts {
    [(BranchId(id), 1u64, 1u64)].into_iter().collect()
}

fn opts() -> ServiceOptions {
    ServiceOptions {
        shards: 1, // force every commit onto the same shard lock
        lock: LockCfg {
            // Generous attempt budget: fairness means "eventually wins",
            // and the deterministic base*(attempt+1) schedule guarantees
            // the two writers' retry clocks drift apart instead of
            // colliding forever.
            attempts: 400,
            base: Duration::from_micros(50),
            steal: false,
        },
        retry: RetryPolicy::none(),
        ..ServiceOptions::default()
    }
}

#[test]
fn two_live_writers_on_one_shard_interleave_without_starvation() {
    let mem = Arc::new(MemVfs::new());
    // Two independent service handles over the same directory — the
    // same shape as two harness processes racing on one profile DB.
    let a = Arc::new(ProfileService::open(mem.clone() as Arc<dyn Vfs>, DIR, opts()).unwrap());
    let b = Arc::new(ProfileService::open(mem.clone() as Arc<dyn Vfs>, DIR, opts()).unwrap());

    // Progress clocks force genuine interleaving on a one-core box:
    // before commit i each writer waits (bounded) for its peer to have
    // finished commit i-1, so both threads are alive and racing for the
    // shard lock at every step instead of one draining its whole loop in
    // a single scheduler quantum.
    let progress = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);

    let spawn = |svc: Arc<ProfileService>, me: usize, ds: &'static str| {
        let progress = Arc::clone(&progress);
        thread::spawn(move || {
            let mut peer_seen = Vec::new();
            for i in 0..COMMITS_PER_WRITER {
                let deadline = std::time::Instant::now() + Duration::from_secs(10);
                while i > 0 && progress[1 - me].load(Ordering::SeqCst) < i {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "peer of {ds} starved: stuck below commit {i}"
                    );
                    thread::yield_now();
                }
                svc.submit(ds, &one(i as u32)).unwrap();
                progress[me].fetch_add(1, Ordering::SeqCst);
                peer_seen.push(progress[1 - me].load(Ordering::SeqCst));
            }
            peer_seen
        })
    };
    let ta = spawn(Arc::clone(&a), 0, "writer-a");
    let tb = spawn(Arc::clone(&b), 1, "writer-b");
    let seen_by_a = ta.join().expect("writer a panicked");
    let seen_by_b = tb.join().expect("writer b panicked");

    // Both writers finished all commits: no starvation, no lost updates.
    for (svc, ds) in [(&a, "writer-a"), (&b, "writer-b")] {
        let merged = svc.merged_totals().unwrap();
        let rows = merged.get(ds).unwrap_or_else(|| panic!("{ds} missing"));
        assert_eq!(rows.len() as u64, COMMITS_PER_WRITER, "{ds} lost commits");
        assert!(rows.iter().all(|&(_, e, t)| e == 1 && t == 1));
    }

    // Every commit must be durable: contention is retried under backoff,
    // never converted into a silent in-memory degrade.
    for (svc, ds) in [(&a, "a"), (&b, "b")] {
        assert!(svc.is_persistent(), "writer {ds} degraded under contention");
        let c = svc.counters();
        assert_eq!(c.store.degraded_appends, 0, "writer {ds} dropped to memory");
        assert_eq!(c.store.committed_appends, COMMITS_PER_WRITER);
    }

    // Interleaving: each writer observed the other make progress while it
    // was still running (not merely after it finished). On a one-core
    // box the backoff sleeps are what create these windows.
    let interleaved = |seen: &[u64]| {
        seen.iter()
            .take(seen.len() - 1) // ignore the final sample
            .any(|&p| p > 0 && p < COMMITS_PER_WRITER)
    };
    assert!(
        interleaved(&seen_by_a) || interleaved(&seen_by_b),
        "writers serialized completely: one finished before the other started"
    );

    // The merge agrees from both handles and from a fresh reader.
    let fresh = ProfileService::open(mem as Arc<dyn Vfs>, DIR, opts()).unwrap();
    assert_eq!(a.merged_totals().unwrap(), b.merged_totals().unwrap());
    assert_eq!(fresh.merged_totals().unwrap(), a.merged_totals().unwrap());
}

#[test]
fn contended_lock_with_tiny_budget_degrades_softly_and_recovers() {
    let mem = Arc::new(MemVfs::new());
    let svc = ProfileService::open(
        mem.clone() as Arc<dyn Vfs>,
        DIR,
        ServiceOptions {
            lock: LockCfg {
                attempts: 2,
                base: Duration::ZERO,
                steal: false,
            },
            shards: 1,
            ..opts()
        },
    )
    .unwrap();
    svc.submit("before", &one(1)).unwrap();

    // A live peer holds the shard lock for longer than our 2-attempt
    // budget tolerates. The commit must ack (in memory), not error, and
    // must NOT mark the store permanently degraded.
    let lock_path = std::path::Path::new(DIR).join("shard-000/LOCK");
    mem.create_new(&lock_path, std::process::id().to_string().as_bytes())
        .unwrap();
    svc.submit("during", &one(2)).unwrap();
    // Contention is NOT a shard failure: the service stays persistent
    // (non-sticky) and says why the batch was kept in memory.
    assert!(
        svc.is_persistent(),
        "live-peer contention must not be sticky"
    );
    assert!(
        svc.warnings().iter().any(|w| w.contains("contended")),
        "contention must be surfaced: {:?}",
        svc.warnings()
    );

    // Peer releases: the next commit goes straight back to disk and the
    // stranded record stays visible in the merged view.
    mem.remove_file(&lock_path).unwrap();
    svc.submit("after", &one(3)).unwrap();
    let merged = svc.merged_totals().unwrap();
    for ds in ["before", "during", "after"] {
        assert!(merged.contains_key(ds), "{ds} missing from merge");
    }
    let c = svc.counters();
    assert_eq!(c.store.degraded_appends, 1);
    assert!(c.store.committed_appends >= 2);
}
