//! One shard's append-only log writer.
//!
//! A shard directory is a plain `mfprofdb` segment directory — same
//! header, same frames, same salvage rules — so any shard can be opened
//! and inspected by the base store's tooling. What differs is the write
//! discipline: the service commits *batches* (one [`format`] batch frame
//! per chunk, one sync per commit) and holds the shard's `LOCK` file
//! only for the duration of a commit, so two live writers interleave
//! instead of one monopolizing the database for its whole lifetime.
//!
//! Opening a shard is a read-only scan: recovery repair (torn-tail
//! truncation, superseded-segment removal) is deferred to the first
//! commit, under the lock, so a pure reader never mutates the directory
//! a concurrent writer is streaming into.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mffault::{is_crash, RetryPolicy, Vfs};
use mfprofdb::format;
use mfprofdb::{DbError, Persistence, ProfileRecord, StoreCounters};

/// Name of the per-shard, per-commit writer lock file.
const LOCK_FILE: &str = "LOCK";

/// Target encoded size of one batch frame; commits larger than this are
/// split across several frames (still one sync). Well under the codec's
/// `MAX_PAYLOAD` so a frame is never rejected for size.
pub(crate) const MAX_FRAME_BYTES: usize = 4 << 20;

/// Per-commit lock acquisition policy.
#[derive(Clone, Copy, Debug)]
pub struct LockCfg {
    /// Retries after the first attempt.
    pub attempts: u32,
    /// Deterministic backoff: the sleep before retry `i` is
    /// `base * (i + 1)`.
    pub base: Duration,
    /// Remove any existing lock before acquiring — for crash-recovery
    /// paths where the previous holder is known dead (same contract as
    /// `mfprofdb::LockMode::Steal`). Never set with live peers.
    pub steal: bool,
}

impl Default for LockCfg {
    fn default() -> Self {
        LockCfg {
            attempts: 40,
            base: Duration::from_micros(250),
            steal: false,
        }
    }
}

/// How a per-commit lock acquisition ended.
enum LockOutcome {
    /// We hold the lock.
    Acquired,
    /// A live peer holds it; retry next commit (non-sticky).
    Contended(String),
    /// The lock path itself failed with a real I/O error (sticky).
    Broken(String),
}

#[derive(Debug)]
struct Persist {
    segment: PathBuf,
    generation: u64,
    /// Acknowledged byte length of the active segment as of our last
    /// look; re-validated (cheaply, via `Vfs::len`) under the lock
    /// before every commit, because another process may have appended.
    committed_len: u64,
}

/// One shard's log writer/reader. See the module docs for the protocol.
#[derive(Debug)]
pub struct ShardLog {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    retry: RetryPolicy,
    persist: Option<Persist>,
    /// True while this writer holds the on-disk LOCK file. The hot
    /// path keeps the lock across back-to-back group commits and drops
    /// it the moment the shard goes idle, so a burst pays the
    /// create/remove churn once instead of per commit.
    holding: bool,
    /// True when `committed_len` is known to match the file. Only
    /// trustworthy while `holding` — nobody else may append under our
    /// lock — and cleared on every release.
    tail_valid: bool,
    /// Sticky degrade reason; once set, commits stop reaching disk.
    dead: Option<String>,
    /// Records acknowledged `Degraded` — kept so reads still see them.
    memory: Vec<ProfileRecord>,
    warnings: Vec<String>,
    counters: StoreCounters,
}

impl Drop for ShardLog {
    /// Best-effort release of a lock still held at teardown (a burst
    /// interrupted by drop): plain unlink, no retries, errors ignored —
    /// a leftover lock file is stolen by the next writer's liveness
    /// check anyway.
    fn drop(&mut self) {
        if self.holding {
            let _ = self.vfs.remove_file(&self.dir.join(LOCK_FILE));
        }
    }
}

fn crash_check<T>(op: &'static str, result: io::Result<T>) -> Result<io::Result<T>, DbError> {
    match result {
        Err(e) if is_crash(&e) => Err(DbError { op, source: e }),
        other => Ok(other),
    }
}

/// Best-effort liveness check for a lock holder (see `mfprofdb`): where
/// `/proc` is absent the holder is assumed alive.
fn pid_alive(pid: u32) -> bool {
    if !Path::new("/proc").exists() {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

impl ShardLog {
    /// Opens the shard at `dir` with a read-only scan. Returns `Err`
    /// only on an injected crash; a missing or unreadable directory
    /// yields a degraded shard with a warning.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
        retry: RetryPolicy,
    ) -> Result<Self, DbError> {
        let mut log = ShardLog {
            vfs,
            dir: dir.into(),
            retry,
            persist: None,
            holding: false,
            tail_valid: false,
            dead: None,
            memory: Vec::new(),
            warnings: Vec::new(),
            counters: StoreCounters::default(),
        };
        let made = log.io("create shard directory", |vfs, dir| vfs.create_dir_all(dir))?;
        if let Err(e) = made {
            log.degrade(format!(
                "shard directory {} unavailable ({e}); accumulating in memory only",
                log.dir.display()
            ));
            return Ok(log);
        }
        log.rescan(false)?;
        Ok(log)
    }

    // -- accessors -------------------------------------------------------

    /// False once this shard fell back to in-memory accumulation.
    pub fn is_persistent(&self) -> bool {
        self.dead.is_none()
    }

    /// Everything that went wrong so far, in order.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Lifetime counters.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records acknowledged `Degraded` (memory only), in commit order.
    pub fn memory_records(&self) -> &[ProfileRecord] {
        &self.memory
    }

    /// True when the open-time scan found at least one intact segment.
    pub(crate) fn has_segments(&self) -> bool {
        self.persist.is_some()
    }

    /// Push this shard into sticky in-memory degradation (the service
    /// uses this when a migration fails around it).
    pub(crate) fn force_degrade(&mut self, reason: String) {
        self.degrade(reason);
    }

    /// Paths of the segment files currently present, best-effort (no
    /// retry, no crash classification — cleanup use only).
    pub(crate) fn segment_files(&self) -> Vec<PathBuf> {
        let Ok(entries) = self.vfs.read_dir(&self.dir) else {
            return Vec::new();
        };
        entries
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".mfdb"))
            })
            .collect()
    }

    // -- the read path ---------------------------------------------------

    /// The committed batches currently on disk, one `Vec` per frame, in
    /// log order — the exact granularity at which a torn tail can cut.
    /// Reads a point-in-time copy of each segment and never mutates the
    /// directory, so it is safe alongside a live writer: a torn tail is
    /// salvaged away in memory, yielding always an exact committed
    /// prefix and never a partial batch.
    pub fn read_batches(&mut self) -> Result<Vec<Vec<ProfileRecord>>, DbError> {
        let mut batches = Vec::new();
        self.visit_batches(|b| batches.push(b))?;
        Ok(batches)
    }

    /// Visitor form of [`ShardLog::read_batches`] — folds a
    /// multi-gigabyte shard without materializing every record at once.
    pub fn visit_batches(
        &mut self,
        mut visit: impl FnMut(Vec<ProfileRecord>),
    ) -> Result<(), DbError> {
        for (_, path, bytes) in self.scan_segments()? {
            let _ = path;
            format::walk_batches(&bytes[format::HEADER_LEN..], &mut visit);
        }
        Ok(())
    }

    // -- the write path --------------------------------------------------

    /// Commits `records` as one atomic batch: acquire the shard lock,
    /// validate (and if necessary repair) the tail, append the batch as
    /// one-or-more batch frames, sync ONCE, release the lock. The sync
    /// acknowledgment is the commit point for the whole batch. Returns
    /// where the batch landed; `Err` only on an injected crash.
    pub fn commit_batch(
        &mut self,
        records: &[ProfileRecord],
        lock: &LockCfg,
    ) -> Result<Persistence, DbError> {
        self.commit_batch_keep(records, lock, false)
    }

    /// [`ShardLog::commit_batch`], but with `keep` the lock stays held
    /// after the commit: the next commit from this writer skips the
    /// lock-file churn and the tail re-validation (nobody else may
    /// append under our lock). The hot submit path uses this during
    /// bursts and calls [`ShardLog::release_if_held`] once the shard
    /// goes idle, so a waiting peer is never starved for longer than
    /// one burst.
    pub fn commit_batch_keep(
        &mut self,
        records: &[ProfileRecord],
        lock: &LockCfg,
        keep: bool,
    ) -> Result<Persistence, DbError> {
        if records.is_empty() {
            return Ok(Persistence::Committed);
        }
        if self.dead.is_some() {
            return self.ack_degraded(records);
        }
        if !self.holding {
            match self.acquire_lock(lock)? {
                LockOutcome::Acquired => {
                    self.holding = true;
                    self.tail_valid = false;
                }
                LockOutcome::Contended(reason) => {
                    // Contention by a live peer is not a shard failure:
                    // this batch stays in memory, the next one retries
                    // the lock.
                    self.warnings.push(format!(
                        "shard {} lock contended ({reason}); batch kept in memory",
                        self.dir.display()
                    ));
                    return self.ack_degraded(records);
                }
                LockOutcome::Broken(reason) => {
                    // A real I/O failure on the lock path: sticky, like
                    // any other I/O failure, so what reaches disk stays
                    // an exact prefix of what was acknowledged durable.
                    self.degrade(format!(
                        "shard {} lock unusable ({reason}); \
                         accumulating in memory from here on",
                        self.dir.display()
                    ));
                    return self.ack_degraded(records);
                }
            }
        }
        let result = self.commit_locked(records);
        if !keep {
            self.release_if_held()?;
        }
        result
    }

    /// Releases the shard lock if this writer still holds it (the end
    /// of a hot burst). A failed release is sticky degradation, exactly
    /// as on the per-commit path. `Err` only on an injected crash.
    pub fn release_if_held(&mut self) -> Result<(), DbError> {
        if !self.holding {
            return Ok(());
        }
        self.holding = false;
        self.tail_valid = false;
        let released = self.release_lock()?;
        if let Err(e) = released {
            self.degrade(format!(
                "could not release shard lock in {} ({e}); degrading",
                self.dir.display()
            ));
        }
        Ok(())
    }

    fn ack_degraded(&mut self, records: &[ProfileRecord]) -> Result<Persistence, DbError> {
        self.counters.degraded_appends += records.len() as u64;
        self.memory.extend(records.iter().cloned());
        Ok(Persistence::Degraded)
    }

    fn commit_locked(&mut self, records: &[ProfileRecord]) -> Result<Persistence, DbError> {
        self.ensure_tail()?;
        let Some(persist) = &self.persist else {
            return self.ack_degraded(records);
        };
        let segment = persist.segment.clone();
        let committed_len = persist.committed_len;

        // Pack the batch greedily into frames of ~MAX_FRAME_BYTES; one
        // submission's records never split across a frame boundary, so
        // salvage granularity stays at whole-chunk level.
        let mut payload = Vec::new();
        let mut chunk: Vec<ProfileRecord> = Vec::new();
        let mut chunk_bytes = 0usize;
        for r in records {
            let len = format::record_body_len(r);
            if !chunk.is_empty() && chunk_bytes + len > MAX_FRAME_BYTES {
                payload.extend_from_slice(&format::encode_batch_frame(&chunk));
                chunk.clear();
                chunk_bytes = 0;
            }
            chunk.push(r.clone());
            chunk_bytes += len;
        }
        if !chunk.is_empty() {
            payload.extend_from_slice(&format::encode_batch_frame(&chunk));
        }

        let appended = self.io("append batch", |vfs, _| vfs.append(&segment, &payload))?;

        // Seeded defect: acknowledge the batch as durable immediately
        // after the append, before the sync confirms it — the classic
        // group-commit bug this service's oracle exists to convict.
        #[cfg(feature = "seeded-defects")]
        let ack_early = mfdefect::active("profsvc-batch-ack-early") && appended.is_ok();
        #[cfg(not(feature = "seeded-defects"))]
        let ack_early = false;

        let synced = match appended {
            Ok(()) => self.io("sync batch", |vfs, _| vfs.sync(&segment))?,
            Err(e) => Err(e),
        };
        match synced {
            Ok(()) => {
                let persist = self.persist.as_mut().expect("still persistent");
                persist.committed_len += payload.len() as u64;
                self.counters.committed_appends += records.len() as u64;
                Ok(Persistence::Committed)
            }
            Err(e) => {
                // Repair: cut back to the last acknowledged byte so the
                // partial batch cannot linger ahead of future commits.
                let repaired = self.io("truncate torn batch", |vfs, _| {
                    vfs.truncate(&segment, committed_len)
                })?;
                if ack_early {
                    // (defect) the caller was already told "committed";
                    // the truncation above just destroyed that data.
                    self.counters.committed_appends += records.len() as u64;
                    return Ok(Persistence::Committed);
                }
                let detail = match repaired {
                    Ok(()) => String::new(),
                    Err(re) => format!(" (tail repair also failed: {re})"),
                };
                self.degrade(format!(
                    "batch append to {} failed ({e}){detail}; \
                     accumulating in memory from here on",
                    segment.display()
                ));
                self.ack_degraded(records)
            }
        }
    }

    /// Folds everything (disk + memory) into one frame per dataset in a
    /// fresh superseding segment — same tmp → sync → rename protocol as
    /// the base store. Holds the shard lock across the publish.
    pub fn compact(&mut self, lock: &LockCfg) -> Result<(), DbError> {
        if self.dead.is_some() {
            return Ok(());
        }
        if self.holding {
            // Mid-burst compaction stays under the already-held lock.
            return self.compact_locked();
        }
        match self.acquire_lock(lock)? {
            LockOutcome::Acquired => {
                self.holding = true;
                self.tail_valid = false;
            }
            LockOutcome::Contended(reason) | LockOutcome::Broken(reason) => {
                // Compaction is optional work: never degrade for it.
                self.warnings.push(format!(
                    "shard {} lock unavailable ({reason}); compaction skipped",
                    self.dir.display()
                ));
                return Ok(());
            }
        }
        let result = self.compact_locked();
        // Compaction is optional: a failed lock release is surfaced by
        // the next commit's acquire, not a degrade here.
        self.holding = false;
        self.tail_valid = false;
        let _ = self.release_lock()?;
        result
    }

    fn compact_locked(&mut self) -> Result<(), DbError> {
        self.ensure_tail()?;
        let Some(persist) = &self.persist else {
            return Ok(());
        };
        let generation = persist.generation;
        let segment = persist.segment.clone();
        let new_gen = generation + 1;
        let final_path = segment_path(&self.dir, new_gen);
        let tmp = self.dir.join(format!("compact-{new_gen}.tmp"));

        let mut fold = crate::RawFold::new();
        let mut fps = crate::FpFoldByDataset::new();
        let bytes = match self.io("read segment", |vfs, _| vfs.read(&segment))? {
            Ok(b) => b,
            Err(e) => {
                self.warnings
                    .push(format!("compaction read failed ({e}); skipped"));
                return Ok(());
            }
        };
        format::walk_batches(&bytes[format::HEADER_LEN..], |batch| {
            for r in batch {
                crate::fold_record(&mut fold, &r);
                crate::fold_fps_by_dataset(&mut fps, &r);
            }
        });
        let folded = crate::fold_to_records(&fold, &fps);

        let mut buf = Vec::new();
        for chunk in crate::chunk_records(&folded) {
            buf.extend_from_slice(&format::encode_batch_frame(&chunk));
        }
        let header = format::encode_header(&format::SegmentHeader {
            generation: new_gen,
            folds_through: generation,
            base_len: (format::HEADER_LEN + buf.len()) as u64,
        });
        let mut segment_bytes = header;
        segment_bytes.extend_from_slice(&buf);
        let total_len = segment_bytes.len() as u64;

        let staged = self.io("write compaction", |vfs, _| vfs.write(&tmp, &segment_bytes))?;
        let staged = match staged {
            Ok(()) => self.io("sync compaction", |vfs, _| vfs.sync(&tmp))?,
            Err(e) => Err(e),
        };
        let renamed = match staged {
            Ok(()) => self.io("publish compaction", |vfs, _| vfs.rename(&tmp, &final_path))?,
            Err(e) => Err(e),
        };
        match renamed {
            Ok(()) => {
                let _ = self.io("remove superseded segment", |vfs, _| {
                    vfs.remove_file(&segment)
                })?;
                self.persist = Some(Persist {
                    segment: final_path,
                    generation: new_gen,
                    committed_len: total_len,
                });
                self.counters.compactions += 1;
                Ok(())
            }
            Err(e) => {
                let _ = self.io("remove staged compaction", |vfs, _| vfs.remove_file(&tmp))?;
                if self.vfs.exists(&final_path) {
                    let removed = self.io("remove torn compaction", |vfs, _| {
                        vfs.remove_file(&final_path)
                    })?;
                    if removed.is_err() {
                        self.degrade(format!(
                            "compaction to {} tore and could not be cleaned up; \
                             accumulating in memory from here on",
                            final_path.display()
                        ));
                        return Ok(());
                    }
                }
                self.warnings.push(format!(
                    "compaction failed ({e}); continuing on the current segment"
                ));
                Ok(())
            }
        }
    }

    // -- internals -------------------------------------------------------

    fn io<T>(
        &mut self,
        op: &'static str,
        f: impl FnMut(&dyn Vfs, &Path) -> io::Result<T>,
    ) -> Result<io::Result<T>, DbError> {
        let mut f = f;
        let vfs = Arc::clone(&self.vfs);
        let (result, used) = mffault::retry(self.retry, || f(vfs.as_ref(), &self.dir));
        self.counters.io_retries += u64::from(used);
        crash_check(op, result)
    }

    fn degrade(&mut self, warning: String) {
        self.persist = None;
        self.dead = Some(warning.clone());
        self.warnings.push(warning);
    }

    /// Acquire the per-commit lock. `Err` only on an injected crash.
    fn acquire_lock(&mut self, lock: &LockCfg) -> Result<LockOutcome, DbError> {
        let lock_path = self.dir.join(LOCK_FILE);
        let content = std::process::id().to_string().into_bytes();
        if lock.steal {
            let _ = self.io("steal shard lock", |vfs, _| vfs.remove_file(&lock_path))?;
        }
        for attempt in 0..=lock.attempts {
            let created = self.io("acquire shard lock", |vfs, _| {
                vfs.create_new(&lock_path, &content)
            })?;
            match created {
                Ok(()) => return Ok(LockOutcome::Acquired),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if attempt < lock.attempts && !lock.base.is_zero() {
                        std::thread::sleep(lock.base.saturating_mul(attempt + 1));
                    }
                }
                Err(e) => {
                    return Ok(LockOutcome::Broken(format!("lock create failed: {e}")));
                }
            }
        }
        // Backoff budget exhausted: a live holder wins this round; a
        // dead (or torn, unparseable) one forfeits its lock.
        let holder = self
            .io("read shard lock", |vfs, _| vfs.read(&lock_path))?
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|s| s.trim().parse::<u32>().ok());
        let stale = match holder {
            Some(pid) => pid != std::process::id() && !pid_alive(pid),
            None => true,
        };
        if !stale {
            return Ok(LockOutcome::Contended(format!(
                "held by live writer (pid {holder:?})"
            )));
        }
        self.warnings.push(format!(
            "shard lock {} was held by a dead writer; stealing it",
            lock_path.display()
        ));
        let _ = self.io("steal stale shard lock", |vfs, _| {
            vfs.remove_file(&lock_path)
        })?;
        let created = self.io("acquire stolen shard lock", |vfs, _| {
            vfs.create_new(&lock_path, &content)
        })?;
        Ok(match created {
            Ok(()) => LockOutcome::Acquired,
            // Someone else (re)took it between our steal and create: a
            // live race, not a broken disk.
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                LockOutcome::Contended(format!("steal raced: {e}"))
            }
            Err(e) => LockOutcome::Broken(format!("steal failed: {e}")),
        })
    }

    fn release_lock(&mut self) -> Result<io::Result<()>, DbError> {
        let lock_path = self.dir.join(LOCK_FILE);
        self.io("release shard lock", |vfs, _| vfs.remove_file(&lock_path))
    }

    /// Under the lock: make sure the active segment exists and our
    /// cached `committed_len` matches the file — the cheap `Vfs::len`
    /// path when nothing moved, a full rescan-with-repair otherwise
    /// (another writer appended, or a torn tail from a crashed one).
    fn ensure_tail(&mut self) -> Result<(), DbError> {
        if let Some(persist) = &self.persist {
            // Under a continuously-held lock nobody else may have
            // appended since the last commit validated the tail.
            if self.holding && self.tail_valid {
                return Ok(());
            }
            let segment = persist.segment.clone();
            let cached = persist.committed_len;
            if let Ok(actual) = self.io("stat segment", |vfs, _| vfs.len(&segment))? {
                if actual == cached {
                    self.tail_valid = true;
                    return Ok(());
                }
            }
        }
        self.rescan(true)?;
        self.tail_valid = self.persist.is_some();
        Ok(())
    }

    /// Scans the shard's segments; with `repair`, truncates torn tails,
    /// removes superseded/torn segments, and creates the first segment
    /// of a fresh shard. `repair` must only be used under the lock.
    fn rescan(&mut self, repair: bool) -> Result<(), DbError> {
        if repair {
            let leftovers = self.io("scan shard directory", |vfs, dir| vfs.read_dir(dir))?;
            if let Ok(entries) = leftovers {
                for path in entries {
                    let is_tmp = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("compact-") && n.ends_with(".tmp"));
                    if is_tmp {
                        let _ = self.io("remove stale compaction tmp", |vfs, _| {
                            vfs.remove_file(&path)
                        })?;
                    }
                }
            }
        }
        let parsed = self.scan_segments()?;
        let max_gen = parsed.iter().map(|(h, _, _)| h.generation).max();
        let mut active: Option<Persist> = None;
        for (header, path, bytes) in &parsed {
            let valid_body = format::walk_batches(&bytes[format::HEADER_LEN..], |_| {});
            let valid_len = (format::HEADER_LEN + valid_body) as u64;
            if valid_len < bytes.len() as u64 && repair {
                let dropped = bytes.len() as u64 - valid_len;
                self.counters.truncated_bytes += dropped;
                self.warnings.push(format!(
                    "salvaged {} of {} bytes from {} (torn tail of {dropped} bytes truncated)",
                    valid_len,
                    bytes.len(),
                    path.display()
                ));
                let truncated =
                    self.io("truncate torn tail", |vfs, _| vfs.truncate(path, valid_len))?;
                if truncated.is_err() {
                    self.degrade(format!(
                        "could not truncate torn tail of {}; accumulating in memory only",
                        path.display()
                    ));
                    return Ok(());
                }
            }
            active = Some(Persist {
                segment: path.clone(),
                generation: header.generation,
                committed_len: valid_len,
            });
        }
        if active.is_none() && repair {
            let generation = max_gen.unwrap_or(0) + 1;
            let path = segment_path(&self.dir, generation);
            let header = format::encode_header(&format::SegmentHeader {
                generation,
                folds_through: 0,
                base_len: format::HEADER_LEN as u64,
            });
            let wrote = self.io("create segment", |vfs, _| vfs.write(&path, &header))?;
            let wrote = match wrote {
                Ok(()) => self.io("sync new segment", |vfs, _| vfs.sync(&path))?,
                Err(e) => Err(e),
            };
            match wrote {
                Ok(()) => {
                    active = Some(Persist {
                        segment: path,
                        generation,
                        committed_len: format::HEADER_LEN as u64,
                    });
                }
                Err(e) => {
                    self.degrade(format!(
                        "could not create segment {} ({e}); accumulating in memory only",
                        path.display()
                    ));
                    return Ok(());
                }
            }
        }
        self.persist = active;
        Ok(())
    }

    /// Reads every parseable, non-superseded segment: `(header, path,
    /// bytes)` sorted by generation. Torn creations (file shorter than
    /// its own `base_len`) and superseded generations are skipped (and
    /// removed when a writer rescans under the lock — callers of the
    /// read-only path never mutate).
    fn scan_segments(&mut self) -> Result<Vec<(format::SegmentHeader, PathBuf, Vec<u8>)>, DbError> {
        let entries = self.io("scan segments", |vfs, dir| vfs.read_dir(dir))?;
        let entries = match entries {
            Ok(e) => e,
            Err(_) => return Ok(Vec::new()),
        };
        let mut parsed = Vec::new();
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".mfdb"))
                .and_then(|g| g.parse::<u64>().ok())
                .is_none()
            {
                continue;
            }
            let bytes = match self.io("read segment", |vfs, _| vfs.read(&path))? {
                Ok(b) => b,
                Err(_) => continue,
            };
            match format::decode_header(&bytes) {
                Some(h) if bytes.len() as u64 >= h.base_len => parsed.push((h, path, bytes)),
                _ => continue,
            }
        }
        let folds_through = parsed.iter().map(|(h, _, _)| h.folds_through).max();
        if let Some(f) = folds_through {
            parsed.retain(|(h, _, _)| h.generation > f);
        }
        parsed.sort_by_key(|(h, _, _)| h.generation);
        Ok(parsed)
    }
}

pub(crate) fn segment_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("seg-{generation:08}.mfdb"))
}
