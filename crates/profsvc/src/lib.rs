#![warn(missing_docs)]

//! # mfprofsvc — the sharded multi-writer profile service
//!
//! [`mfprofdb`] made one writer crash-safe; this crate makes *many*
//! writers fast without giving that up. The segment log is
//! hash-partitioned by branch id into N independent shard logs
//! (`shard-000/ … shard-NNN/`, each a plain `mfprofdb` segment
//! directory), so writers touching different shards never contend.
//! Within a shard, concurrent submissions coalesce into **group
//! commits**: the first waiter becomes the leader, drains the queue,
//! appends the whole batch as atomic batch frames, and pays ONE sync
//! for everyone. A batch is one checksummed frame, so a crash mid-commit
//! recovers to an exact prefix of acknowledged batches — never a
//! partial batch.
//!
//! Readers are snapshot-isolated: a merged read takes a point-in-time
//! copy of each shard's segment and salvages it in memory, never
//! mutating the directory, so compaction and cross-shard merges proceed
//! while writers stream.
//!
//! The shard count is pinned in a checksummed `MANIFEST` at the
//! database root. A directory holding an old single-log database (no
//! manifest, root `seg-*.mfdb` files) opens read-only and migrates to
//! the sharded layout on its first write; the manifest write is the
//! migration's commit point, so a crash mid-migration leaves the legacy
//! database untouched and the migration simply retries.
//!
//! All I/O goes through [`mffault::Vfs`]; the crash battery extends
//! per-shard and across a crash mid-group-commit.

mod shard;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use mffault::{RetryPolicy, Vfs};
use mfprofdb::format;
use trace_ir::BranchId;
use trace_vm::BranchCounts;

pub use mfprofdb::{DbError, Persistence, ProfileRecord, StoreCounters};
pub use shard::{LockCfg, ShardLog};

/// Name of the root manifest file that pins the shard count.
const MANIFEST_FILE: &str = "MANIFEST";
/// Manifest magic.
const MANIFEST_MAGIC: &[u8; 4] = b"MFPS";
/// Manifest format version.
const MANIFEST_VERSION: u8 = 1;
/// Encoded manifest size: magic + version + shard_count + checksum.
const MANIFEST_LEN: usize = 17;

/// Per-dataset raw accumulation: branch id → (executed, taken), summed
/// saturating (same currency as the base store).
pub(crate) type RawFold = BTreeMap<String, BTreeMap<u32, (u64, u64)>>;

/// What [`ProfileService::merged_totals`] returns: per-dataset sorted
/// `(branch, executed, taken)` triples.
pub type MergedTotals = BTreeMap<String, Vec<(u32, u64, u64)>>;

/// Structural fingerprints folded across records (last writer wins per
/// branch id — fingerprints describe a program, not a dataset's counts).
pub(crate) type FpFold = BTreeMap<u32, u64>;

/// Fingerprints folded per dataset label. A store can hold several
/// distinct *programs* (each numbering its branches from zero), so folds
/// that feed back into stored records must never mix labels.
pub(crate) type FpFoldByDataset = BTreeMap<String, FpFold>;

pub(crate) fn fold_record(fold: &mut RawFold, record: &ProfileRecord) {
    let per_dataset = fold.entry(record.dataset.clone()).or_default();
    for &(id, e, t) in &record.entries {
        let slot = per_dataset.entry(id).or_insert((0, 0));
        slot.0 = slot.0.saturating_add(e);
        slot.1 = slot.1.saturating_add(t);
    }
}

pub(crate) fn fold_fps(fps: &mut FpFold, record: &ProfileRecord) {
    for &(id, fp) in &record.fps {
        fps.insert(id, fp);
    }
}

pub(crate) fn fold_fps_by_dataset(by_ds: &mut FpFoldByDataset, record: &ProfileRecord) {
    if record.fps.is_empty() {
        return;
    }
    fold_fps(by_ds.entry(record.dataset.clone()).or_default(), record);
}

/// One folded record per dataset, each carrying the folded fingerprint of
/// every site *its own program* counts — so compaction and migration
/// never shed the fingerprints the skew remapper needs later, and never
/// smear one program's fingerprints onto another dataset's record.
pub(crate) fn fold_to_records(fold: &RawFold, fps: &FpFoldByDataset) -> Vec<ProfileRecord> {
    fold.iter()
        .map(|(ds, m)| ProfileRecord {
            dataset: ds.clone(),
            entries: m.iter().map(|(&id, &(e, t))| (id, e, t)).collect(),
            fps: fps
                .get(ds)
                .map(|f| f.iter().map(|(&id, &fp)| (id, fp)).collect())
                .unwrap_or_default(),
        })
        .collect()
}

/// Splits records into chunks whose encoded size stays under one batch
/// frame, cutting oversized records (a 100M-site fold) into sub-records
/// — safe because accumulation sums per `(dataset, branch)`.
pub(crate) fn chunk_records(records: &[ProfileRecord]) -> Vec<Vec<ProfileRecord>> {
    let max = shard::MAX_FRAME_BYTES;
    let mut chunks: Vec<Vec<ProfileRecord>> = Vec::new();
    let mut chunk: Vec<ProfileRecord> = Vec::new();
    let mut chunk_bytes = 0usize;
    let push = |r: ProfileRecord,
                chunks: &mut Vec<Vec<ProfileRecord>>,
                chunk: &mut Vec<ProfileRecord>,
                chunk_bytes: &mut usize| {
        let len = format::record_body_len(&r);
        if !chunk.is_empty() && *chunk_bytes + len > max {
            chunks.push(std::mem::take(chunk));
            *chunk_bytes = 0;
        }
        *chunk_bytes += len;
        chunk.push(r);
    };
    for r in records {
        if format::record_body_len(r) <= max {
            push(r.clone(), &mut chunks, &mut chunk, &mut chunk_bytes);
            continue;
        }
        // An entry costs 20 bytes, plus 12 more when it drags its
        // fingerprint along.
        let entry_cost = if r.fps.is_empty() { 20 } else { 32 };
        let per = ((max - 12 - r.dataset.len()).max(entry_cost) / entry_cost).max(1);
        let fp_of: BTreeMap<u32, u64> = r.fps.iter().copied().collect();
        for part in r.entries.chunks(per) {
            push(
                ProfileRecord {
                    dataset: r.dataset.clone(),
                    entries: part.to_vec(),
                    // Each fingerprint travels with its own entries.
                    fps: part
                        .iter()
                        .filter_map(|&(id, _, _)| fp_of.get(&id).map(|&fp| (id, fp)))
                        .collect(),
                },
                &mut chunks,
                &mut chunk,
                &mut chunk_bytes,
            );
        }
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    chunks
}

/// The shard a branch's counters land in. Pure function of the branch
/// id and the manifest's shard count, so every writer and reader agrees
/// and per-shard keyspaces are disjoint.
pub fn shard_of(branch: u32, shards: u32) -> u32 {
    (format::fnv64(&branch.to_le_bytes()) % u64::from(shards.max(1))) as u32
}

fn encode_manifest(shards: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(MANIFEST_LEN);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.push(MANIFEST_VERSION);
    buf.extend_from_slice(&shards.to_le_bytes());
    let sum = format::fnv64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_manifest(bytes: &[u8]) -> Option<u32> {
    if bytes.len() != MANIFEST_LEN {
        return None;
    }
    let (body, sum) = bytes.split_at(MANIFEST_LEN - 8);
    if u64::from_le_bytes(sum.try_into().ok()?) != format::fnv64(body) {
        return None;
    }
    if &body[..4] != MANIFEST_MAGIC || body[4] != MANIFEST_VERSION {
        return None;
    }
    let shards = u32::from_le_bytes(body[5..9].try_into().ok()?);
    (shards > 0).then_some(shards)
}

/// Open-time knobs for the service.
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Shard count for a fresh database (and the migration target for a
    /// legacy one). An existing manifest always wins.
    pub shards: u32,
    /// Per-commit shard-lock policy.
    pub lock: LockCfg,
    /// Bounded retry for transient I/O faults.
    pub retry: RetryPolicy,
    /// Extra window a group-commit leader waits for more submissions to
    /// coalesce before paying the sync. Zero (the default) still
    /// batches: everything that queued while the previous commit was
    /// syncing rides the next one.
    pub flush_interval: Duration,
    /// Commit as soon as this many submissions are pending, regardless
    /// of the flush interval.
    pub max_batch: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            shards: 8,
            lock: LockCfg::default(),
            retry: RetryPolicy::default(),
            flush_interval: Duration::ZERO,
            max_batch: 64,
        }
    }
}

/// Aggregated lifetime counters for the whole service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SvcCounters {
    /// Summed per-shard (or legacy-log) store counters.
    pub store: StoreCounters,
    /// Group commits that reached the disk path (one sync each).
    pub group_commits: u64,
    /// Records carried over by a legacy → sharded migration.
    pub migrated_records: u64,
}

/// One shard's group-commit queue plus its log.
struct ShardCell {
    queue: Mutex<QueueState>,
    cv: Condvar,
    log: Mutex<ShardLog>,
    dir: PathBuf,
}

#[derive(Default)]
struct QueueState {
    /// Submissions awaiting the next group commit.
    pending: Vec<(u64, ProfileRecord)>,
    /// Acknowledgments awaiting pickup by their submitters.
    acks: BTreeMap<u64, Persistence>,
    /// True while some submitter is the commit leader.
    leader: bool,
    /// Set when an injected crash killed a commit; everyone dies.
    dead: Option<String>,
}

struct LegacyInner {
    log: ShardLog,
    /// Enqueued-but-unflushed submissions (only reachable once a
    /// migration has failed and the service is memory-bound).
    pending: Vec<(u64, ProfileRecord)>,
}

enum Mode {
    /// Old single-log database (or an unusable directory): read-only
    /// until the first write migrates it.
    Legacy(Box<Mutex<LegacyInner>>),
    /// Hash-partitioned shard logs per the manifest.
    Sharded(Vec<Arc<ShardCell>>),
}

/// The sharded multi-writer profile service. See the crate docs.
pub struct ProfileService {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    opts: ServiceOptions,
    mode: RwLock<Mode>,
    next_sid: AtomicU64,
    group_commits: AtomicU64,
    migrated_records: AtomicU64,
    svc_warnings: Mutex<Vec<String>>,
}

fn crash_err(op: &'static str, reason: &str) -> DbError {
    DbError {
        op,
        source: io::Error::other(reason.to_string()),
    }
}

fn worst(a: Persistence, b: Persistence) -> Persistence {
    if a == Persistence::Degraded || b == Persistence::Degraded {
        Persistence::Degraded
    } else {
        Persistence::Committed
    }
}

impl ProfileService {
    /// Opens (or creates) the service at `dir`. A fresh directory is
    /// initialized with `options.shards` shards; a manifest pins the
    /// count thereafter; a manifest-less directory with root segments
    /// opens as a read-only legacy database that migrates on first
    /// write. Returns `Err` only on an injected crash — every real
    /// failure degrades with a warning, like the base store.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
        options: ServiceOptions,
    ) -> Result<Self, DbError> {
        let dir = dir.into();
        let svc = ProfileService {
            vfs,
            dir,
            opts: options,
            mode: RwLock::new(Mode::Legacy(Box::new(Mutex::new(LegacyInner {
                log: ShardLog::open(
                    Arc::new(mffault::MemVfs::new()),
                    "/placeholder",
                    RetryPolicy::none(),
                )?,
                pending: Vec::new(),
            })))),
            next_sid: AtomicU64::new(1),
            group_commits: AtomicU64::new(0),
            migrated_records: AtomicU64::new(0),
            svc_warnings: Mutex::new(Vec::new()),
        };

        let manifest_path = svc.dir.join(MANIFEST_FILE);
        let manifest = svc
            .io("read manifest", |vfs| vfs.read(&manifest_path))?
            .ok()
            .map(|bytes| decode_manifest(&bytes));

        let mode = match manifest {
            Some(Some(shards)) => {
                // Sharded database. Root segments can only be leftovers
                // of a migration that crashed after its commit point.
                let cells = svc.open_shards(shards)?;
                let probe = ShardLog::open(Arc::clone(&svc.vfs), svc.dir.clone(), svc.opts.retry)?;
                if probe.has_segments() {
                    svc.warn(format!(
                        "stale pre-migration segments present in {}; ignored",
                        svc.dir.display()
                    ));
                }
                Mode::Sharded(cells)
            }
            Some(None) => {
                // Manifest exists but does not decode: a torn manifest
                // write. With legacy segments present the migration
                // never committed — stay legacy; otherwise re-initialize.
                svc.warn(format!(
                    "corrupt manifest in {}; ignoring it",
                    svc.dir.display()
                ));
                svc.open_without_manifest()?
            }
            None => svc.open_without_manifest()?,
        };
        *svc.mode.write().expect("mode lock") = mode;
        Ok(svc)
    }

    fn open_without_manifest(&self) -> Result<Mode, DbError> {
        let mut log = ShardLog::open(Arc::clone(&self.vfs), self.dir.clone(), self.opts.retry)?;
        if log.has_segments() || !log.is_persistent() {
            // Legacy data, or an unusable directory: either way the
            // write path decides later (migrate, or accumulate in
            // memory).
            return Ok(Mode::Legacy(Box::new(Mutex::new(LegacyInner {
                log,
                pending: Vec::new(),
            }))));
        }
        // Fresh database: commit the shard count first, then lay out
        // the shards.
        match self.write_manifest(self.opts.shards.max(1))? {
            Ok(()) => Ok(Mode::Sharded(self.open_shards(self.opts.shards.max(1))?)),
            Err(e) => {
                log.force_degrade(format!(
                    "could not write manifest in {} ({e}); accumulating in memory only",
                    self.dir.display()
                ));
                Ok(Mode::Legacy(Box::new(Mutex::new(LegacyInner {
                    log,
                    pending: Vec::new(),
                }))))
            }
        }
    }

    fn write_manifest(&self, shards: u32) -> Result<io::Result<()>, DbError> {
        let path = self.dir.join(MANIFEST_FILE);
        let bytes = encode_manifest(shards);
        let wrote = self.io("write manifest", |vfs| vfs.write(&path, &bytes))?;
        match wrote {
            Ok(()) => self.io("sync manifest", |vfs| vfs.sync(&path)),
            Err(e) => Ok(Err(e)),
        }
    }

    fn open_shards(&self, shards: u32) -> Result<Vec<Arc<ShardCell>>, DbError> {
        let mut cells = Vec::with_capacity(shards as usize);
        for i in 0..shards {
            let sdir = self.shard_dir(i);
            let log = ShardLog::open(Arc::clone(&self.vfs), sdir.clone(), self.opts.retry)?;
            cells.push(Arc::new(ShardCell {
                queue: Mutex::new(QueueState::default()),
                cv: Condvar::new(),
                log: Mutex::new(log),
                dir: sdir,
            }));
        }
        Ok(cells)
    }

    fn shard_dir(&self, i: u32) -> PathBuf {
        self.dir.join(format!("shard-{i:03}"))
    }

    fn io<T>(
        &self,
        op: &'static str,
        mut f: impl FnMut(&dyn Vfs) -> io::Result<T>,
    ) -> Result<io::Result<T>, DbError> {
        let (result, _) = mffault::retry(self.opts.retry, || f(self.vfs.as_ref()));
        match result {
            Err(e) if mffault::is_crash(&e) => Err(DbError { op, source: e }),
            other => Ok(other),
        }
    }

    fn warn(&self, w: String) {
        self.svc_warnings.lock().expect("warnings lock").push(w);
    }

    // -- accessors -------------------------------------------------------

    /// The database root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard count per the manifest; 0 while still in (read-only)
    /// legacy mode.
    pub fn shard_count(&self) -> u32 {
        match &*self.mode.read().expect("mode lock") {
            Mode::Sharded(cells) => cells.len() as u32,
            Mode::Legacy(_) => 0,
        }
    }

    /// False once any shard (or the legacy log) fell back to in-memory
    /// accumulation.
    pub fn is_persistent(&self) -> bool {
        match &*self.mode.read().expect("mode lock") {
            Mode::Sharded(cells) => cells
                .iter()
                .all(|c| c.log.lock().expect("log lock").is_persistent()),
            Mode::Legacy(inner) => inner.lock().expect("legacy lock").log.is_persistent(),
        }
    }

    /// Everything that went wrong so far: service-level warnings first,
    /// then each shard's, in shard order.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = self.svc_warnings.lock().expect("warnings lock").clone();
        match &*self.mode.read().expect("mode lock") {
            Mode::Sharded(cells) => {
                for c in cells {
                    out.extend(c.log.lock().expect("log lock").warnings().to_vec());
                }
            }
            Mode::Legacy(inner) => {
                out.extend(inner.lock().expect("legacy lock").log.warnings().to_vec());
            }
        }
        out
    }

    /// Aggregated lifetime counters.
    pub fn counters(&self) -> SvcCounters {
        let mut store = StoreCounters::default();
        let mut add = |c: StoreCounters| {
            store.committed_appends += c.committed_appends;
            store.degraded_appends += c.degraded_appends;
            store.salvaged_records += c.salvaged_records;
            store.truncated_bytes += c.truncated_bytes;
            store.io_retries += c.io_retries;
            store.compactions += c.compactions;
        };
        match &*self.mode.read().expect("mode lock") {
            Mode::Sharded(cells) => {
                for c in cells {
                    add(c.log.lock().expect("log lock").counters());
                }
            }
            Mode::Legacy(inner) => add(inner.lock().expect("legacy lock").log.counters()),
        }
        SvcCounters {
            store,
            group_commits: self.group_commits.load(Ordering::Relaxed),
            migrated_records: self.migrated_records.load(Ordering::Relaxed),
        }
    }

    // -- the write path --------------------------------------------------

    /// Blocking submit for concurrent writers: splits the run's counters
    /// per shard and rides each shard's group commit (becoming the
    /// leader if nobody else is). Returns the worst persistence across
    /// the record's shard parts; `Err` only on an injected crash. Do not
    /// mix with [`ProfileService::enqueue`]/[`ProfileService::flush`]
    /// from other threads at the same time.
    pub fn submit(&self, dataset: &str, counts: &BranchCounts) -> Result<Persistence, DbError> {
        self.submit_with_fps(dataset, counts, &BTreeMap::new())
    }

    /// [`ProfileService::submit`] carrying the structural site
    /// fingerprints of the program the counts were gathered on (see
    /// `mfstale`). Fingerprinted records commit as v2 frames; an empty
    /// map behaves exactly like `submit`.
    pub fn submit_with_fps(
        &self,
        dataset: &str,
        counts: &BranchCounts,
        fps: &BTreeMap<BranchId, u64>,
    ) -> Result<Persistence, DbError> {
        let record = record_of(dataset, counts, fps);
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        self.ensure_sharded()?;
        let mode = self.mode.read().expect("mode lock");
        match &*mode {
            Mode::Sharded(cells) => {
                let parts = split_record(&record, cells.len() as u32);
                let mut overall = Persistence::Committed;
                for (shard, part) in parts {
                    let p = self.submit_part(&cells[shard as usize], sid, part)?;
                    overall = worst(overall, p);
                }
                Ok(overall)
            }
            Mode::Legacy(inner) => {
                // Migration failed: memory-bound accumulation.
                let mut li = inner.lock().expect("legacy lock");
                li.log.commit_batch(&[record], &self.opts.lock)
            }
        }
    }

    /// Deterministic two-phase submit, for single-threaded drivers (the
    /// crash battery, `repro`): queue now, commit on
    /// [`ProfileService::flush`]. Returns the submission id.
    pub fn enqueue(&self, dataset: &str, counts: &BranchCounts) -> Result<u64, DbError> {
        self.enqueue_with_fps(dataset, counts, &BTreeMap::new())
    }

    /// [`ProfileService::enqueue`] carrying structural site fingerprints
    /// (committed with the queued record at the next flush).
    pub fn enqueue_with_fps(
        &self,
        dataset: &str,
        counts: &BranchCounts,
        fps: &BTreeMap<BranchId, u64>,
    ) -> Result<u64, DbError> {
        let record = record_of(dataset, counts, fps);
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        self.ensure_sharded()?;
        let mode = self.mode.read().expect("mode lock");
        match &*mode {
            Mode::Sharded(cells) => {
                for (shard, part) in split_record(&record, cells.len() as u32) {
                    let mut q = cells[shard as usize].queue.lock().expect("queue lock");
                    q.pending.push((sid, part));
                }
            }
            Mode::Legacy(inner) => {
                let mut li = inner.lock().expect("legacy lock");
                li.pending.push((sid, record));
            }
        }
        Ok(sid)
    }

    /// Commits every queued submission, one group commit per shard (in
    /// shard order — deterministic under fault injection). Returns each
    /// flushed submission's worst persistence across its shard parts.
    pub fn flush(&self) -> Result<BTreeMap<u64, Persistence>, DbError> {
        self.ensure_sharded()?;
        let mode = self.mode.read().expect("mode lock");
        let mut acks: BTreeMap<u64, Persistence> = BTreeMap::new();
        match &*mode {
            Mode::Sharded(cells) => {
                for cell in cells {
                    let batch = {
                        let mut q = cell.queue.lock().expect("queue lock");
                        std::mem::take(&mut q.pending)
                    };
                    if batch.is_empty() {
                        continue;
                    }
                    let records: Vec<ProfileRecord> =
                        batch.iter().map(|(_, r)| r.clone()).collect();
                    let p = cell
                        .log
                        .lock()
                        .expect("log lock")
                        .commit_batch(&records, &self.opts.lock)?;
                    self.group_commits.fetch_add(1, Ordering::Relaxed);
                    for (sid, _) in batch {
                        let slot = acks.entry(sid).or_insert(Persistence::Committed);
                        *slot = worst(*slot, p);
                    }
                }
            }
            Mode::Legacy(inner) => {
                let mut li = inner.lock().expect("legacy lock");
                let batch = std::mem::take(&mut li.pending);
                if !batch.is_empty() {
                    let records: Vec<ProfileRecord> =
                        batch.iter().map(|(_, r)| r.clone()).collect();
                    let p = li.log.commit_batch(&records, &self.opts.lock)?;
                    for (sid, _) in batch {
                        acks.insert(sid, p);
                    }
                }
            }
        }
        Ok(acks)
    }

    fn submit_part(
        &self,
        cell: &ShardCell,
        sid: u64,
        record: ProfileRecord,
    ) -> Result<Persistence, DbError> {
        let mut q = cell.queue.lock().expect("queue lock");
        q.pending.push((sid, record));
        loop {
            if let Some(p) = q.acks.remove(&sid) {
                return Ok(p);
            }
            if let Some(reason) = &q.dead {
                return Err(crash_err("group commit", reason));
            }
            if !q.leader {
                q.leader = true;
                if !self.opts.flush_interval.is_zero() && q.pending.len() < self.opts.max_batch {
                    // Batching window: let more submissions pile on
                    // before paying the sync.
                    let (guard, _) = cell
                        .cv
                        .wait_timeout(q, self.opts.flush_interval)
                        .expect("queue lock");
                    q = guard;
                }
                let batch = std::mem::take(&mut q.pending);
                drop(q);
                let records: Vec<ProfileRecord> = batch.iter().map(|(_, r)| r.clone()).collect();
                // Keep the shard lock hot: back-to-back group commits
                // within a burst skip the lock-file churn; the lock is
                // dropped below the moment the queue drains.
                let result = cell.log.lock().expect("log lock").commit_batch_keep(
                    &records,
                    &self.opts.lock,
                    true,
                );
                q = cell.queue.lock().expect("queue lock");
                q.leader = false;
                match result {
                    Ok(p) => {
                        for (s, _) in batch {
                            let slot = q.acks.entry(s).or_insert(Persistence::Committed);
                            *slot = worst(*slot, p);
                        }
                        self.group_commits.fetch_add(1, Ordering::Relaxed);
                        cell.cv.notify_all();
                        if q.pending.is_empty() {
                            // Idle: give the lock back so a waiting peer
                            // (another process) can take its turn.
                            drop(q);
                            let release = cell.log.lock().expect("log lock").release_if_held();
                            q = cell.queue.lock().expect("queue lock");
                            if let Err(e) = release {
                                q.dead = Some(e.to_string());
                                cell.cv.notify_all();
                                return Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        q.dead = Some(e.to_string());
                        cell.cv.notify_all();
                        return Err(e);
                    }
                }
            } else {
                q = cell.cv.wait(q).expect("queue lock");
            }
        }
    }

    /// Compacts every shard (fold to one frame per dataset in a
    /// superseding segment). A no-op in legacy mode.
    pub fn compact(&self) -> Result<(), DbError> {
        let mode = self.mode.read().expect("mode lock");
        if let Mode::Sharded(cells) = &*mode {
            for cell in cells {
                cell.log
                    .lock()
                    .expect("log lock")
                    .compact(&self.opts.lock)?;
            }
        }
        Ok(())
    }

    // -- migration -------------------------------------------------------

    /// Upgrade to sharded mode if this is still an (intact) legacy
    /// database. Failed migrations leave the service in memory-bound
    /// legacy mode; a crash leaves the legacy database untouched.
    fn ensure_sharded(&self) -> Result<(), DbError> {
        {
            let mode = self.mode.read().expect("mode lock");
            match &*mode {
                Mode::Sharded(_) => return Ok(()),
                Mode::Legacy(inner) => {
                    if !inner.lock().expect("legacy lock").log.is_persistent() {
                        return Ok(()); // already broken: stay memory-bound
                    }
                }
            }
        }
        let mut mode = self.mode.write().expect("mode lock");
        let Mode::Legacy(inner) = &*mode else {
            return Ok(()); // raced: someone else migrated
        };
        let li = inner.lock().expect("legacy lock");
        if !li.log.is_persistent() {
            return Ok(());
        }
        drop(li);
        match self.migrate(mode.deref_legacy())? {
            Ok(cells) => {
                *mode = Mode::Sharded(cells);
                Ok(())
            }
            Err(reason) => {
                let Mode::Legacy(inner) = &*mode else {
                    unreachable!("mode still legacy under write lock");
                };
                inner
                    .lock()
                    .expect("legacy lock")
                    .log
                    .force_degrade(format!(
                        "legacy migration of {} failed ({reason}); \
                         accumulating in memory only",
                        self.dir.display()
                    ));
                Ok(())
            }
        }
    }

    /// The migration proper: wipe shard dirs, replay the legacy fold
    /// into the shards, commit the manifest, drop the legacy segments.
    /// `Ok(Err(reason))` on a real failure (caller degrades), `Err` on
    /// an injected crash.
    fn migrate(
        &self,
        legacy: &Mutex<LegacyInner>,
    ) -> Result<Result<Vec<Arc<ShardCell>>, String>, DbError> {
        let shards = self.opts.shards.max(1);
        let mut li = legacy.lock().expect("legacy lock");
        let mut fold = RawFold::new();
        let mut fps = FpFoldByDataset::new();
        li.log.visit_batches(|batch| {
            for r in batch {
                fold_record(&mut fold, &r);
                fold_fps_by_dataset(&mut fps, &r);
            }
        })?;
        let legacy_records = fold_to_records(&fold, &fps);
        drop(li);

        // A previous migration may have crashed after partially filling
        // shard dirs (but before the manifest commit): wipe them so the
        // replay cannot double-count.
        for i in 0..shards {
            let sdir = self.shard_dir(i);
            if !self.vfs.exists(&sdir) {
                continue;
            }
            let entries = match self.io("scan shard dir", |vfs| vfs.read_dir(&sdir))? {
                Ok(e) => e,
                Err(e) => return Ok(Err(format!("cannot scan {}: {e}", sdir.display()))),
            };
            for path in entries {
                if self
                    .io("wipe shard file", |vfs| vfs.remove_file(&path))?
                    .is_err()
                {
                    return Ok(Err(format!("cannot wipe {}", path.display())));
                }
            }
        }

        let cells = self.open_shards(shards)?;
        let mut migrated = 0u64;
        // Split the fold per shard and replay it as normal batch
        // commits; every record must land durably before the manifest
        // makes the migration visible.
        for (i, cell) in cells.iter().enumerate() {
            let mut per_shard: Vec<ProfileRecord> = Vec::new();
            for r in &legacy_records {
                let entries: Vec<(u32, u64, u64)> = r
                    .entries
                    .iter()
                    .copied()
                    .filter(|&(id, _, _)| shard_of(id, shards) == i as u32)
                    .collect();
                let fps: Vec<(u32, u64)> = r
                    .fps
                    .iter()
                    .copied()
                    .filter(|&(id, _)| shard_of(id, shards) == i as u32)
                    .collect();
                let goes_here = if r.entries.is_empty() {
                    i == 0 // dataset presence with no counters → shard 0
                } else {
                    !entries.is_empty() || !fps.is_empty()
                };
                if goes_here {
                    per_shard.push(ProfileRecord {
                        dataset: r.dataset.clone(),
                        entries,
                        fps,
                    });
                }
            }
            if per_shard.is_empty() {
                continue;
            }
            migrated += per_shard.len() as u64;
            for chunk in chunk_records(&per_shard) {
                let mut log = cell.log.lock().expect("log lock");
                match log.commit_batch(&chunk, &self.opts.lock)? {
                    Persistence::Committed => {}
                    Persistence::Degraded => {
                        return Ok(Err(format!(
                            "shard {} would not accept the replay",
                            cell.dir.display()
                        )));
                    }
                }
            }
        }

        // The commit point: once the manifest is durable the service is
        // sharded; a crash any earlier leaves a manifest-less legacy
        // database and the migration retries.
        if let Err(e) = self.write_manifest(shards)? {
            return Ok(Err(format!("manifest write failed: {e}")));
        }

        // Best-effort cleanup of the superseded legacy segments.
        let root = ShardLog::open(Arc::clone(&self.vfs), self.dir.clone(), self.opts.retry)?;
        for path in root.segment_files() {
            let _ = self.io("remove legacy segment", |vfs| vfs.remove_file(&path))?;
        }
        self.migrated_records.fetch_add(migrated, Ordering::Relaxed);
        self.warn(format!(
            "migrated legacy database {} to {shards} shards ({migrated} folded records)",
            self.dir.display()
        ));
        Ok(Ok(cells))
    }

    // -- the read path ---------------------------------------------------

    /// Raw accumulated totals for every dataset, merged across shards —
    /// the union of each shard's committed prefix plus any
    /// degraded-acknowledged in-memory records. Snapshot-isolated:
    /// reads point-in-time copies and never blocks on or mutates a
    /// streaming writer. Enqueued-but-unflushed submissions are not
    /// visible.
    pub fn merged_totals(&self) -> Result<MergedTotals, DbError> {
        let mut fold = RawFold::new();
        self.visit_all(|r| fold_record(&mut fold, r))?;
        Ok(fold
            .iter()
            .map(|(ds, m)| {
                (
                    ds.clone(),
                    m.iter().map(|(&id, &(e, t))| (id, e, t)).collect(),
                )
            })
            .collect())
    }

    /// Structural site fingerprints merged across every shard (last
    /// record in log order wins per branch id). Empty for a database
    /// written entirely by fingerprint-free writers.
    pub fn merged_fingerprints(&self) -> Result<BTreeMap<u32, u64>, DbError> {
        let mut fps = FpFold::new();
        self.visit_all(|r| fold_fps(&mut fps, r))?;
        Ok(fps)
    }

    /// Like [`ProfileService::merged_fingerprints`] but keyed per dataset
    /// label. Stores that accumulate several distinct *programs* (the
    /// benchmark harness records `"workload/dataset"` labels, and every
    /// program numbers its branches from zero) must read fingerprints
    /// through this and union per program — the global fold would let one
    /// program's sites shadow another's.
    pub fn merged_fingerprints_by_dataset(
        &self,
    ) -> Result<BTreeMap<String, BTreeMap<u32, u64>>, DbError> {
        let mut by_ds: BTreeMap<String, FpFold> = BTreeMap::new();
        self.visit_all(|r| {
            let fps = by_ds.entry(r.dataset.clone()).or_default();
            fold_fps(fps, r);
        })?;
        by_ds.retain(|_, fps| !fps.is_empty());
        Ok(by_ds)
    }

    /// The merged database as the in-memory [`ifprob::ProfileDb`] every
    /// downstream predictor consumes.
    pub fn snapshot(&self) -> Result<ifprob::ProfileDb, DbError> {
        let mut fold = RawFold::new();
        self.visit_all(|r| fold_record(&mut fold, r))?;
        let mut db = ifprob::ProfileDb::new();
        for (dataset, entries) in &fold {
            let counts: BranchCounts = entries
                .iter()
                .map(|(&id, &(e, t))| (BranchId(id), e, t))
                .collect();
            db.record(dataset, &counts);
        }
        Ok(db)
    }

    fn visit_all(&self, mut visit: impl FnMut(&ProfileRecord)) -> Result<(), DbError> {
        let mode = self.mode.read().expect("mode lock");
        match &*mode {
            Mode::Sharded(cells) => {
                for cell in cells {
                    let mut log = cell.log.lock().expect("log lock");
                    log.visit_batches(|batch| {
                        for r in &batch {
                            visit(r);
                        }
                    })?;
                    for r in log.memory_records() {
                        visit(r);
                    }
                }
            }
            Mode::Legacy(inner) => {
                let mut li = inner.lock().expect("legacy lock");
                li.log.visit_batches(|batch| {
                    for r in &batch {
                        visit(r);
                    }
                })?;
                for r in li.log.memory_records() {
                    visit(r);
                }
            }
        }
        Ok(())
    }

    /// Total committed batches on disk across every shard (or the legacy
    /// log). Compaction policy input: a compacted database is one batch
    /// per shard, so growth beyond the shard count measures accumulated,
    /// foldable history.
    pub fn total_batches(&self) -> Result<u64, DbError> {
        let mode = self.mode.read().expect("mode lock");
        let mut n = 0u64;
        match &*mode {
            Mode::Sharded(cells) => {
                for cell in cells {
                    cell.log
                        .lock()
                        .expect("log lock")
                        .visit_batches(|_| n += 1)?;
                }
            }
            Mode::Legacy(inner) => {
                inner
                    .lock()
                    .expect("legacy lock")
                    .log
                    .visit_batches(|_| n += 1)?;
            }
        }
        Ok(n)
    }

    /// The committed batches currently on disk in shard `i`, in log
    /// order — the granularity at which recovery may cut. Test/battery
    /// API.
    pub fn shard_batches(&self, i: u32) -> Result<Vec<Vec<ProfileRecord>>, DbError> {
        let mode = self.mode.read().expect("mode lock");
        match &*mode {
            Mode::Sharded(cells) => match cells.get(i as usize) {
                Some(cell) => cell.log.lock().expect("log lock").read_batches(),
                None => Ok(Vec::new()),
            },
            Mode::Legacy(_) => Ok(Vec::new()),
        }
    }
}

impl Mode {
    fn deref_legacy(&self) -> &Mutex<LegacyInner> {
        match self {
            Mode::Legacy(inner) => inner,
            Mode::Sharded(_) => unreachable!("caller checked legacy"),
        }
    }
}

fn record_of(dataset: &str, counts: &BranchCounts, fps: &BTreeMap<BranchId, u64>) -> ProfileRecord {
    ProfileRecord {
        dataset: dataset.to_string(),
        entries: counts.iter().map(|(id, e, t)| (id.0, e, t)).collect(),
        fps: fps.iter().map(|(&id, &fp)| (id.0, fp)).collect(),
    }
}

/// Splits one record into its per-shard parts (ascending shard index).
/// An empty-entry record (dataset presence) lands in shard 0. Each
/// fingerprint follows its branch id's shard, so per-shard keyspaces stay
/// disjoint for fingerprints exactly as for counts.
pub(crate) fn split_record(record: &ProfileRecord, shards: u32) -> Vec<(u32, ProfileRecord)> {
    if record.entries.is_empty() {
        return vec![(0, record.clone())];
    }
    fn part<'a>(
        parts: &'a mut BTreeMap<u32, ProfileRecord>,
        dataset: &str,
        shard: u32,
    ) -> &'a mut ProfileRecord {
        parts.entry(shard).or_insert_with(|| ProfileRecord {
            dataset: dataset.to_string(),
            ..ProfileRecord::default()
        })
    }
    let mut parts: BTreeMap<u32, ProfileRecord> = BTreeMap::new();
    for &e in &record.entries {
        part(&mut parts, &record.dataset, shard_of(e.0, shards))
            .entries
            .push(e);
    }
    for &f in &record.fps {
        part(&mut parts, &record.dataset, shard_of(f.0, shards))
            .fps
            .push(f);
    }
    parts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffault::MemVfs;

    fn counts(rows: &[(u32, u64, u64)]) -> BranchCounts {
        rows.iter()
            .map(|&(id, e, t)| (BranchId(id), e, t))
            .collect()
    }

    fn opts(shards: u32) -> ServiceOptions {
        ServiceOptions {
            shards,
            lock: LockCfg {
                attempts: 2,
                base: Duration::ZERO,
                steal: false,
            },
            retry: RetryPolicy::none(),
            ..ServiceOptions::default()
        }
    }

    const DIR: &str = "/svc";

    #[test]
    fn submit_reopen_accumulate_across_shards() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        {
            let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
            assert_eq!(svc.shard_count(), 4);
            assert_eq!(
                svc.submit("train", &counts(&[(0, 10, 4), (1, 6, 6), (2, 9, 1)]))
                    .unwrap(),
                Persistence::Committed
            );
            assert_eq!(
                svc.submit("train", &counts(&[(0, 5, 1)])).unwrap(),
                Persistence::Committed
            );
            assert_eq!(
                svc.submit("ref", &counts(&[(3, 7, 0)])).unwrap(),
                Persistence::Committed
            );
        }
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        assert_eq!(svc.shard_count(), 4, "manifest pins the count");
        let totals = svc.merged_totals().unwrap();
        assert_eq!(
            totals["train"],
            vec![(0, 15, 5), (1, 6, 6), (2, 9, 1)],
            "union across shards equals the fold"
        );
        assert_eq!(totals["ref"], vec![(3, 7, 0)]);

        // The snapshot equals the same runs folded through the
        // in-memory accumulation path.
        let mut expected = ifprob::ProfileDb::new();
        expected.record("train", &counts(&[(0, 15, 5), (1, 6, 6), (2, 9, 1)]));
        expected.record("ref", &counts(&[(3, 7, 0)]));
        assert_eq!(svc.snapshot().unwrap(), expected);
    }

    #[test]
    fn manifest_wins_over_options() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        drop(ProfileService::open(Arc::clone(&mem), DIR, opts(16)).unwrap());
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        assert_eq!(svc.shard_count(), 16);
    }

    #[test]
    fn enqueue_flush_acks_every_submission() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(3)).unwrap();
        let a = svc.enqueue("a", &counts(&[(0, 1, 1), (5, 2, 0)])).unwrap();
        let b = svc.enqueue("b", &counts(&[(1, 3, 2)])).unwrap();
        let empty = svc.enqueue("marker", &counts(&[])).unwrap();
        let acks = svc.flush().unwrap();
        assert_eq!(acks.len(), 3);
        for sid in [a, b, empty] {
            assert_eq!(acks[&sid], Persistence::Committed);
        }
        assert_eq!(svc.flush().unwrap().len(), 0, "queue drained");
        let totals = svc.merged_totals().unwrap();
        assert_eq!(totals["marker"], vec![], "empty record keeps presence");
        // One group commit per touched shard, not per submission; the
        // append counter tallies per-shard record parts (submission `a`
        // splits across shards).
        assert!(svc.counters().group_commits <= 3);
        assert!(svc.counters().store.committed_appends >= 3);
    }

    #[test]
    fn legacy_database_migrates_on_first_write() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        // Build an old single-log database with the base store.
        {
            let mut store = mfprofdb::ProfileStore::open(
                Arc::clone(&mem),
                DIR,
                mfprofdb::OpenOptions {
                    lock: mfprofdb::LockMode::None,
                    retry: RetryPolicy::none(),
                },
            )
            .unwrap();
            store
                .append("train", &counts(&[(0, 10, 4), (9, 3, 3)]))
                .unwrap();
            store.append("ref", &counts(&[(2, 5, 0)])).unwrap();
        }
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        assert_eq!(svc.shard_count(), 0, "legacy opens read-only");
        let before = svc.merged_totals().unwrap();
        assert_eq!(before["train"], vec![(0, 10, 4), (9, 3, 3)]);

        // First write migrates, preserves the fold, and adds the new data.
        assert_eq!(
            svc.submit("train", &counts(&[(0, 1, 1)])).unwrap(),
            Persistence::Committed
        );
        assert_eq!(svc.shard_count(), 4);
        assert!(svc.counters().migrated_records > 0);
        let after = svc.merged_totals().unwrap();
        assert_eq!(after["train"], vec![(0, 11, 5), (9, 3, 3)]);
        assert_eq!(after["ref"], vec![(2, 5, 0)]);
        assert!(
            !mem.exists(Path::new("/svc/seg-00000001.mfdb")),
            "legacy segment cleaned up"
        );

        // Reopen sees the sharded database.
        drop(svc);
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        assert_eq!(svc.shard_count(), 4);
        assert_eq!(svc.merged_totals().unwrap(), after);
    }

    #[test]
    fn compaction_preserves_the_merge_and_shrinks_batches() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(2)).unwrap();
        for i in 0..6u64 {
            svc.submit(
                if i % 2 == 0 { "a" } else { "b" },
                &counts(&[(i as u32, i + 1, 1)]),
            )
            .unwrap();
        }
        let before = svc.merged_totals().unwrap();
        svc.compact().unwrap();
        assert_eq!(svc.merged_totals().unwrap(), before);
        assert_eq!(svc.counters().store.compactions, 2);
        for shard in 0..2 {
            let batches = svc.shard_batches(shard).unwrap();
            assert!(batches.len() <= 1, "one folded batch per shard");
        }
        drop(svc);
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(2)).unwrap();
        assert_eq!(svc.merged_totals().unwrap(), before);
    }

    #[test]
    fn fingerprints_shard_merge_and_survive_compaction() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let fps: BTreeMap<BranchId, u64> = (0..20u32)
            .map(|i| (BranchId(i), 1000 + u64::from(i)))
            .collect();
        {
            let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
            let rows: Vec<(u32, u64, u64)> = (0..20u32).map(|i| (i, 10, 3)).collect();
            assert_eq!(
                svc.submit_with_fps("train", &counts(&rows), &fps).unwrap(),
                Persistence::Committed
            );
            // Fingerprint-free traffic coexists.
            svc.submit("ref", &counts(&[(5, 7, 0)])).unwrap();
        }
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        let merged = svc.merged_fingerprints().unwrap();
        assert_eq!(merged.len(), 20);
        for i in 0..20u32 {
            assert_eq!(merged.get(&i), Some(&(1000 + u64::from(i))), "branch {i}");
        }
        svc.compact().unwrap();
        assert_eq!(svc.merged_fingerprints().unwrap(), merged);
        drop(svc);
        let reopened = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        assert_eq!(reopened.merged_fingerprints().unwrap(), merged);
    }

    #[test]
    fn fingerprints_by_dataset_keep_programs_apart() {
        // Two "programs" both number their branches from zero but with
        // different structure: the global fold would let one shadow the
        // other; the per-dataset view keeps them apart.
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(2)).unwrap();
        let fps_a: BTreeMap<BranchId, u64> = [(BranchId(0), 100)].into_iter().collect();
        let fps_b: BTreeMap<BranchId, u64> = [(BranchId(0), 200)].into_iter().collect();
        svc.submit_with_fps("alpha/train", &counts(&[(0, 8, 4)]), &fps_a)
            .unwrap();
        svc.submit_with_fps("beta/train", &counts(&[(0, 6, 6)]), &fps_b)
            .unwrap();
        svc.submit("gamma/train", &counts(&[(0, 1, 0)])).unwrap();
        let by_ds = svc.merged_fingerprints_by_dataset().unwrap();
        assert_eq!(by_ds.len(), 2, "fp-free datasets are omitted: {by_ds:?}");
        assert_eq!(by_ds["alpha/train"].get(&0), Some(&100));
        assert_eq!(by_ds["beta/train"].get(&0), Some(&200));
        svc.compact().unwrap();
        assert_eq!(svc.merged_fingerprints_by_dataset().unwrap(), by_ds);
    }

    #[test]
    fn fingerprints_survive_legacy_migration() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let fps: BTreeMap<BranchId, u64> =
            [(BranchId(1), 11), (BranchId(2), 22)].into_iter().collect();
        {
            // Write a fingerprinted single-log (legacy layout) database.
            let mut store = mfprofdb::ProfileStore::open(
                Arc::clone(&mem),
                DIR,
                mfprofdb::OpenOptions {
                    lock: mfprofdb::LockMode::None,
                    retry: RetryPolicy::none(),
                },
            )
            .unwrap();
            store
                .append_with_fps("train", &counts(&[(1, 4, 2), (2, 9, 9)]), &fps)
                .unwrap();
        }
        let svc = ProfileService::open(Arc::clone(&mem), DIR, opts(4)).unwrap();
        svc.submit("train", &counts(&[(1, 1, 1)])).unwrap(); // triggers migration
        assert_eq!(svc.shard_count(), 4);
        let merged = svc.merged_fingerprints().unwrap();
        assert_eq!(merged.get(&1), Some(&11));
        assert_eq!(merged.get(&2), Some(&22));
    }

    #[test]
    fn chunking_splits_oversized_records_without_losing_counts() {
        let big = ProfileRecord {
            dataset: "huge".into(),
            entries: (0..500_000u32).map(|i| (i, 2, 1)).collect(),
            ..Default::default()
        };
        let chunks = chunk_records(std::slice::from_ref(&big));
        assert!(chunks.len() > 1, "10MB of entries spans multiple frames");
        let mut fold = RawFold::new();
        for c in &chunks {
            for r in c {
                assert!(format::record_body_len(r) <= shard::MAX_FRAME_BYTES);
                fold_record(&mut fold, r);
            }
        }
        let mut expected = RawFold::new();
        fold_record(&mut expected, &big);
        assert_eq!(fold, expected);
    }

    #[test]
    fn split_record_partitions_by_shard_hash() {
        let record = ProfileRecord {
            dataset: "d".into(),
            entries: (0..100u32).map(|i| (i, 1, 0)).collect(),
            ..Default::default()
        };
        let parts = split_record(&record, 8);
        let mut seen = 0usize;
        for (shard, part) in &parts {
            for &(id, _, _) in &part.entries {
                assert_eq!(shard_of(id, 8), *shard);
                seen += 1;
            }
        }
        assert_eq!(seen, 100, "no entry lost or duplicated");
    }
}
