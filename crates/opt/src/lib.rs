#![warn(missing_docs)]

//! # mfopt
//!
//! Classical intraprocedural optimizations over [`trace_ir`], mirroring the
//! optimization level the paper ran its experiments at: common-subexpression
//! elimination, copy propagation, constant folding, branch simplification,
//! jump threading, unreachable-code removal, and dead-code elimination —
//! while (like the Multiflow compiler configured for the experiments)
//! *not* performing transformations that change the flow of control, such as
//! loop unrolling or if-conversion.
//!
//! The global dead-code elimination here is the pass the paper had to turn
//! *off* to keep IFPROBBER and MFPixie branch counts in sync, and then
//! measured the cost of (Table 1: the dynamic fraction of instructions DCE
//! would have removed). Our reproduction measures the same quantity by
//! running each workload compiled both ways and comparing dynamic
//! instruction counts — see `bpredict`'s experiment driver.
//!
//! Branch identity is preserved: passes may *delete* a conditional branch
//! (constant condition, unreachable block) but never renumber the survivors,
//! so profiles keyed by [`trace_ir::BranchId`] remain valid across
//! optimization levels.
//!
//! ```
//! use mflang::compile;
//! use mfopt::Pipeline;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = compile(
//!     "fn main() { var debug: int = 0; if (debug) { emit(99); } emit(1); }",
//! )?;
//! let before = program.static_branch_count();
//! Pipeline::standard().run(&mut program);
//! assert!(program.static_branch_count() < before); // constant branch removed
//! # Ok(())
//! # }
//! ```

mod cleanup;
mod fold;
mod inline;
mod local;
mod pipeline;

// The CFG analyses the passes are built on live in `mfcheck` (so the
// verifier, predictors, and lint driver share them); re-exported here for
// the optimizer's historical API.
pub use mfcheck::{reachable_blocks, single_def_consts};

pub use cleanup::{dead_code, jump_thread, remove_unreachable};
pub use fold::fold_constants;
pub use inline::Inliner;
pub use local::{copy_propagate, local_cse};
pub use pipeline::{PassDefect, PassFn, Pipeline};
