//! Block-local copy propagation and common-subexpression elimination.

use std::collections::HashMap;

use trace_ir::{BinOp, Function, Instr, Reg, UnOp};

/// Rewrites operand registers through `Mov` chains within each block.
/// Returns true if anything changed.
///
/// The mapping is invalidated whenever either side of a copy is redefined,
/// so multi-definition registers (mutable guest variables) are handled
/// soundly. Propagation never crosses block boundaries.
pub fn copy_propagate(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let mut copies: HashMap<Reg, Reg> = HashMap::new();
        for instr in &mut block.instrs {
            // Rewrite uses through the current copy map.
            let rewritten = rewrite_uses(instr, &copies);
            changed |= rewritten;
            // A new definition kills every mapping involving the dst.
            if let Some(dst) = instr.dst() {
                copies.remove(&dst);
                copies.retain(|_, src| *src != dst);
            }
            if let Instr::Mov { dst, src } = instr {
                if dst != src {
                    copies.insert(*dst, *src);
                }
            }
        }
        // Terminators read registers too.
        let mut term_regs = Vec::new();
        block.term.for_each_use(|r| term_regs.push(r));
        if term_regs.iter().any(|r| copies.contains_key(r)) {
            match &mut block.term {
                trace_ir::Terminator::Branch { cond, .. } => {
                    if let Some(&s) = copies.get(cond) {
                        *cond = s;
                        changed = true;
                    }
                }
                trace_ir::Terminator::JumpTable { index, .. } => {
                    if let Some(&s) = copies.get(index) {
                        *index = s;
                        changed = true;
                    }
                }
                trace_ir::Terminator::Return { value: Some(v) } => {
                    if let Some(&s) = copies.get(v) {
                        *v = s;
                        changed = true;
                    }
                }
                _ => {}
            }
        }
    }
    changed
}

fn rewrite_uses(instr: &mut Instr, copies: &HashMap<Reg, Reg>) -> bool {
    let sub = |r: &mut Reg, changed: &mut bool| {
        if let Some(&s) = copies.get(r) {
            *r = s;
            *changed = true;
        }
    };
    let mut changed = false;
    match instr {
        Instr::Unop { src, .. } | Instr::Mov { src, .. } => sub(src, &mut changed),
        Instr::Binop { lhs, rhs, .. } => {
            sub(lhs, &mut changed);
            sub(rhs, &mut changed);
        }
        Instr::Select {
            cond,
            if_true,
            if_false,
            ..
        } => {
            sub(cond, &mut changed);
            sub(if_true, &mut changed);
            sub(if_false, &mut changed);
        }
        Instr::Load { arr, index, .. } => {
            sub(arr, &mut changed);
            sub(index, &mut changed);
        }
        Instr::Store { arr, index, src } => {
            sub(arr, &mut changed);
            sub(index, &mut changed);
            sub(src, &mut changed);
        }
        Instr::NewIntArray { len, .. } | Instr::NewFloatArray { len, .. } => sub(len, &mut changed),
        Instr::ArrayLen { arr, .. } => sub(arr, &mut changed),
        Instr::GlobalSet { src, .. } => sub(src, &mut changed),
        Instr::Call { args, .. } => {
            for a in args {
                sub(a, &mut changed);
            }
        }
        Instr::CallIndirect { target, args, .. } => {
            sub(target, &mut changed);
            for a in args {
                sub(a, &mut changed);
            }
        }
        Instr::Emit { src } => sub(src, &mut changed),
        Instr::Const { .. }
        | Instr::ConstArray { .. }
        | Instr::GlobalGet { .. }
        | Instr::FuncAddr { .. } => {}
    }
    changed
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, Reg, Reg),
    Un(UnOp, Reg),
}

impl ExprKey {
    fn uses(&self, r: Reg) -> bool {
        match self {
            ExprKey::Bin(_, a, b) => *a == r || *b == r,
            ExprKey::Un(_, a) => *a == r,
        }
    }
}

/// Replaces repeated pure ALU computations within a block with a `Mov` from
/// the first result. Returns true if anything changed.
///
/// Loads are not CSE'd (stores and calls may alias), and trapping operations
/// are eligible only because re-using an earlier identical divide preserves
/// the trap.
pub fn local_cse(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let mut available: HashMap<ExprKey, Reg> = HashMap::new();
        for instr in &mut block.instrs {
            let key = match instr {
                Instr::Binop { op, lhs, rhs, .. } => Some(ExprKey::Bin(*op, *lhs, *rhs)),
                Instr::Unop { op, src, .. } => Some(ExprKey::Un(*op, *src)),
                _ => None,
            };
            let hit = key.as_ref().and_then(|k| available.get(k).copied());
            match (hit, instr.dst()) {
                (Some(prev), Some(dst)) => {
                    *instr = Instr::Mov { dst, src: prev };
                    changed = true;
                    // Redefinition invalidates expressions using or
                    // producing dst; the reused value lives on in `prev`.
                    available.retain(|k, v| *v != dst && !k.uses(dst));
                }
                (None, Some(dst)) => {
                    available.retain(|k, v| *v != dst && !k.uses(dst));
                    if let Some(k) = key {
                        // `r = r op x` computes a value that is immediately
                        // clobbered by its own definition — not reusable.
                        if !k.uses(dst) {
                            available.insert(k, dst);
                        }
                    }
                }
                (_, None) => {}
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::Program;

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("main").unwrap()
    }

    #[test]
    fn copies_propagate_within_block() {
        let mut f = FunctionBuilder::new("main", 1);
        let x = f.mov(f.param(0));
        let y = f.mov(x);
        let z = f.binop(BinOp::Add, y, y);
        f.emit_value(z);
        f.ret(Some(z));
        let mut p = build(f);
        assert!(copy_propagate(&mut p.functions[0]));
        // y's uses now read param 0 directly (through x then param chain).
        match p.functions[0].blocks[0].instrs[2] {
            Instr::Binop { lhs, rhs, .. } => {
                assert_eq!(lhs, Reg(0));
                assert_eq!(rhs, Reg(0));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn copies_killed_by_redefinition() {
        let mut f = FunctionBuilder::new("main", 2);
        let x = f.mov(f.param(0));
        f.mov_to(x, f.param(1)); // x redefined
        let y = f.binop(BinOp::Add, x, x);
        f.emit_value(y);
        f.ret(None);
        let mut p = build(f);
        copy_propagate(&mut p.functions[0]);
        match p.functions[0].blocks[0].instrs[2] {
            Instr::Binop { lhs, rhs, .. } => {
                // Must read param 1 (the latest copy), never param 0.
                assert_eq!(lhs, Reg(1));
                assert_eq!(rhs, Reg(1));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cse_merges_identical_binops() {
        let mut f = FunctionBuilder::new("main", 2);
        let a = f.binop(BinOp::Add, f.param(0), f.param(1));
        let b = f.binop(BinOp::Add, f.param(0), f.param(1));
        let c = f.binop(BinOp::Mul, a, b);
        f.emit_value(c);
        f.ret(None);
        let mut p = build(f);
        assert!(local_cse(&mut p.functions[0]));
        assert!(matches!(
            p.functions[0].blocks[0].instrs[1],
            Instr::Mov { src, .. } if src == a
        ));
    }

    #[test]
    fn cse_invalidated_by_operand_redefinition() {
        let mut f = FunctionBuilder::new("main", 2);
        let p0 = f.param(0);
        let a = f.binop(BinOp::Add, p0, f.param(1));
        f.mov_to(p0, a); // p0 redefined
        let b = f.binop(BinOp::Add, p0, f.param(1));
        f.emit_value(b);
        f.ret(None);
        let mut p = build(f);
        assert!(!local_cse(&mut p.functions[0]));
        assert!(matches!(
            p.functions[0].blocks[0].instrs[2],
            Instr::Binop { .. }
        ));
    }
}
