//! Constant folding and branch simplification.

use trace_ir::{BinOp, Function, Instr, Terminator, UnOp, Value};

use mfcheck::{all_uses_initialized, single_def_consts};

/// Folds instructions whose operands are single-definition constants, and
/// rewrites conditional branches with constant conditions into jumps (the
/// "branches with constant outcome" the paper's DCE removed). Returns true
/// if anything changed.
///
/// `single_def_consts` is only sound when every use executes after its
/// register's definition; the VM hands an uninitialized read a default
/// value, not the constant. Functions that fail definite-initialization
/// are therefore left untouched (the verifier reports them as
/// `use-before-def` errors; the lowerer never produces such code).
pub fn fold_constants(func: &mut Function) -> bool {
    if !all_uses_initialized(func) {
        return false;
    }
    let consts = single_def_consts(func);
    let mut changed = false;

    for block in &mut func.blocks {
        for instr in &mut block.instrs {
            let folded = match instr {
                Instr::Binop { dst, op, lhs, rhs } => match (consts.get(lhs), consts.get(rhs)) {
                    (Some(&l), Some(&r)) => {
                        fold_binop(*op, l, r).map(|value| Instr::Const { dst: *dst, value })
                    }
                    _ => None,
                },
                Instr::Unop { dst, op, src } => consts
                    .get(src)
                    .and_then(|&v| fold_unop(*op, v))
                    .map(|value| Instr::Const { dst: *dst, value }),
                Instr::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => consts.get(cond).and_then(|c| c.as_int()).map(|c| {
                    let src = if c != 0 { *if_true } else { *if_false };
                    Instr::Mov { dst: *dst, src }
                }),
                Instr::Mov { dst, src } => consts
                    .get(src)
                    .map(|&value| Instr::Const { dst: *dst, value }),
                _ => None,
            };
            if let Some(new) = folded {
                if *instr != new {
                    *instr = new;
                    changed = true;
                }
            }
        }
        if let Terminator::Branch {
            cond,
            taken,
            not_taken,
            ..
        } = block.term
        {
            // Constant condition, or both edges to one place: the branch has
            // a constant outcome and a real DCE pass removes it.
            let const_dir = consts.get(&cond).and_then(|c| c.as_int());
            let target = match const_dir {
                Some(c) => Some(if c != 0 { taken } else { not_taken }),
                None if taken == not_taken => Some(taken),
                None => None,
            };
            if let Some(t) = target {
                block.term = Terminator::Jump(t);
                changed = true;
            }
        }
    }
    changed
}

fn fold_binop(op: BinOp, l: Value, r: Value) -> Option<Value> {
    use BinOp::*;
    let int =
        |f: fn(i64, i64) -> i64| -> Option<Value> { Some(Value::Int(f(l.as_int()?, r.as_int()?))) };
    let float = |f: fn(f64, f64) -> f64| -> Option<Value> {
        Some(Value::Float(f(l.as_float()?, r.as_float()?)))
    };
    let icmp = |f: fn(&i64, &i64) -> bool| -> Option<Value> {
        Some(Value::Int(i64::from(f(&l.as_int()?, &r.as_int()?))))
    };
    let fcmp = |f: fn(&f64, &f64) -> bool| -> Option<Value> {
        Some(Value::Int(i64::from(f(&l.as_float()?, &r.as_float()?))))
    };
    match op {
        Add => {
            #[cfg(feature = "seeded-defects")]
            if mfdefect::active("opt-fold-add-off-by-one") {
                return int(|a, b| a.wrapping_add(b).wrapping_add(1));
            }
            int(i64::wrapping_add)
        }
        Sub => int(i64::wrapping_sub),
        Mul => int(i64::wrapping_mul),
        // Division folds only when safe; a trapping divide must stay put.
        Div => match r.as_int()? {
            0 => None,
            d => Some(Value::Int(l.as_int()?.wrapping_div(d))),
        },
        Rem => match r.as_int()? {
            0 => None,
            d => Some(Value::Int(l.as_int()?.wrapping_rem(d))),
        },
        FAdd => float(|a, b| a + b),
        FSub => float(|a, b| a - b),
        FMul => float(|a, b| a * b),
        FDiv => float(|a, b| a / b),
        And => int(|a, b| a & b),
        Or => int(|a, b| a | b),
        Xor => int(|a, b| a ^ b),
        Shl => int(|a, b| a.wrapping_shl(b as u32 & 63)),
        Shr => int(|a, b| a.wrapping_shr(b as u32 & 63)),
        Eq => icmp(i64::eq),
        Ne => icmp(i64::ne),
        Lt => icmp(i64::lt),
        Le => icmp(i64::le),
        Gt => icmp(i64::gt),
        Ge => icmp(i64::ge),
        FEq => fcmp(|a, b| a == b),
        FNe => fcmp(|a, b| a != b),
        FLt => fcmp(|a, b| a < b),
        FLe => fcmp(|a, b| a <= b),
        FGt => fcmp(|a, b| a > b),
        FGe => fcmp(|a, b| a >= b),
        FMin => float(f64::min),
        FMax => float(f64::max),
    }
}

fn fold_unop(op: UnOp, v: Value) -> Option<Value> {
    use UnOp::*;
    Some(match op {
        Neg => Value::Int(v.as_int()?.wrapping_neg()),
        FNeg => Value::Float(-v.as_float()?),
        Not => Value::Int(!v.as_int()?),
        LNot => Value::Int(i64::from(v.as_int()? == 0)),
        IntToFloat => Value::Float(v.as_int()? as f64),
        FloatToInt => Value::Int(v.as_float()? as i64),
        Sqrt => Value::Float(v.as_float()?.sqrt()),
        Sin => Value::Float(v.as_float()?.sin()),
        Cos => Value::Float(v.as_float()?.cos()),
        Exp => Value::Float(v.as_float()?.exp()),
        Log => Value::Float(v.as_float()?.ln()),
        Floor => Value::Float(v.as_float()?.floor()),
        Abs => Value::Int(v.as_int()?.wrapping_abs()),
        FAbs => Value::Float(v.as_float()?.abs()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::{BranchKind, Program};

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("main").unwrap()
    }

    #[test]
    fn folds_arithmetic_chain() {
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.const_int(6);
        let b = f.const_int(7);
        let c = f.binop(BinOp::Mul, a, b);
        f.emit_value(c);
        f.ret(None);
        let mut p = build(f);
        assert!(fold_constants(&mut p.functions[0]));
        assert!(matches!(
            p.functions[0].blocks[0].instrs[2],
            Instr::Const {
                value: Value::Int(42),
                ..
            }
        ));
    }

    #[test]
    fn folds_constant_branch_to_jump() {
        let mut f = FunctionBuilder::new("main", 0);
        let c = f.const_int(0);
        let t = f.new_block();
        let e = f.new_block();
        f.branch(c, t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.ret(None);
        f.switch_to(e);
        f.ret(None);
        let mut p = build(f);
        assert!(fold_constants(&mut p.functions[0]));
        assert!(matches!(
            p.functions[0].blocks[0].term,
            Terminator::Jump(t) if t.index() == 2
        ));
        assert_eq!(p.static_branch_count(), 0);
    }

    #[test]
    fn does_not_fold_trapping_division() {
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.const_int(1);
        let z = f.const_int(0);
        let d = f.binop(BinOp::Div, a, z);
        f.emit_value(d);
        f.ret(None);
        let mut p = build(f);
        fold_constants(&mut p.functions[0]);
        assert!(matches!(
            p.functions[0].blocks[0].instrs[2],
            Instr::Binop { op: BinOp::Div, .. }
        ));
    }

    #[test]
    fn folds_select_and_unops() {
        let mut f = FunctionBuilder::new("main", 0);
        let c = f.const_int(1);
        let a = f.const_int(10);
        let b = f.const_int(20);
        let s = f.select(c, a, b);
        let n = f.unop(UnOp::Neg, s);
        f.emit_value(n);
        f.ret(None);
        let mut p = build(f);
        // First round: select -> mov; second: mov -> const, neg folds.
        while fold_constants(&mut p.functions[0]) {}
        assert!(matches!(
            p.functions[0].blocks[0].instrs[4],
            Instr::Const {
                value: Value::Int(-10),
                ..
            }
        ));
    }

    #[test]
    fn refuses_to_fold_uninit_reading_functions() {
        // The entry branches on x before x's only (constant) definition
        // executes. The VM reads 0 and falls through; folding the branch
        // on "x = 1" would take the other edge. The definite-init gate
        // must keep the fold from firing at all.
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.new_reg();
        let t = f.new_block();
        let e = f.new_block();
        f.branch(x, t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.ret(None);
        f.switch_to(e);
        f.ret(None);
        let mut p = build(f);
        // Give x its single definition — a Const in the taken arm, after
        // the branch that reads it (the builder has no const-into-reg
        // helper, so splice it in directly).
        p.functions[0].blocks[1].instrs.push(Instr::Const {
            dst: x,
            value: Value::Int(1),
        });
        assert_eq!(
            single_def_consts(&p.functions[0]).get(&x),
            Some(&Value::Int(1))
        );
        assert!(!fold_constants(&mut p.functions[0]));
        assert!(matches!(
            p.functions[0].blocks[0].term,
            Terminator::Branch { .. }
        ));
    }

    #[test]
    fn multi_def_regs_not_folded() {
        let mut f = FunctionBuilder::new("main", 1);
        let a = f.const_int(5);
        f.mov_to(a, f.param(0)); // second def
        let b = f.const_int(1);
        let c = f.binop(BinOp::Add, a, b);
        f.emit_value(c);
        f.ret(None);
        let mut p = build(f);
        fold_constants(&mut p.functions[0]);
        assert!(matches!(
            p.functions[0].blocks[0].instrs[3],
            Instr::Binop { .. }
        ));
    }
}
