//! The pass manager.
//!
//! Passes are held as a named list so the pipeline can be inspected,
//! extended with custom passes in tests, and — in `verify_each` mode —
//! sanitized: the semantic verifier runs after every pass that changed
//! anything, so a defect is attributed to the exact pass (and round) that
//! introduced it.

use std::fmt;

use trace_ir::{Function, Program};

use mfcheck::{Diagnostic, Severity};

use crate::cleanup::{dead_code, jump_thread, remove_unreachable};
use crate::fold::fold_constants;
use crate::local::{copy_propagate, local_cse};

/// One intraprocedural optimization pass: rewrites a function in place
/// and reports whether it changed anything.
pub type PassFn = fn(&mut Function) -> bool;

/// Name the verifier uses when the *input* program is already defective
/// (no pass is to blame).
const INPUT_STAGE: &str = "<input>";

/// A defect the semantic verifier attributed to one pipeline stage.
#[derive(Clone, Debug)]
pub struct PassDefect {
    /// The pass that introduced the defect, or `"<input>"` when the
    /// program was defective before any pass ran.
    pub pass: &'static str,
    /// 1-based round the pass ran in (0 for the input stage).
    pub round: u32,
    /// The function being optimized when the defect appeared.
    pub func: String,
    /// Every error-severity diagnostic the verifier reported.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for PassDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pass == INPUT_STAGE {
            write!(
                f,
                "input program is defective before optimization ({} error{})",
                self.diagnostics.len(),
                if self.diagnostics.len() == 1 { "" } else { "s" }
            )?;
        } else {
            write!(
                f,
                "pass `{}` (round {}, fn {}) introduced {} error{}",
                self.pass,
                self.round,
                self.func,
                self.diagnostics.len(),
                if self.diagnostics.len() == 1 { "" } else { "s" }
            )?;
        }
        for d in &self.diagnostics {
            write!(f, "\n{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PassDefect {}

/// An ordered sequence of optimization passes run to a fixpoint (bounded by
/// a round limit).
#[derive(Clone, Debug)]
pub struct Pipeline {
    rounds: u32,
    passes: Vec<(&'static str, PassFn)>,
    verify_each: bool,
}

// Manual: comparing the function pointers themselves is both unreliable
// (rustc may unify or duplicate them across codegen units) and
// unnecessary — the name identifies the pass.
impl PartialEq for Pipeline {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.verify_each == other.verify_each
            && self.passes.len() == other.passes.len()
            && self
                .passes
                .iter()
                .zip(&other.passes)
                .all(|((a, _), (b, _))| a == b)
    }
}

impl Eq for Pipeline {}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::standard()
    }
}

impl Pipeline {
    /// The full classical pipeline, corresponding to the paper's "typical
    /// classical intraprocedural optimizations" *plus* the global dead-code
    /// elimination the paper turned off for profiling and measured in
    /// Table 1.
    pub fn standard() -> Self {
        Pipeline {
            rounds: 4,
            passes: vec![
                ("fold-constants", fold_constants as PassFn),
                ("copy-propagate", copy_propagate),
                ("local-cse", local_cse),
                ("jump-thread", jump_thread),
                ("remove-unreachable", remove_unreachable),
                ("dead-code", dead_code),
            ],
            verify_each: false,
        }
    }

    /// No passes at all — the profiling configuration (DCE off), used as the
    /// baseline side of the Table 1 measurement.
    pub fn none() -> Self {
        Pipeline {
            rounds: 0,
            passes: Vec::new(),
            verify_each: false,
        }
    }

    /// Standard pipeline without dead-code elimination or branch folding —
    /// cleanups only. Useful for isolating how much of Table 1's dead code
    /// comes from DCE proper.
    pub fn without_dce() -> Self {
        let mut p = Pipeline::standard();
        p.passes
            .retain(|&(name, _)| name != "fold-constants" && name != "dead-code");
        p
    }

    /// Sets the round limit.
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Appends a custom pass to the end of each round's pass sequence.
    /// Used by tests (and ablations) to splice experimental rewrites into
    /// the managed, verified pipeline.
    pub fn with_pass(mut self, name: &'static str, pass: PassFn) -> Self {
        self.passes.push((name, pass));
        self
    }

    /// Enables (or disables) verify-each mode: [`Pipeline::run`] will
    /// verify the program after every pass that changed anything and
    /// panic with the offending pass's name on a defect. Prefer
    /// [`Pipeline::run_checked`] to handle defects as values.
    pub fn verify_each(mut self, on: bool) -> Self {
        self.verify_each = on;
        self
    }

    /// The names of the passes each round runs, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|&(name, _)| name).collect()
    }

    /// Runs the pipeline over every function. Returns true if any pass
    /// changed anything.
    ///
    /// # Panics
    ///
    /// In verify-each mode, panics if the verifier attributes a semantic
    /// defect to a pass. Debug builds always assert the program still
    /// validates afterwards; the passes preserve structural validity by
    /// construction.
    pub fn run(&self, program: &mut Program) -> bool {
        if self.verify_each {
            return self
                .run_checked(program)
                .unwrap_or_else(|defect| panic!("{defect}"));
        }
        let mut any = false;
        for _ in 0..self.rounds {
            let mut changed = false;
            for func in &mut program.functions {
                for &(_, pass) in &self.passes {
                    changed |= pass(func);
                }
            }
            any |= changed;
            if !changed {
                break;
            }
        }
        debug_assert_eq!(program.validate(), Ok(()));
        any
    }

    /// Runs the pipeline with the semantic verifier interleaved: the
    /// input is verified once, and then again after every pass that
    /// reports a change. The transformation sequence is identical to
    /// [`Pipeline::run`] — only observation is added — so the optimized
    /// program (and any content-addressed cache key over it) is the same.
    ///
    /// # Errors
    ///
    /// Returns a [`PassDefect`] naming the pass (and round, and function)
    /// after which error-severity diagnostics first appeared, or the
    /// `"<input>"` stage when the program was defective to begin with.
    pub fn run_checked(&self, program: &mut Program) -> Result<bool, PassDefect> {
        let errors = |program: &Program| -> Vec<Diagnostic> {
            mfcheck::verify_program(program)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect()
        };
        let input_errors = errors(program);
        if !input_errors.is_empty() {
            return Err(PassDefect {
                pass: INPUT_STAGE,
                round: 0,
                func: String::new(),
                diagnostics: input_errors,
            });
        }
        let mut any = false;
        for round in 1..=self.rounds {
            let mut changed = false;
            for fi in 0..program.functions.len() {
                for &(name, pass) in &self.passes {
                    if !pass(&mut program.functions[fi]) {
                        continue;
                    }
                    changed = true;
                    let found = errors(program);
                    if !found.is_empty() {
                        return Err(PassDefect {
                            pass: name,
                            round,
                            func: program.functions[fi].name.clone(),
                            diagnostics: found,
                        });
                    }
                }
            }
            any |= changed;
            if !changed {
                break;
            }
        }
        Ok(any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::Instr;

    #[test]
    fn none_pipeline_is_identity() {
        let mut p = mflang::compile("fn main() { emit(1 + 2); }").unwrap();
        let before = p.clone();
        assert!(!Pipeline::none().run(&mut p));
        assert_eq!(p, before);
    }

    #[test]
    fn standard_reaches_fixpoint() {
        let mut p = mflang::compile(
            r#"
            fn main() {
                var debug: int = 0;
                var scale: int = 4 * 8;
                if (debug) { emit(123); }
                emit(scale);
            }
            "#,
        )
        .unwrap();
        Pipeline::standard().run(&mut p);
        let snapshot = p.clone();
        // Idempotent once at fixpoint.
        Pipeline::standard().run(&mut p);
        assert_eq!(p, snapshot);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn run_checked_matches_run_on_clean_programs() {
        let src = r#"
            fn main() {
                var total: int = 0;
                for (var i: int = 0; i < 10; i = i + 1) {
                    if (i % 3 == 0) { total = total + i; }
                }
                emit(total);
            }
        "#;
        let mut a = mflang::compile(src).unwrap();
        let mut b = a.clone();
        let changed_plain = Pipeline::standard().run(&mut a);
        let changed_checked = Pipeline::standard().run_checked(&mut b).unwrap();
        assert_eq!(changed_plain, changed_checked);
        assert_eq!(a, b, "verification must not perturb the transforms");
    }

    /// A deliberately broken "optimization": deletes the entry block's
    /// first defining instruction, leaving its uses uninitialized.
    fn clobber_first_def(func: &mut Function) -> bool {
        let entry = &mut func.blocks[0];
        if let Some(pos) = entry.instrs.iter().position(|i| i.dst().is_some()) {
            entry.instrs.remove(pos);
            true
        } else {
            false
        }
    }

    #[test]
    fn run_checked_names_the_offending_pass() {
        let mut p = mflang::compile("fn main() { var x: int = 3; emit(x + 1); }").unwrap();
        let pipeline = Pipeline::none()
            .rounds(1)
            .with_pass("clobber", clobber_first_def);
        let defect = pipeline.run_checked(&mut p).unwrap_err();
        assert_eq!(defect.pass, "clobber");
        assert_eq!(defect.round, 1);
        assert_eq!(defect.func, "main");
        assert!(defect
            .diagnostics
            .iter()
            .any(|d| d.code == "use-before-def"));
        let rendered = defect.to_string();
        assert!(rendered.contains("pass `clobber`"), "{rendered}");
    }

    #[test]
    fn run_checked_rejects_defective_input() {
        let mut p = mflang::compile("fn main() { emit(7); }").unwrap();
        // Corrupt the input: read a fresh, never-defined register.
        let r = p.functions[0].new_reg();
        p.functions[0].blocks[0].instrs.push(Instr::Emit { src: r });
        let defect = Pipeline::standard().run_checked(&mut p).unwrap_err();
        assert_eq!(defect.pass, "<input>");
        assert_eq!(defect.round, 0);
    }

    #[test]
    fn verify_each_mode_panics_with_the_pass_name() {
        let mut p = mflang::compile("fn main() { var x: int = 3; emit(x + 1); }").unwrap();
        let pipeline = Pipeline::none()
            .rounds(1)
            .with_pass("clobber", clobber_first_def)
            .verify_each(true);
        let err = std::panic::catch_unwind(move || pipeline.run(&mut p)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("clobber"), "{msg}");
    }

    #[test]
    fn pipelines_compare_by_shape() {
        assert_eq!(Pipeline::standard(), Pipeline::standard());
        assert_ne!(Pipeline::standard(), Pipeline::without_dce());
        assert_ne!(Pipeline::standard(), Pipeline::standard().verify_each(true));
        assert_eq!(
            Pipeline::without_dce().pass_names(),
            vec![
                "copy-propagate",
                "local-cse",
                "jump-thread",
                "remove-unreachable"
            ]
        );
    }
}
