//! The pass manager.

use trace_ir::Program;

use crate::cleanup::{dead_code, jump_thread, remove_unreachable};
use crate::fold::fold_constants;
use crate::local::{copy_propagate, local_cse};

/// An ordered sequence of optimization passes run to a fixpoint (bounded by
/// a round limit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pipeline {
    rounds: u32,
    fold: bool,
    copy_prop: bool,
    cse: bool,
    thread: bool,
    unreachable: bool,
    dce: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::standard()
    }
}

impl Pipeline {
    /// The full classical pipeline, corresponding to the paper's "typical
    /// classical intraprocedural optimizations" *plus* the global dead-code
    /// elimination the paper turned off for profiling and measured in
    /// Table 1.
    pub fn standard() -> Self {
        Pipeline {
            rounds: 4,
            fold: true,
            copy_prop: true,
            cse: true,
            thread: true,
            unreachable: true,
            dce: true,
        }
    }

    /// No passes at all — the profiling configuration (DCE off), used as the
    /// baseline side of the Table 1 measurement.
    pub fn none() -> Self {
        Pipeline {
            rounds: 0,
            fold: false,
            copy_prop: false,
            cse: false,
            thread: false,
            unreachable: false,
            dce: false,
        }
    }

    /// Standard pipeline without dead-code elimination or branch folding —
    /// cleanups only. Useful for isolating how much of Table 1's dead code
    /// comes from DCE proper.
    pub fn without_dce() -> Self {
        Pipeline {
            fold: false,
            dce: false,
            ..Pipeline::standard()
        }
    }

    /// Sets the round limit.
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Runs the pipeline over every function. Returns true if any pass
    /// changed anything.
    ///
    /// # Panics
    ///
    /// Debug builds assert the program still validates afterwards; the
    /// passes preserve structural validity by construction.
    pub fn run(&self, program: &mut Program) -> bool {
        let mut any = false;
        for _ in 0..self.rounds {
            let mut changed = false;
            for func in &mut program.functions {
                if self.fold {
                    changed |= fold_constants(func);
                }
                if self.copy_prop {
                    changed |= copy_propagate(func);
                }
                if self.cse {
                    changed |= local_cse(func);
                }
                if self.thread {
                    changed |= jump_thread(func);
                }
                if self.unreachable {
                    changed |= remove_unreachable(func);
                }
                if self.dce {
                    changed |= dead_code(func);
                }
            }
            any |= changed;
            if !changed {
                break;
            }
        }
        debug_assert_eq!(program.validate(), Ok(()));
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_pipeline_is_identity() {
        let mut p = mflang::compile("fn main() { emit(1 + 2); }").unwrap();
        let before = p.clone();
        assert!(!Pipeline::none().run(&mut p));
        assert_eq!(p, before);
    }

    #[test]
    fn standard_reaches_fixpoint() {
        let mut p = mflang::compile(
            r#"
            fn main() {
                var debug: int = 0;
                var scale: int = 4 * 8;
                if (debug) { emit(123); }
                emit(scale);
            }
            "#,
        )
        .unwrap();
        Pipeline::standard().run(&mut p);
        let snapshot = p.clone();
        // Idempotent once at fixpoint.
        Pipeline::standard().run(&mut p);
        assert_eq!(p, snapshot);
        assert!(p.validate().is_ok());
    }
}
