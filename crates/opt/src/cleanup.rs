//! CFG cleanup: jump threading, unreachable-block removal, dead-code
//! elimination.

use std::collections::HashSet;

use trace_ir::{BlockId, Function, Reg, Terminator};

use mfcheck::reachable_blocks;

/// Redirects transfers through empty forwarding blocks (a block with no
/// instructions whose terminator is an unconditional jump). Returns true if
/// anything changed.
///
/// Forwarding chains are followed to their end; cycles of empty blocks (an
/// empty infinite loop) are left alone.
pub fn jump_thread(func: &mut Function) -> bool {
    // forward[b] = Some(t) when block b is empty and just jumps to t.
    let forward: Vec<Option<BlockId>> = func
        .blocks
        .iter()
        .map(|b| match b.term {
            Terminator::Jump(t) if b.instrs.is_empty() => Some(t),
            _ => None,
        })
        .collect();

    let resolve = |start: BlockId| -> BlockId {
        let mut cur = start;
        let mut seen = HashSet::new();
        while let Some(next) = forward[cur.index()] {
            if !seen.insert(cur) {
                return start; // cycle of empty blocks
            }
            cur = next;
        }
        cur
    };

    let mut changed = false;
    for block in &mut func.blocks {
        let mut threaded = false;
        block.term.map_successors(|t| {
            let r = resolve(t);
            if r != t {
                changed = true;
                threaded = true;
            }
            r
        });
        #[cfg(feature = "seeded-defects")]
        if threaded && mfdefect::active("opt-thread-swaps-edges") {
            if let Terminator::Branch {
                taken, not_taken, ..
            } = &mut block.term
            {
                std::mem::swap(taken, not_taken);
            }
        }
        #[cfg(not(feature = "seeded-defects"))]
        let _ = threaded;
    }
    changed
}

/// Removes blocks unreachable from the entry, renumbering the survivors.
/// Returns true if anything changed.
///
/// Conditional branches inside removed blocks disappear (their
/// [`trace_ir::BranchId`]s are simply no longer live); surviving branches
/// keep their ids.
pub fn remove_unreachable(func: &mut Function) -> bool {
    let seen = reachable_blocks(func);
    if seen.iter().all(|&s| s) {
        return false;
    }
    let mut remap = vec![BlockId(0); func.blocks.len()];
    let mut next = 0u32;
    for (i, &live) in seen.iter().enumerate() {
        if live {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let old_blocks = std::mem::take(&mut func.blocks);
    for (i, mut block) in old_blocks.into_iter().enumerate() {
        if !seen[i] {
            continue;
        }
        block.term.map_successors(|t| remap[t.index()]);
        func.blocks.push(block);
    }
    true
}

/// Removes instructions whose results are never used and that have no side
/// effects (global dead-code elimination at the instruction level — the
/// paper's Table 1 pass). Returns true if anything changed.
pub fn dead_code(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut used: HashSet<Reg> = HashSet::new();
        for block in &func.blocks {
            for instr in &block.instrs {
                instr.for_each_use(|r| {
                    used.insert(r);
                });
            }
            block.term.for_each_use(|r| {
                used.insert(r);
            });
        }
        let mut removed = false;
        for block in &mut func.blocks {
            let before = block.instrs.len();
            block.instrs.retain(|instr| {
                #[cfg(feature = "seeded-defects")]
                if mfdefect::active("opt-dce-drops-emit")
                    && matches!(instr, trace_ir::Instr::Emit { .. })
                {
                    return false;
                }
                instr.has_side_effects() || instr.dst().is_none_or(|dst| used.contains(&dst))
            });
            removed |= block.instrs.len() != before;
        }
        if !removed {
            break;
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::{BinOp, BranchKind, Instr, Program};

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("main").unwrap()
    }

    #[test]
    fn threads_through_empty_blocks() {
        let mut f = FunctionBuilder::new("main", 0);
        let hop = f.new_block();
        let end = f.new_block();
        f.jump(hop);
        f.switch_to(hop);
        f.jump(end);
        f.switch_to(end);
        f.ret(None);
        let mut p = build(f);
        assert!(jump_thread(&mut p.functions[0]));
        assert!(matches!(
            p.functions[0].blocks[0].term,
            Terminator::Jump(t) if t.index() == 2
        ));
    }

    #[test]
    fn empty_cycle_is_left_alone() {
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.new_block();
        let b = f.new_block();
        f.jump(a);
        f.switch_to(a);
        f.jump(b);
        f.switch_to(b);
        f.jump(a);
        let mut p = build(f);
        jump_thread(&mut p.functions[0]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn removes_unreachable_and_renumbers() {
        let mut f = FunctionBuilder::new("main", 0);
        let dead = f.new_block();
        let live = f.new_block();
        f.jump(live);
        f.switch_to(dead);
        let c = f.const_int(1);
        let t = f.new_block();
        f.branch(c, t, t, 1, BranchKind::If);
        f.switch_to(t);
        f.ret(None);
        f.switch_to(live);
        f.ret(None);
        let mut p = build(f);
        assert_eq!(p.static_branch_count(), 1);
        assert!(remove_unreachable(&mut p.functions[0]));
        assert_eq!(p.functions[0].blocks.len(), 2);
        assert_eq!(p.static_branch_count(), 0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn dead_code_removes_unused_chains() {
        let mut f = FunctionBuilder::new("main", 1);
        let a = f.const_int(5);
        let b = f.binop(BinOp::Add, a, a); // dead chain
        let _c = f.binop(BinOp::Mul, b, b); // dead
        let live = f.binop(BinOp::Add, f.param(0), f.param(0));
        f.emit_value(live);
        f.ret(None);
        let mut p = build(f);
        assert!(dead_code(&mut p.functions[0]));
        // Only the live add and the emit survive.
        assert_eq!(p.functions[0].blocks[0].instrs.len(), 2);
    }

    #[test]
    fn dead_code_keeps_side_effects() {
        let mut f = FunctionBuilder::new("main", 1);
        let n = f.const_int(4);
        let arr = f.new_int_array(n); // allocation kept
        let zero = f.const_int(0);
        f.store(arr, zero, zero); // store kept
        let _unused = f.load(arr, zero); // dead load removed
        f.ret(None);
        let mut p = build(f);
        dead_code(&mut p.functions[0]);
        let instrs = &p.functions[0].blocks[0].instrs;
        assert!(instrs.iter().any(|i| matches!(i, Instr::Store { .. })));
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::NewIntArray { .. })));
        assert!(!instrs.iter().any(|i| matches!(i, Instr::Load { .. })));
    }
}
