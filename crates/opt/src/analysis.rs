//! Shared analyses: single-definition constants and reachability.

use std::collections::HashMap;

use trace_ir::{Function, Instr, Reg, Value};

/// Registers with exactly one static definition, where that definition is a
/// `Const`. Such registers hold the same value at every (post-definition)
/// use, so their value can be folded into consumers.
///
/// The analysis assumes (as the `mflang` lowerer guarantees) that no use of
/// a register executes before its definition; hand-built IR that reads a
/// register "uninitialized" would observe zero instead of the constant and
/// must not be optimized with this pipeline.
pub fn single_def_consts(func: &Function) -> HashMap<Reg, Value> {
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    let mut const_def: HashMap<Reg, Value> = HashMap::new();
    // Parameters are defined at entry.
    for p in 0..func.num_params {
        def_count.insert(Reg(p), 1);
    }
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(dst) = instr.dst() {
                *def_count.entry(dst).or_insert(0) += 1;
                if let Instr::Const { value, .. } = instr {
                    const_def.insert(dst, *value);
                }
            }
        }
    }
    const_def.retain(|reg, _| def_count.get(reg) == Some(&1));
    const_def
}

/// The set of blocks reachable from the entry block, as a bitmask over block
/// indices.
pub fn reachable_blocks(func: &Function) -> Vec<bool> {
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        func.blocks[b].term.for_each_successor(|s| {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s.index());
            }
        });
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::FunctionBuilder;
    use trace_ir::BinOp;

    #[test]
    fn finds_single_def_consts() {
        let mut f = FunctionBuilder::new("f", 1);
        let a = f.const_int(5);
        let b = f.const_int(7);
        let _sum = f.binop(BinOp::Add, a, b);
        // Redefine b: no longer single-def.
        f.mov_to(b, a);
        f.ret(None);
        // finish() consumes; re-create function by building via ProgramBuilder
        let mut pb = trace_ir::builder::ProgramBuilder::new();
        pb.add_function(f.finish());
        let p = pb.finish("f").unwrap();
        let consts = single_def_consts(&p.functions[0]);
        assert_eq!(consts.get(&a), Some(&Value::Int(5)));
        assert_eq!(consts.get(&b), None);
    }

    #[test]
    fn params_are_never_consts() {
        let mut f = FunctionBuilder::new("f", 1);
        let p0 = f.param(0);
        let c = f.const_int(1);
        let _x = f.binop(BinOp::Add, p0, c);
        f.ret(None);
        let mut pb = trace_ir::builder::ProgramBuilder::new();
        pb.add_function(f.finish());
        let p = pb.finish("f").unwrap();
        let consts = single_def_consts(&p.functions[0]);
        assert!(!consts.contains_key(&p0));
    }

    #[test]
    fn reachability() {
        let mut f = FunctionBuilder::new("f", 0);
        let live = f.new_block();
        let dead = f.new_block();
        f.jump(live);
        f.switch_to(live);
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        let mut pb = trace_ir::builder::ProgramBuilder::new();
        pb.add_function(f.finish());
        let p = pb.finish("f").unwrap();
        let seen = reachable_blocks(&p.functions[0]);
        assert_eq!(seen, vec![true, true, false]);
    }
}
