//! Procedure inlining.
//!
//! The paper is emphatic that "a compiler that is going to find large
//! amounts of ILP must be able to inline the most commonly called
//! procedures — an executed call that is not inlined will cost two breaks
//! in control", and notes the Multiflow compiler inlined automatically
//! "using some simple heuristics … when a compiler switch was set". This
//! pass is that switch: it splices small, non-recursive callees into their
//! direct call sites.
//!
//! Inlined conditional branches **keep their source-level
//! [`trace_ir::BranchId`]s**, so several live branches may share one id
//! afterwards — which is exactly IFPROBBER's granularity (counters attach
//! to *source* branches; inlined copies of a branch accumulate into the
//! same counter). Use [`trace_ir::Program::validate_inlined`] on the
//! result.

use std::collections::HashSet;

use trace_ir::{Block, FuncId, Function, Instr, Program, Reg, Terminator};

/// Inlining heuristics, in the spirit of the Multiflow switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inliner {
    /// Only callees with at most this many static instructions are inlined.
    pub max_callee_instrs: u64,
    /// Stop once the whole program has grown past this multiple of its
    /// original static size.
    pub max_growth_factor: u64,
    /// Fixpoint rounds (so chains a→b→c flatten).
    pub rounds: u32,
}

impl Default for Inliner {
    fn default() -> Self {
        Inliner {
            max_callee_instrs: 120,
            max_growth_factor: 4,
            rounds: 3,
        }
    }
}

impl Inliner {
    /// Runs the pass; returns the number of call sites inlined.
    ///
    /// The resulting program may have several live branches sharing one
    /// source-level id; validate it with
    /// [`trace_ir::Program::validate_inlined`].
    pub fn run(&self, program: &mut Program) -> u32 {
        let budget = program.static_instr_count() * self.max_growth_factor;
        let recursive = recursive_functions(program);
        let mut inlined = 0;
        for _ in 0..self.rounds {
            let mut changed = false;
            for caller in 0..program.functions.len() {
                loop {
                    if program.static_instr_count() > budget {
                        return inlined;
                    }
                    let Some((block, index, callee)) = self.find_site(program, caller, &recursive)
                    else {
                        break;
                    };
                    inline_site(program, caller, block, index, callee);
                    inlined += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        inlined
    }

    /// Finds the first inlinable call site in `caller`, if any.
    fn find_site(
        &self,
        program: &Program,
        caller: usize,
        recursive: &HashSet<usize>,
    ) -> Option<(usize, usize, FuncId)> {
        let func = &program.functions[caller];
        for (bi, block) in func.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                let Instr::Call { func: callee, .. } = instr else {
                    continue;
                };
                let target = callee.index();
                if target == caller || recursive.contains(&target) {
                    continue;
                }
                let size: u64 = program.functions[target]
                    .blocks
                    .iter()
                    .map(Block::instr_cost)
                    .sum();
                if size <= self.max_callee_instrs {
                    return Some((bi, ii, *callee));
                }
            }
        }
        None
    }
}

/// Functions on a call-graph cycle (including self-recursion) — never
/// inlined.
fn recursive_functions(program: &Program) -> HashSet<usize> {
    let n = program.functions.len();
    // Direct-call adjacency.
    let mut calls: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (fi, func) in program.functions.iter().enumerate() {
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Instr::Call { func: callee, .. } = instr {
                    calls[fi].insert(callee.index());
                }
            }
        }
    }
    // Transitive closure (the suite's call graphs are small).
    let mut reach = calls.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..n {
            let targets: Vec<usize> = reach[f].iter().copied().collect();
            for t in targets {
                let add: Vec<usize> = reach[t].difference(&reach[f]).copied().collect();
                if !add.is_empty() {
                    changed = true;
                    reach[f].extend(add);
                }
            }
        }
    }
    (0..n).filter(|&f| reach[f].contains(&f)).collect()
}

/// Splices `callee` into `caller` at `(block, index)`.
fn inline_site(program: &mut Program, caller: usize, block: usize, index: usize, callee: FuncId) {
    let callee_fn: Function = program.functions[callee.index()].clone();
    let caller_fn = &mut program.functions[caller];

    let reg_base = caller_fn.num_regs;
    caller_fn.num_regs += callee_fn.num_regs;
    let block_base = caller_fn.blocks.len();
    let cont_index = block_base + callee_fn.blocks.len();

    // Split the calling block.
    let calling_block = &mut caller_fn.blocks[block];
    let Instr::Call { dst, args, .. } = calling_block.instrs[index].clone() else {
        unreachable!("find_site located a Call");
    };
    let after: Vec<Instr> = calling_block.instrs.split_off(index + 1);
    calling_block.instrs.pop(); // the call itself
    for (p, arg) in args.iter().enumerate() {
        calling_block.instrs.push(Instr::Mov {
            dst: Reg(reg_base + p as u32),
            src: *arg,
        });
    }
    let original_term = std::mem::replace(
        &mut calling_block.term,
        Terminator::Jump(trace_ir::BlockId::from_index(block_base)),
    );

    // Splice the callee body, relocated.
    for cb in &callee_fn.blocks {
        let mut nb = cb.clone();
        for instr in &mut nb.instrs {
            instr.map_regs(|r| Reg(r.0 + reg_base));
        }
        match &mut nb.term {
            Terminator::Return { value } => {
                let value = value.map(|r| Reg(r.0 + reg_base));
                if let (Some(d), Some(v)) = (dst, value) {
                    nb.instrs.push(Instr::Mov { dst: d, src: v });
                }
                nb.term = Terminator::Jump(trace_ir::BlockId::from_index(cont_index));
            }
            term => {
                term.map_regs(|r| Reg(r.0 + reg_base));
                term.map_successors(|b| trace_ir::BlockId::from_index(b.index() + block_base));
            }
        }
        caller_fn.blocks.push(nb);
    }

    // The continuation.
    caller_fn.blocks.push(Block {
        instrs: after,
        term: original_term,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflang::compile;
    use trace_vm::{Input, Vm};

    const SRC: &str = r#"
        fn square(x: int) -> int { return x * x; }
        fn cube(x: int) -> int { return square(x) * x; }
        fn note(v: int) { emit(v); }
        fn main(n: int) {
            var total: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                total = total + cube(i) - square(i);
            }
            note(total);
        }
    "#;

    #[test]
    fn inlining_preserves_behaviour_and_removes_calls() {
        let base = compile(SRC).unwrap();
        let mut inlined = base.clone();
        let sites = Inliner::default().run(&mut inlined);
        assert!(sites >= 3, "inlined only {sites} sites");
        assert_eq!(inlined.validate_inlined(), Ok(()));

        let b = Vm::new(&base).run(&[Input::Int(50)]).unwrap();
        let i = Vm::new(&inlined).run(&[Input::Int(50)]).unwrap();
        assert_eq!(b.output, i.output);
        assert_eq!(
            i.stats.events.direct_calls, 0,
            "all direct calls should be gone"
        );
        assert!(b.stats.events.direct_calls > 0);
    }

    #[test]
    fn inlined_branch_counts_accumulate_per_source_branch() {
        let base = compile(SRC).unwrap();
        let mut inlined = base.clone();
        Inliner::default().run(&mut inlined);
        let b = Vm::new(&base).run(&[Input::Int(30)]).unwrap();
        let i = Vm::new(&inlined).run(&[Input::Int(30)]).unwrap();
        // Per source branch id, the counts are identical: inlined copies
        // share their id, so the VM merges them like IFPROBBER counters.
        for (id, e, t) in b.stats.branches.iter() {
            assert_eq!(i.stats.branches.get(id), (e, t), "{id:?}");
        }
    }

    #[test]
    fn recursion_is_never_inlined() {
        let src = r#"
            fn fact(n: int) -> int {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            fn even(n: int) -> int { if (n == 0) { return 1; } return odd(n - 1); }
            fn odd(n: int) -> int { if (n == 0) { return 0; } return even(n - 1); }
            fn main() { emit(fact(10)); emit(even(9)); }
        "#;
        let mut p = compile(src).unwrap();
        let recursive = recursive_functions(&p);
        assert_eq!(recursive.len(), 3, "fact + the even/odd cycle");
        let sites = Inliner::default().run(&mut p);
        assert_eq!(sites, 0, "nothing inlinable remains after exclusions");
        let run = Vm::new(&p).run(&[]).unwrap();
        assert_eq!(run.output_ints(), vec![3628800, 0]);
    }

    #[test]
    fn size_cap_respected() {
        let base = compile(SRC).unwrap();
        let mut p = base.clone();
        let tiny = Inliner {
            max_callee_instrs: 1,
            ..Inliner::default()
        };
        assert_eq!(tiny.run(&mut p), 0);
        assert_eq!(p, base);
    }

    #[test]
    fn growth_budget_bounds_expansion() {
        let base = compile(SRC).unwrap();
        let mut p = base.clone();
        Inliner {
            max_growth_factor: 10,
            ..Inliner::default()
        }
        .run(&mut p);
        assert!(p.static_instr_count() <= base.static_instr_count() * 10);
    }

    #[test]
    fn void_callees_inline() {
        let src = r#"
            global count: int;
            fn tick() { count = count + 1; }
            fn main(n: int) {
                for (var i: int = 0; i < n; i = i + 1) { tick(); }
                emit(count);
            }
        "#;
        let mut p = compile(src).unwrap();
        let sites = Inliner::default().run(&mut p);
        assert_eq!(sites, 1);
        let run = Vm::new(&p).run(&[Input::Int(7)]).unwrap();
        assert_eq!(run.output_ints(), vec![7]);
        assert_eq!(run.stats.events.direct_calls, 0);
    }
}
