//! The one property an optimizer must have: observable behaviour is
//! preserved. We compile guest programs, optimize, and compare VM outputs —
//! plus check that dead code really shrinks dynamic instruction counts
//! (the Table 1 effect) and that surviving branch ids keep their identity.

use mflang::compile;
use mfopt::Pipeline;
use trace_vm::{Input, Vm};

const PROGRAMS: &[(&str, &str, i64)] = &[
    (
        "flags",
        r#"
        fn main(n: int) {
            var debug: int = 0;
            var trace_on: int = 0;
            var total: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                if (debug) { emit(0 - 1); }
                if (trace_on && i % 2 == 0) { emit(0 - 2); }
                total = total + i * 2;
            }
            emit(total);
        }
        "#,
        37,
    ),
    (
        "collatz",
        r#"
        fn steps(x: int) -> int {
            var n: int = 0;
            while (x != 1) {
                if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
                n = n + 1;
            }
            return n;
        }
        fn main(seed: int) {
            var best: int = 0;
            for (var i: int = 1; i <= seed; i = i + 1) {
                var s: int = steps(i);
                if (s > best) { best = s; }
            }
            emit(best);
        }
        "#,
        60,
    ),
    (
        "sieve",
        r#"
        fn main(n: int) {
            var composite: [int] = new_int(n + 1);
            var count: int = 0;
            for (var p: int = 2; p <= n; p = p + 1) {
                if (!composite[p]) {
                    count = count + 1;
                    for (var m: int = p + p; m <= n; m = m + p) {
                        composite[m] = 1;
                    }
                }
            }
            emit(count);
        }
        "#,
        500,
    ),
];

#[test]
fn optimization_preserves_output() {
    for (name, src, input) in PROGRAMS {
        let base = compile(src).unwrap();
        let mut opt = base.clone();
        Pipeline::standard().run(&mut opt);
        assert!(opt.validate().is_ok(), "{name}: invalid after optimization");
        let base_run = Vm::new(&base).run(&[Input::Int(*input)]).unwrap();
        let opt_run = Vm::new(&opt).run(&[Input::Int(*input)]).unwrap();
        assert_eq!(
            base_run.output, opt_run.output,
            "{name}: output changed by optimization"
        );
        assert!(
            opt_run.stats.total_instrs <= base_run.stats.total_instrs,
            "{name}: optimization made the program slower"
        );
    }
}

#[test]
fn dead_flags_shrink_dynamic_instr_count() {
    let (_, src, input) = PROGRAMS[0];
    let base = compile(src).unwrap();
    let mut opt = base.clone();
    Pipeline::standard().run(&mut opt);
    let base_instrs = Vm::new(&base)
        .run(&[Input::Int(input)])
        .unwrap()
        .stats
        .total_instrs;
    let opt_instrs = Vm::new(&opt)
        .run(&[Input::Int(input)])
        .unwrap()
        .stats
        .total_instrs;
    let dead = 1.0 - opt_instrs as f64 / base_instrs as f64;
    // The two constant flag tests execute every iteration; removing them is
    // a measurable chunk of the run.
    assert!(dead > 0.05, "dead fraction {dead} unexpectedly small");
}

#[test]
fn surviving_branch_ids_keep_identity() {
    let (_, src, input) = PROGRAMS[1];
    let base = compile(src).unwrap();
    let mut opt = base.clone();
    Pipeline::standard().run(&mut opt);

    let base_run = Vm::new(&base).run(&[Input::Int(input)]).unwrap();
    let opt_run = Vm::new(&opt).run(&[Input::Int(input)]).unwrap();

    // Every branch that survives optimization must report identical
    // (executed, taken) counts under both compilations — the IFPROBBER
    // source-level-identity property.
    for id in opt.live_branches().keys() {
        assert_eq!(
            base_run.stats.branches.get(*id),
            opt_run.stats.branches.get(*id),
            "branch {id:?} counts diverged"
        );
    }
    // And optimization must not create branches that never existed.
    for id in opt.live_branches().keys() {
        assert!(base.live_branches().contains_key(id));
    }
}

#[test]
fn constant_branches_disappear_entirely() {
    let src = r#"
        fn main() {
            var verbose: int = 0;
            if (verbose) { emit(1); } else { emit(2); }
            while (verbose) { emit(3); }
        }
    "#;
    let base = compile(src).unwrap();
    let mut opt = base.clone();
    Pipeline::standard().run(&mut opt);
    assert!(base.static_branch_count() >= 3);
    assert_eq!(
        opt.static_branch_count(),
        0,
        "all branches here have constant outcomes"
    );
    let run = Vm::new(&opt).run(&[]).unwrap();
    assert_eq!(run.output_ints(), vec![2]);
    assert_eq!(run.stats.branches.total_executed(), 0);
}
