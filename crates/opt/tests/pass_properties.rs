//! Property tests over generated guest programs: every optimization pass —
//! and the whole standard pipeline — must preserve both the semantic
//! verifier's cleanliness (no new `mfcheck` errors) and VM-observable
//! behaviour.
//!
//! Programs are generated as bounded `mflang` source: a fixed register set
//! (`a`, `b`, `c` plus the parameter `n`), arithmetic restricted to
//! non-trapping forms (division and modulus only by nonzero constants),
//! and loops driven by dedicated counters so every generated program
//! terminates quickly.

use proptest::prelude::*;

use mfcheck::{verify_program, Severity};
use mfopt::{
    copy_propagate, dead_code, fold_constants, jump_thread, local_cse, remove_unreachable, Pipeline,
};
use trace_ir::{Function, Program};
use trace_vm::{Input, Vm};

// ----------------------------------------------------------------
// Program generator
// ----------------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("n".to_string()),
        (-20i64..20).prop_map(|v| format!("({v})")),
    ]
}

fn arb_expr() -> impl Strategy<Value = String> {
    arb_atom().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..3).prop_map(|(l, r, op)| {
                let op = ["+", "-", "*"][op];
                format!("({l} {op} {r})")
            }),
            // Non-trapping by construction: the divisor is a nonzero
            // constant.
            (inner.clone(), 2i64..9, 0u32..2).prop_map(|(l, d, rem)| {
                format!("({l} {} {d})", if rem == 1 { "%" } else { "/" })
            }),
            (inner.clone(), inner.clone(), 0usize..4).prop_map(|(l, r, op)| {
                let op = ["<", "<=", "==", "!="][op];
                format!("({l} {op} {r})")
            }),
        ]
    })
}

/// One generated statement. `depth` bounds nesting; loop counters get
/// unique names from `counter`.
fn arb_stmt(depth: u32) -> BoxedStrategy<String> {
    let assign = (0usize..3, arb_expr())
        .prop_map(|(v, e)| format!("{} = {e};", ["a", "b", "c"][v]))
        .boxed();
    if depth == 0 {
        return assign;
    }
    let block = prop::collection::vec(arb_stmt(depth - 1), 1..3)
        .prop_map(|stmts| stmts.join("\n"))
        .boxed();
    // The shim's `prop_oneof!` is unweighted; listing `assign` three
    // times approximates the real weights.
    prop_oneof![
        assign.clone(),
        assign.clone(),
        assign,
        (arb_expr(), block.clone(), block.clone(), 0u32..2).prop_map(
            |(cond, then_b, else_b, with_else)| if with_else == 1 {
                format!("if ({cond}) {{\n{then_b}\n}} else {{\n{else_b}\n}}")
            } else {
                format!("if ({cond}) {{\n{then_b}\n}}")
            }
        ),
        (1u32..5, block.clone(), 0u32..1_000_000).prop_map(|(bound, body, tag)| {
            // A dedicated counter guarantees termination regardless of
            // what the body does to a/b/c.
            format!(
                "var w{tag}: int = 0;\nwhile (w{tag} < {bound}) {{\n{body}\nw{tag} = w{tag} + 1;\n}}"
            )
        }),
        (1u32..5, block).prop_map(|(bound, body)| {
            format!("for (var f: int = 0; f < {bound}; f = f + 1) {{\n{body}\n}}")
        }),
    ]
    .boxed()
}

fn arb_program() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_stmt(2), 1..6).prop_map(|stmts| {
        format!(
            "fn main(n: int) {{\n\
             var a: int = 1;\n\
             var b: int = 2;\n\
             var c: int = n;\n\
             {}\n\
             emit(a); emit(b); emit(c);\n\
             }}",
            stmts.join("\n")
        )
    })
}

// ----------------------------------------------------------------
// The properties
// ----------------------------------------------------------------

fn error_count(p: &Program) -> usize {
    verify_program(p)
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

fn outputs(p: &Program, n: i64) -> Vec<i64> {
    Vm::new(p)
        .run(&[Input::Int(n)])
        .expect("generated programs cannot trap")
        .output_ints()
}

type NamedPass = (&'static str, fn(&mut Function) -> bool);

const PASSES: &[NamedPass] = &[
    ("fold-constants", fold_constants),
    ("copy-propagate", copy_propagate),
    ("local-cse", local_cse),
    ("jump-thread", jump_thread),
    ("remove-unreachable", remove_unreachable),
    ("dead-code", dead_code),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each pass alone: verifier-clean in, verifier-clean out, and the
    /// VM-observable output is unchanged.
    #[test]
    fn each_pass_preserves_cleanliness_and_behaviour(
        src in arb_program(),
        n in 0i64..8,
    ) {
        let base = mflang::compile(&src).expect("generated source compiles");
        prop_assert_eq!(error_count(&base), 0, "fresh compile must be clean");
        let reference = outputs(&base, n);

        for &(name, pass) in PASSES {
            let mut transformed = base.clone();
            for func in &mut transformed.functions {
                pass(func);
            }
            prop_assert!(
                transformed.validate().is_ok(),
                "{} broke structural validity",
                name
            );
            prop_assert_eq!(
                error_count(&transformed),
                0,
                "{} introduced verifier errors",
                name
            );
            prop_assert_eq!(
                &outputs(&transformed, n),
                &reference,
                "{} changed observable output",
                name
            );
        }
    }

    /// The full standard pipeline, with and without inter-pass
    /// verification: clean, behaviour-preserving, and identical either way.
    #[test]
    fn standard_pipeline_preserves_cleanliness_and_behaviour(
        src in arb_program(),
        n in 0i64..8,
    ) {
        let base = mflang::compile(&src).expect("generated source compiles");
        let reference = outputs(&base, n);

        let mut optimized = base.clone();
        Pipeline::standard().run(&mut optimized);
        prop_assert_eq!(error_count(&optimized), 0);
        prop_assert_eq!(&outputs(&optimized, n), &reference);

        let mut checked = base.clone();
        Pipeline::standard()
            .run_checked(&mut checked)
            .expect("no pass introduces a defect");
        prop_assert_eq!(&checked, &optimized, "verification changed the output program");
    }
}
