//! Structured `.mf` source generation.
//!
//! The generator emits bounded, always-terminating guest programs that
//! exercise every branchy construct the language lowers: if/else (including
//! deliberately empty arms, which become the forwarding blocks jump
//! threading eats), for/while loops with constant trip counts, switches
//! (lowered both as cascades and jump tables by the oracles), short-circuit
//! conditions, helper calls, and — for the directive round-trip oracle —
//! the occasional line carrying two `if` statements so several branches
//! share one source line.

use crate::rng::Rng;

/// A generated test case: source plus the input vectors the oracles run.
#[derive(Clone, Debug)]
pub struct GenCase {
    /// The `.mf` source text; entry is `main(a: int, b: int)`.
    pub source: String,
    /// Input vectors; every oracle run uses each set in order.
    pub input_sets: Vec<Vec<i64>>,
}

const NVARS: usize = 4;

struct Gen<'r> {
    rng: &'r mut Rng,
    next_loop: u32,
    has_helper: bool,
}

/// Generates one structured case from `rng`.
pub fn generate(rng: &mut Rng) -> GenCase {
    let has_helper = rng.chance(1, 3);
    let mut g = Gen {
        rng,
        next_loop: 0,
        has_helper,
    };

    let mut src = String::new();
    if has_helper {
        let k = g.rng.range_i64(2, 9);
        let m = g.rng.range_i64(1, 19);
        src.push_str(&format!(
            "fn helper(x: int) -> int {{\n    if (x % {k} == 0) {{ return x / {k}; }}\n    \
             return x + {m};\n}}\n\n"
        ));
    }
    src.push_str("fn main(a: int, b: int) {\n");
    src.push_str("    var v0: int = a;\n");
    src.push_str("    var v1: int = b;\n");
    let c2 = g.rng.range_i64(-9, 40);
    src.push_str(&format!("    var v2: int = {};\n", lit(c2)));
    src.push_str("    var v3: int = a + b;\n");

    let n = 2 + g.rng.below(5);
    for _ in 0..n {
        g.stmt(&mut src, 1, 2);
    }
    for i in 0..NVARS {
        src.push_str(&format!("    emit(v{i});\n"));
    }
    src.push_str("}\n");

    let mut input_sets = Vec::new();
    for _ in 0..2 {
        input_sets.push(vec![g.rng.range_i64(-40, 60), g.rng.range_i64(-40, 60)]);
    }
    GenCase {
        source: src,
        input_sets,
    }
}

/// Renders a literal, parenthesizing negatives the way the grammar needs.
fn lit(v: i64) -> String {
    if v < 0 {
        format!("(0 - {})", -v)
    } else {
        v.to_string()
    }
}

impl Gen<'_> {
    fn var(&mut self) -> String {
        format!("v{}", self.rng.below(NVARS))
    }

    fn expr(&mut self, depth: usize) -> String {
        match self.rng.below(if depth == 0 { 2 } else { 8 }) {
            0 => lit(self.rng.range_i64(-9, 99)),
            1 => self.var(),
            2 => {
                // Pure-constant subexpression: constant-folding fodder.
                let a = self.rng.range_i64(-9, 20);
                let b = self.rng.range_i64(-9, 20);
                let op = ["+", "-", "*"][self.rng.below(3)];
                format!("({} {op} {})", lit(a), lit(b))
            }
            3 | 4 => {
                let op = ["+", "-", "*", "^", "&", "|"][self.rng.below(6)];
                let l = self.expr(depth - 1);
                let r = self.expr(depth - 1);
                format!("({l} {op} {r})")
            }
            5 => {
                // Division/remainder by a nonzero constant only.
                let d = self.rng.range_i64(2, 9);
                let op = ["/", "%"][self.rng.below(2)];
                format!("({} {op} {})", self.expr(depth - 1), d)
            }
            6 if self.has_helper => format!("helper({})", self.expr(depth - 1)),
            _ => self.var(),
        }
    }

    fn cond(&mut self, depth: usize) -> String {
        match self.rng.below(if depth == 0 { 4 } else { 6 }) {
            0 => format!("{} < {}", self.var(), lit(self.rng.range_i64(-20, 20))),
            1 => format!("{} % 2 == 0", self.var()),
            2 => format!("{} != {}", self.var(), self.var()),
            3 => format!("{} > {}", self.var(), self.var()),
            4 => format!("({}) && ({})", self.cond(depth - 1), self.cond(depth - 1)),
            _ => format!("({}) || ({})", self.cond(depth - 1), self.cond(depth - 1)),
        }
    }

    fn simple_stmt(&mut self) -> String {
        let v = self.var();
        if self.rng.chance(1, 4) {
            format!("emit({});", self.expr(1))
        } else {
            format!("{v} = {};", self.expr(2))
        }
    }

    fn body(&mut self, out: &mut String, indent: usize, depth: usize, min: usize, max: usize) {
        let n = min + self.rng.below(max - min + 1);
        for _ in 0..n {
            self.stmt(out, indent, depth);
        }
    }

    fn stmt(&mut self, out: &mut String, indent: usize, depth: usize) {
        let pad = "    ".repeat(indent);
        let kind = if depth == 0 {
            self.rng.below(2)
        } else {
            2 + self.rng.below(6)
        };
        match kind {
            0 | 1 => {
                let s = self.simple_stmt();
                out.push_str(&format!("{pad}{s}\n"));
            }
            2 => {
                // if/else; one time in three the then-arm is empty, which
                // lowers to an empty forwarding block — jump-thread food.
                let c = self.cond(1);
                if self.rng.chance(1, 3) {
                    let s = self.simple_stmt();
                    out.push_str(&format!("{pad}if ({c}) {{ }} else {{ {s} }}\n"));
                } else {
                    out.push_str(&format!("{pad}if ({c}) {{\n"));
                    self.body(out, indent + 1, depth - 1, 1, 2);
                    if self.rng.chance(1, 2) {
                        out.push_str(&format!("{pad}}} else {{\n"));
                        self.body(out, indent + 1, depth - 1, 0, 2);
                    }
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            3 => {
                // Two ifs on one source line: several BranchIds share a
                // source line, exercising directive ordinals.
                let c1 = self.cond(0);
                let c2 = self.cond(0);
                let s1 = self.simple_stmt();
                let s2 = self.simple_stmt();
                out.push_str(&format!("{pad}if ({c1}) {{ {s1} }} if ({c2}) {{ {s2} }}\n"));
            }
            4 => {
                let l = format!("l{}", self.next_loop);
                self.next_loop += 1;
                let k = self.rng.range_i64(1, 6);
                out.push_str(&format!(
                    "{pad}for (var {l}: int = 0; {l} < {k}; {l} = {l} + 1) {{\n"
                ));
                self.body(out, indent + 1, depth - 1, 1, 2);
                out.push_str(&format!("{pad}}}\n"));
            }
            5 => {
                let w = format!("w{}", self.next_loop);
                self.next_loop += 1;
                let k = self.rng.range_i64(1, 5);
                out.push_str(&format!("{pad}var {w}: int = {k};\n"));
                out.push_str(&format!("{pad}while ({w} > 0) {{\n"));
                self.body(out, indent + 1, depth - 1, 1, 2);
                out.push_str(&format!("{}{w} = {w} - 1;\n", "    ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                // switch over a small residue; lowered as a cascade here and
                // as a jump table by the switch-mode differential oracle.
                let m = self.rng.range_i64(3, 7);
                let scrut = self.var();
                out.push_str(&format!("{pad}switch ({scrut} % {m}) {{\n"));
                let ncases = 1 + self.rng.below(3);
                let mut labels: Vec<i64> = Vec::new();
                while labels.len() < ncases {
                    let v = self.rng.range_i64(-2, 5);
                    if !labels.contains(&v) {
                        labels.push(v);
                    }
                }
                for v in labels {
                    let s = self.simple_stmt();
                    out.push_str(&format!("{pad}    case {}: {{ {s} }}\n", lit_case(v)));
                }
                let s = self.simple_stmt();
                out.push_str(&format!("{pad}    default: {{ {s} }}\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

/// Case labels admit a leading minus (unlike general expressions).
fn lit_case(v: i64) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile_and_run() {
        let mut compiled = 0;
        for i in 0..200 {
            let mut rng = Rng::for_iteration(0xABCD, i);
            let case = generate(&mut rng);
            let program = mflang::compile(&case.source)
                .unwrap_or_else(|e| panic!("generated source must compile: {e}\n{}", case.source));
            for inputs in &case.input_sets {
                let ins: Vec<trace_vm::Input> =
                    inputs.iter().map(|&v| trace_vm::Input::Int(v)).collect();
                let config = trace_vm::VmConfig {
                    fuel: 200_000,
                    ..Default::default()
                };
                // Terminates within fuel (no faults other than arithmetic).
                match trace_vm::run_program(&program, config, &ins) {
                    Ok(_) => compiled += 1,
                    Err(e) => panic!("generated program faulted: {e}\n{}", case.source),
                }
            }
        }
        assert!(compiled > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::for_iteration(7, 3));
        let b = generate(&mut Rng::for_iteration(7, 3));
        assert_eq!(a.source, b.source);
        assert_eq!(a.input_sets, b.input_sets);
    }
}
