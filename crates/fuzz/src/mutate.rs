//! Mutation operators.
//!
//! Three mutation families feed the fuzzing loop:
//!
//! * **Source mutations** rewrite `.mf` text: literal tweaks, operator
//!   swaps, line duplication/deletion, and two-parent line splicing. The
//!   result may no longer parse — that is deliberate; non-compiling mutants
//!   double as parser robustness fuzzing (the oracle only demands that the
//!   compiler *reject* them without panicking).
//! * **IR mutations** rewrite compiled [`trace_ir::Program`]s directly:
//!   constant tweaks, register renames, block shuffles and block splices.
//!   Mutants must still pass `validate()` and the mfcheck verifier before
//!   any oracle treats a downstream disagreement as a finding.
//! * **Profile perturbations** jitter recorded branch counts while keeping
//!   `taken ≤ executed`, feeding the directive round-trip and combine
//!   oracles with counts the VM never produced.

use trace_ir::{BlockId, Instr, Program, Reg, Terminator, Value};
use trace_vm::BranchCounts;

use crate::rng::Rng;

/// Applies one random text-level mutation. Never returns the input
/// unchanged unless the source is too small to mutate.
pub fn mutate_source(rng: &mut Rng, source: &str) -> String {
    match rng.below(4) {
        0 => tweak_literal(rng, source),
        1 => swap_operator(rng, source),
        2 => duplicate_line(rng, source),
        _ => remove_line(rng, source),
    }
}

/// Line-level two-parent crossover: a prefix of `a` followed by a suffix
/// of `b`.
pub fn splice_sources(rng: &mut Rng, a: &str, b: &str) -> String {
    let la: Vec<&str> = a.lines().collect();
    let lb: Vec<&str> = b.lines().collect();
    if la.is_empty() || lb.is_empty() {
        return a.to_string();
    }
    let cut_a = rng.below(la.len() + 1);
    let cut_b = rng.below(lb.len() + 1);
    let mut out: Vec<&str> = Vec::new();
    out.extend_from_slice(&la[..cut_a]);
    out.extend_from_slice(&lb[cut_b.min(lb.len())..]);
    let mut s = out.join("\n");
    s.push('\n');
    s
}

/// Perturbs one input vector in place (tweak, negate, or zero a slot).
pub fn mutate_inputs(rng: &mut Rng, input_sets: &mut [Vec<i64>]) {
    if input_sets.is_empty() {
        return;
    }
    let set = rng.below(input_sets.len());
    let inputs = &mut input_sets[set];
    if inputs.is_empty() {
        return;
    }
    let slot = rng.below(inputs.len());
    inputs[slot] = match rng.below(4) {
        0 => inputs[slot].wrapping_add(rng.range_i64(-3, 3)),
        1 => -inputs[slot],
        2 => 0,
        _ => rng.range_i64(-1000, 1000),
    };
}

fn tweak_literal(rng: &mut Rng, source: &str) -> String {
    let bytes = source.as_bytes();
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            runs.push((start, i));
        } else {
            i += 1;
        }
    }
    if runs.is_empty() {
        return duplicate_line(rng, source);
    }
    let (start, end) = runs[rng.below(runs.len())];
    let value: i64 = source[start..end].parse().unwrap_or(0);
    let new = match rng.below(4) {
        0 => value.wrapping_add(1),
        1 => value.saturating_sub(1).max(0),
        2 => value.wrapping_mul(2),
        _ => 0,
    };
    format!("{}{}{}", &source[..start], new, &source[end..])
}

fn swap_operator(rng: &mut Rng, source: &str) -> String {
    const SWAPS: &[(&str, &str)] = &[
        (" + ", " - "),
        (" - ", " + "),
        (" * ", " + "),
        (" < ", " > "),
        (" > ", " <= "),
        (" == ", " != "),
        (" != ", " == "),
        (" && ", " || "),
        (" || ", " && "),
    ];
    let (from, to) = SWAPS[rng.below(SWAPS.len())];
    let hits: Vec<usize> = source.match_indices(from).map(|(i, _)| i).collect();
    if hits.is_empty() {
        return tweak_literal(rng, source);
    }
    let at = hits[rng.below(hits.len())];
    format!("{}{}{}", &source[..at], to, &source[at + from.len()..])
}

fn duplicate_line(rng: &mut Rng, source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    if lines.is_empty() {
        return source.to_string();
    }
    let at = rng.below(lines.len());
    let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
    out.extend_from_slice(&lines[..=at]);
    out.push(lines[at]);
    out.extend_from_slice(&lines[at + 1..]);
    let mut s = out.join("\n");
    s.push('\n');
    s
}

fn remove_line(rng: &mut Rng, source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    if lines.len() < 2 {
        return source.to_string();
    }
    let at = rng.below(lines.len());
    let mut out: Vec<&str> = Vec::with_capacity(lines.len() - 1);
    out.extend_from_slice(&lines[..at]);
    out.extend_from_slice(&lines[at + 1..]);
    let mut s = out.join("\n");
    s.push('\n');
    s
}

/// Applies one random IR-level mutation to a copy of `program`.
///
/// The caller screens the result through `Program::validate` and the
/// mfcheck verifier; invalid mutants are simply discarded, so operators
/// here favour coverage over guaranteed well-formedness.
pub fn mutate_ir(rng: &mut Rng, program: &Program) -> Program {
    let mut p = program.clone();
    match rng.below(4) {
        0 => tweak_ir_const(rng, &mut p),
        1 => rename_ir_reg(rng, &mut p),
        2 => shuffle_ir_blocks(rng, &mut p),
        _ => splice_ir_block(rng, &mut p),
    }
    p
}

fn pick_func(rng: &mut Rng, p: &Program) -> usize {
    rng.below(p.functions.len().max(1))
}

fn tweak_ir_const(rng: &mut Rng, p: &mut Program) {
    let fi = pick_func(rng, p);
    let f = &mut p.functions[fi];
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, instr) in b.instrs.iter().enumerate() {
            if matches!(
                instr,
                Instr::Const {
                    value: Value::Int(_),
                    ..
                }
            ) {
                sites.push((bi, ii));
            }
        }
    }
    if sites.is_empty() {
        return;
    }
    let (bi, ii) = sites[rng.below(sites.len())];
    if let Instr::Const {
        value: Value::Int(v),
        ..
    } = &mut f.blocks[bi].instrs[ii]
    {
        *v = match rng.below(3) {
            0 => v.wrapping_add(1),
            1 => v.wrapping_neg(),
            _ => rng.range_i64(-8, 8),
        };
    }
}

fn rename_ir_reg(rng: &mut Rng, p: &mut Program) {
    let fi = pick_func(rng, p);
    let f = &mut p.functions[fi];
    if f.num_regs < 2 {
        return;
    }
    let a = Reg(rng.below(f.num_regs as usize) as u32);
    let b = Reg(rng.below(f.num_regs as usize) as u32);
    let swap = |r: Reg| {
        if r == a {
            b
        } else if r == b {
            a
        } else {
            r
        }
    };
    for block in &mut f.blocks {
        for instr in &mut block.instrs {
            instr.map_regs(swap);
        }
        block.term.map_regs(swap);
    }
}

fn shuffle_ir_blocks(rng: &mut Rng, p: &mut Program) {
    // Permute block layout while fixing the entry block. Semantics are
    // preserved (successors are rewritten through the permutation), but
    // layout-sensitive classification (backward-branch detection) and the
    // optimizer's traversal order both change.
    let fi = pick_func(rng, p);
    let f = &mut p.functions[fi];
    let n = f.blocks.len();
    if n < 3 {
        return;
    }
    // Fisher–Yates over indices 1..n.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (2..n).rev() {
        let j = 1 + rng.below(i);
        perm.swap(i, j);
    }
    // perm[new_pos] = old_pos; invert to map old ids to new.
    let mut new_of_old = vec![0u32; n];
    for (new_pos, &old_pos) in perm.iter().enumerate() {
        new_of_old[old_pos] = new_pos as u32;
    }
    let mut blocks: Vec<_> = std::mem::take(&mut f.blocks)
        .into_iter()
        .map(Some)
        .collect();
    f.blocks = perm
        .iter()
        .map(|&old| blocks[old].take().expect("permutation visits each once"))
        .collect();
    for block in &mut f.blocks {
        block
            .term
            .map_successors(|b| BlockId(new_of_old[b.index()]));
    }
}

fn splice_ir_block(rng: &mut Rng, p: &mut Program) {
    // Duplicate one block and redirect a random Jump to the copy. A
    // duplicated conditional branch would reuse its BranchId from two
    // sites, so the copy's Branch terminator degrades to Jump(taken).
    let fi = pick_func(rng, p);
    let f = &mut p.functions[fi];
    let n = f.blocks.len();
    if n == 0 || n > 48 {
        return;
    }
    let src = rng.below(n);
    let mut copy = f.blocks[src].clone();
    if let Terminator::Branch { taken, .. } = copy.term {
        copy.term = Terminator::Jump(taken);
    }
    let copy_id = BlockId(n as u32);
    f.blocks.push(copy);
    let jumps: Vec<usize> = f
        .blocks
        .iter()
        .enumerate()
        .take(n)
        .filter(|(_, b)| matches!(b.term, Terminator::Jump(_)))
        .map(|(i, _)| i)
        .collect();
    if jumps.is_empty() {
        // No jump to redirect: the copy stays unreachable, which is still a
        // legal program the optimizer must be able to digest.
        return;
    }
    let at = jumps[rng.below(jumps.len())];
    f.blocks[at].term = Terminator::Jump(copy_id);
}

/// Jitters recorded branch counts, preserving `taken ≤ executed`.
pub fn perturb_counts(rng: &mut Rng, counts: &BranchCounts) -> BranchCounts {
    counts
        .iter()
        .map(|(id, e, t)| {
            let e = match rng.below(4) {
                0 => e.saturating_add(rng.below(5) as u64),
                1 => e.saturating_sub(rng.below(3) as u64),
                _ => e,
            };
            (id, e, t.min(e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn source_mutations_are_deterministic() {
        let case = generate(&mut Rng::for_iteration(1, 1));
        let a = mutate_source(&mut Rng::for_iteration(2, 5), &case.source);
        let b = mutate_source(&mut Rng::for_iteration(2, 5), &case.source);
        assert_eq!(a, b);
    }

    #[test]
    fn ir_shuffle_preserves_output() {
        // A shuffled program is semantically identical: same emitted values,
        // same return, for every generated case it applies to.
        for i in 0..40 {
            let case = generate(&mut Rng::for_iteration(33, i));
            let program = mflang::compile(&case.source).expect("generated source compiles");
            let mut rng = Rng::for_iteration(44, i);
            let mut mutant = program.clone();
            shuffle_ir_blocks(&mut rng, &mut mutant);
            mutant.validate().expect("shuffle keeps the program valid");
            let config = trace_vm::VmConfig {
                fuel: 200_000,
                ..Default::default()
            };
            for inputs in &case.input_sets {
                let ins: Vec<trace_vm::Input> =
                    inputs.iter().map(|&v| trace_vm::Input::Int(v)).collect();
                let a = trace_vm::run_program(&program, config, &ins).expect("original runs");
                let b = trace_vm::run_program(&mutant, config, &ins).expect("mutant runs");
                assert_eq!(a.output, b.output);
                assert_eq!(a.result, b.result);
            }
        }
    }

    #[test]
    fn perturbed_counts_stay_consistent() {
        let case = generate(&mut Rng::for_iteration(5, 0));
        let program = mflang::compile(&case.source).expect("compiles");
        let ins: Vec<trace_vm::Input> = case.input_sets[0]
            .iter()
            .map(|&v| trace_vm::Input::Int(v))
            .collect();
        let run =
            trace_vm::run_program(&program, trace_vm::VmConfig::default(), &ins).expect("runs");
        let mut rng = Rng::new(9);
        for _ in 0..20 {
            let perturbed = perturb_counts(&mut rng, &run.stats.branches);
            for (_, e, t) in perturbed.iter() {
                assert!(t <= e);
            }
        }
    }

    #[test]
    fn splice_produces_both_parents_lines() {
        let mut rng = Rng::new(3);
        let s = splice_sources(&mut rng, "a\nb\nc\n", "x\ny\nz\n");
        assert!(s.ends_with('\n'));
    }
}
