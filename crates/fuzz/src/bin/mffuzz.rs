//! `mffuzz`: the coverage-guided differential fuzzing driver.
//!
//! ```text
//! mffuzz --iters 5000 --seed 42            # fixed-seed smoke run
//! mffuzz --corpus corpus --jobs 8          # fan out over the corpus
//! mffuzz --defect opt-fold-add-off-by-one  # arm one gauntlet defect
//! mffuzz --list-defects                    # show the gauntlet roster
//! ```
//!
//! Everything printed on stdout is a pure function of the seed, iteration
//! count, and corpus — timing goes to stderr and (with `--json-metrics`)
//! to the JSON report, so output diffing across runs and `--jobs` settings
//! is exact.
//!
//! Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
//! or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use mffuzz::{corpus, FuzzConfig, Fuzzer};

const USAGE: &str = "\
usage: mffuzz [OPTION...]

options:
  --seed N            master seed (default 0); same seed + same corpus =>
                      byte-identical stdout at any --jobs setting
  --iters N           fuzz iterations to run (default 5000)
  --time-budget SECS  stop after roughly SECS seconds (checked between
                      scheduling chunks)
  --corpus DIR        load (and replay) the regression corpus in DIR
  --save-corpus       write coverage-selected new entries back to DIR
  --jobs N            worker threads (default 1)
  --max-findings N    stop after N findings (default 12)
  --no-minimize       skip test-case minimization of findings
  --backend NAME      VM backend for primary oracle runs: 'reference'
                      (default) or 'flat'; the flat-vs-reference
                      differential always runs the other backend
  --defect NAME       arm one seeded defect (repeatable; see --list-defects)
  --list-defects      print the mutation-gauntlet defect roster and exit
  --json-metrics PATH write the full report (including timing) as JSON
  -h, --help          this message

exit status: 0 clean, 1 findings, 2 usage/IO error";

struct Options {
    config: FuzzConfig,
    corpus_dir: Option<PathBuf>,
    save_corpus: bool,
    defects: Vec<String>,
    list_defects: bool,
    json_metrics: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        config: FuzzConfig {
            iters: 5000,
            minimize: true,
            ..Default::default()
        },
        corpus_dir: None,
        save_corpus: false,
        defects: Vec::new(),
        list_defects: false,
        json_metrics: None,
    };
    let mut iter = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--seed" => {
                options.config.seed = value("--seed", &mut iter)?
                    .parse()
                    .map_err(|_| "--seed requires an unsigned integer".to_string())?;
            }
            "--iters" => {
                options.config.iters = value("--iters", &mut iter)?
                    .parse()
                    .map_err(|_| "--iters requires an unsigned integer".to_string())?;
            }
            "--time-budget" => {
                let secs: f64 = value("--time-budget", &mut iter)?
                    .parse()
                    .map_err(|_| "--time-budget requires seconds".to_string())?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--time-budget requires non-negative seconds".to_string());
                }
                options.config.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--corpus" => options.corpus_dir = Some(PathBuf::from(value("--corpus", &mut iter)?)),
            "--save-corpus" => options.save_corpus = true,
            "--jobs" => {
                let jobs: usize = value("--jobs", &mut iter)?
                    .parse()
                    .map_err(|_| "--jobs requires an unsigned integer".to_string())?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                options.config.jobs = jobs;
            }
            "--max-findings" => {
                options.config.max_findings = value("--max-findings", &mut iter)?
                    .parse()
                    .map_err(|_| "--max-findings requires an unsigned integer".to_string())?;
            }
            "--no-minimize" => options.config.minimize = false,
            "--backend" => {
                let backend = value("--backend", &mut iter)?.parse()?;
                mffuzz::oracle::set_backend(backend);
            }
            "--defect" => options.defects.push(value("--defect", &mut iter)?),
            "--list-defects" => options.list_defects = true,
            "--json-metrics" => {
                options.json_metrics = Some(PathBuf::from(value("--json-metrics", &mut iter)?));
            }
            _ => return Err(format!("unknown argument '{arg}'")),
        }
    }
    if options.save_corpus && options.corpus_dir.is_none() {
        return Err("--save-corpus requires --corpus DIR".to_string());
    }
    Ok(Some(options))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("mffuzz: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if options.list_defects {
        for name in mfdefect::KNOWN {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    for name in &options.defects {
        if !mfdefect::activate(name) {
            eprintln!("mffuzz: unknown defect '{name}' (see --list-defects)");
            return ExitCode::from(2);
        }
    }

    let initial = match &options.corpus_dir {
        Some(dir) => match corpus::load_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("mffuzz: reading corpus {} failed: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        None => Vec::new(),
    };
    let initial_names: std::collections::BTreeSet<String> =
        initial.iter().map(|e| e.name.clone()).collect();

    let mut fuzzer = Fuzzer::new(options.config, initial);
    let report = fuzzer.run();

    // Deterministic findings/coverage summary on stdout; timing on stderr.
    print!("{}", report.deterministic_text());
    eprintln!(
        "mffuzz: {} iterations in {:.3}s ({:.1} execs/sec, {} workers)",
        report.iterations,
        report.elapsed.as_secs_f64(),
        report.execs_per_sec(),
        report.workers
    );

    if let Some(path) = &options.json_metrics {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("mffuzz: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote fuzz metrics to {}", path.display());
    }

    if options.save_corpus {
        let dir = options.corpus_dir.as_ref().expect("checked in parse_args");
        for entry in fuzzer.into_corpus() {
            if initial_names.contains(&entry.name) {
                continue;
            }
            if let Err(e) = corpus::save_entry(dir, &entry) {
                eprintln!("mffuzz: writing corpus entry {} failed: {e}", entry.name);
                return ExitCode::from(2);
            }
        }
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
