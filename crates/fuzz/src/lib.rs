#![warn(missing_docs)]

//! # mffuzz
//!
//! An in-tree, offline, deterministic coverage-guided fuzzer for the whole
//! mflang → trace-ir → mfopt → trace-vm → ifprob stack.
//!
//! The loop is conventional — generate or mutate a case, run it through a
//! battery of differential and invariant oracles ([`oracle`]), keep cases
//! that reach new control-flow edges ([`cov`]) — with one structural
//! commitment: **bit-for-bit reproducibility at any parallelism**. Every
//! iteration's randomness is a pure function of the master seed and the
//! iteration's global index, iterations are dispatched in fixed-size
//! chunks over [`mfharness::run_indexed`] (which returns results in
//! submission order), and all cross-iteration state (coverage map, corpus
//! growth, finding list) is merged in index order at chunk boundaries. The
//! same `--seed` therefore produces byte-identical findings and coverage
//! no matter how many worker threads run the chunks.
//!
//! The crate doubles as a mutation-testing harness: the product crates
//! compile (behind their off-by-default `seeded-defects` features) eight
//! known bugs that stay dormant until activated through [`mfdefect`]; the
//! gauntlet test asserts the fuzzer finds every one of them within a
//! bounded iteration count.

pub mod corpus;
pub mod cov;
pub mod gen;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod rng;

use std::time::{Duration, Instant};

use trace_vm::BranchCounts;

pub use corpus::CorpusEntry;
use cov::CovMap;
use rng::Rng;

/// Fuzzing-loop configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Iterations to run (may stop earlier on time budget or findings cap).
    pub iters: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Iterations per scheduling chunk. Corpus and coverage state advance
    /// only at chunk boundaries, so the chunk size — not the worker count —
    /// defines the feedback schedule.
    pub chunk: u64,
    /// Optional wall-clock budget, checked at chunk boundaries.
    pub time_budget: Option<Duration>,
    /// Stop once this many findings accumulate (checked per chunk).
    pub max_findings: usize,
    /// Minimize source-level findings before reporting.
    pub minimize: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            iters: 1000,
            jobs: 1,
            chunk: 64,
            time_budget: None,
            max_findings: 12,
            minimize: true,
        }
    }
}

/// How a finding's test case came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseKind {
    /// Freshly generated source.
    Generated,
    /// Text-level mutation (or splice) of corpus entries.
    SourceMutant,
    /// Direct IR mutation of a compiled corpus entry.
    IrMutant,
    /// Perturbed branch counts fed to the profile machinery.
    ProfilePerturb,
    /// Replay of a pre-existing corpus entry.
    CorpusReplay,
}

impl CaseKind {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CaseKind::Generated => "generated",
            CaseKind::SourceMutant => "source-mutant",
            CaseKind::IrMutant => "ir-mutant",
            CaseKind::ProfilePerturb => "profile-perturb",
            CaseKind::CorpusReplay => "corpus-replay",
        }
    }
}

/// One oracle violation, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Global iteration index that produced it (`u64::MAX` for replay).
    pub iteration: u64,
    /// Which oracle fired.
    pub oracle: String,
    /// Human-readable discrepancy description.
    pub detail: String,
    /// The case text: `.mf` source, or rendered IR for IR mutants.
    pub case: String,
    /// Input vectors the case ran with.
    pub input_sets: Vec<Vec<i64>>,
    /// How the case was produced.
    pub kind: CaseKind,
}

/// Everything one fuzzing run concluded.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The master seed.
    pub seed: u64,
    /// Iterations actually executed.
    pub iterations: u64,
    /// Distinct coverage edges at exit.
    pub coverage_edges: usize,
    /// Corpus entries added by coverage feedback this run.
    pub corpus_added: usize,
    /// Corpus size at exit (initial + added).
    pub corpus_size: usize,
    /// All findings, in iteration order.
    pub findings: Vec<Finding>,
    /// Wall-clock time of the loop (not part of deterministic output).
    pub elapsed: Duration,
    /// Worker threads used (not part of deterministic output).
    pub workers: usize,
}

impl FuzzReport {
    /// Executions per second of wall time.
    pub fn execs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.iterations as f64 / secs
        }
    }

    /// The seed-determined portion of the report: byte-identical for the
    /// same seed and iteration count at any `jobs` setting. Excludes
    /// timing and worker count by construction.
    pub fn deterministic_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mffuzz seed={} iterations={}\n",
            self.seed, self.iterations
        ));
        out.push_str(&format!(
            "coverage: {} edges; corpus: {} entries ({} added)\n",
            self.coverage_edges, self.corpus_size, self.corpus_added
        ));
        out.push_str(&format!("findings: {}\n", self.findings.len()));
        for f in &self.findings {
            out.push_str(&format!(
                "  [{}] {} ({}): {}\n",
                f.iteration,
                f.oracle,
                f.kind.name(),
                f.detail
            ));
        }
        out
    }

    /// The human-readable summary table, mfreport-style.
    pub fn summary_table(&self) -> mfreport::Table {
        let mut table = mfreport::Table::new(&["metric", "value"]);
        table.row_owned(vec!["seed".into(), self.seed.to_string()]);
        table.row_owned(vec!["iterations".into(), self.iterations.to_string()]);
        table.row_owned(vec![
            "coverage edges".into(),
            self.coverage_edges.to_string(),
        ]);
        table.row_owned(vec![
            "corpus entries".into(),
            format!("{} ({} added)", self.corpus_size, self.corpus_added),
        ]);
        table.row_owned(vec!["findings".into(), self.findings.len().to_string()]);
        table.row_owned(vec!["worker threads".into(), self.workers.to_string()]);
        table.row_owned(vec![
            "wall time".into(),
            format!("{:.3}s", self.elapsed.as_secs_f64()),
        ]);
        table.row_owned(vec![
            "execs/sec".into(),
            format!("{:.1}", self.execs_per_sec()),
        ]);
        table
    }

    /// Serializes the report as JSON, in the same hand-rolled style as
    /// `mfharness::HarnessReport::to_json`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.findings.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"seed\": {},\n  \"iterations\": {},\n  \"coverage_edges\": {},\n",
            self.seed, self.iterations, self.coverage_edges
        ));
        out.push_str(&format!(
            "  \"corpus_size\": {},\n  \"corpus_added\": {},\n",
            self.corpus_size, self.corpus_added
        ));
        out.push_str(&format!(
            "  \"workers\": {},\n  \"wall_seconds\": {},\n  \"execs_per_sec\": {},\n",
            self.workers,
            json_f64(self.elapsed.as_secs_f64()),
            json_f64(self.execs_per_sec())
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"iteration\": {}, \"oracle\": {}, \"kind\": \"{}\", \"detail\": {}}}{}\n",
                f.iteration,
                json_str(&f.oracle),
                f.kind.name(),
                json_str(&f.detail),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What one iteration hands back for index-order merging.
struct IterOutcome {
    findings: Vec<(&'static str, String)>,
    edges: Vec<cov::Edge>,
    /// `(source, input_sets)` if the case compiled and may join the corpus.
    candidate: Option<(String, Vec<Vec<i64>>)>,
    /// Case text for findings.
    case: String,
    input_sets: Vec<Vec<i64>>,
    kind: CaseKind,
}

impl IterOutcome {
    fn empty(kind: CaseKind) -> Self {
        IterOutcome {
            findings: Vec::new(),
            edges: Vec::new(),
            candidate: None,
            case: String::new(),
            input_sets: Vec::new(),
            kind,
        }
    }
}

/// Runs one fuzz iteration: a pure function of `(seed, index, corpus)`.
fn run_one(seed: u64, index: u64, corpus: &[CorpusEntry]) -> IterOutcome {
    let mut rng = Rng::for_iteration(seed, index);
    let action = if corpus.is_empty() {
        0
    } else {
        match rng.below(100) {
            0..=24 => 0,  // generate fresh
            25..=64 => 1, // source mutation
            65..=84 => 2, // IR mutation
            _ => 3,       // profile perturbation
        }
    };
    match action {
        0 => {
            let case = gen::generate(&mut rng);
            source_outcome(case.source, case.input_sets, CaseKind::Generated)
        }
        1 => {
            let base = &corpus[rng.below(corpus.len())];
            let source = if corpus.len() > 1 && rng.chance(1, 5) {
                let other = &corpus[rng.below(corpus.len())];
                mutate::splice_sources(&mut rng, &base.source, &other.source)
            } else {
                mutate::mutate_source(&mut rng, &base.source)
            };
            let mut input_sets = base.input_sets.clone();
            if rng.chance(1, 3) {
                mutate::mutate_inputs(&mut rng, &mut input_sets);
            }
            source_outcome(source, input_sets, CaseKind::SourceMutant)
        }
        2 => {
            let base = &corpus[rng.below(corpus.len())];
            let Ok(program) = mflang::compile(&base.source) else {
                return IterOutcome::empty(CaseKind::IrMutant);
            };
            let mutant = mutate::mutate_ir(&mut rng, &program);
            let out = oracle::check_ir(&mutant, &base.input_sets);
            IterOutcome {
                findings: out.findings,
                edges: Vec::new(),
                candidate: None,
                case: mutant.to_string(),
                input_sets: base.input_sets.clone(),
                kind: CaseKind::IrMutant,
            }
        }
        _ => {
            let base = &corpus[rng.below(corpus.len())];
            let Ok(program) = mflang::compile(&base.source) else {
                return IterOutcome::empty(CaseKind::ProfilePerturb);
            };
            let mut counts_sets: Vec<BranchCounts> = Vec::new();
            for set in &base.input_sets {
                let inputs: Vec<trace_vm::Input> =
                    set.iter().map(|&v| trace_vm::Input::Int(v)).collect();
                if let Ok(run) = trace_vm::run_program(&program, oracle::fuzz_vm_config(), &inputs)
                {
                    counts_sets.push(mutate::perturb_counts(&mut rng, &run.stats.branches));
                }
            }
            if counts_sets.is_empty() {
                return IterOutcome::empty(CaseKind::ProfilePerturb);
            }
            let out = oracle::check_profile(&program, &counts_sets);
            IterOutcome {
                findings: out.findings,
                edges: Vec::new(),
                candidate: None,
                case: base.source.clone(),
                input_sets: base.input_sets.clone(),
                kind: CaseKind::ProfilePerturb,
            }
        }
    }
}

fn source_outcome(source: String, input_sets: Vec<Vec<i64>>, kind: CaseKind) -> IterOutcome {
    let hash = mfharness::fnv64(source.as_bytes());
    let out = oracle::check_source(&source, &input_sets, hash);
    IterOutcome {
        findings: out.findings,
        candidate: out.compiled.then(|| (source.clone(), input_sets.clone())),
        edges: out.edges,
        case: source,
        input_sets,
        kind,
    }
}

/// The fuzzing loop.
#[derive(Debug)]
pub struct Fuzzer {
    config: FuzzConfig,
    corpus: Vec<CorpusEntry>,
}

impl Fuzzer {
    /// A fuzzer over `initial_corpus` (possibly empty).
    pub fn new(config: FuzzConfig, initial_corpus: Vec<CorpusEntry>) -> Self {
        Fuzzer {
            config,
            corpus: initial_corpus,
        }
    }

    /// Replays the initial corpus through the full oracle battery and then
    /// runs the configured number of fuzz iterations, returning the final
    /// report. Corpus entries grown this run are appended to the in-memory
    /// corpus (callers persist them if desired via [`Fuzzer::into_corpus`]).
    pub fn run(&mut self) -> FuzzReport {
        let start = Instant::now();
        let cfg = self.config.clone();
        let mut cov = CovMap::new();
        let mut findings: Vec<Finding> = Vec::new();
        let mut corpus_added = 0usize;
        let initial_len = self.corpus.len();

        // Corpus replay: every pre-existing entry must satisfy every
        // oracle, and its edges seed the coverage map.
        for entry in &self.corpus[..initial_len] {
            let hash = mfharness::fnv64(entry.source.as_bytes());
            let out = oracle::check_source(&entry.source, &entry.input_sets, hash);
            cov.merge(&out.edges);
            for (oracle_id, detail) in out.findings {
                findings.push(Finding {
                    iteration: u64::MAX,
                    oracle: oracle_id.to_string(),
                    detail: format!("corpus entry '{}': {detail}", entry.name),
                    case: entry.source.clone(),
                    input_sets: entry.input_sets.clone(),
                    kind: CaseKind::CorpusReplay,
                });
            }
        }

        let mut next_index = 0u64;
        while next_index < cfg.iters && findings.len() < cfg.max_findings {
            if let Some(budget) = cfg.time_budget {
                if start.elapsed() >= budget {
                    break;
                }
            }
            let n = cfg.chunk.min(cfg.iters - next_index) as usize;
            let snapshot = &self.corpus;
            let (results, _stats) = mfharness::run_indexed(cfg.jobs.max(1), n, |i| {
                run_one(cfg.seed, next_index + i as u64, snapshot)
            });
            for (i, outcome) in results.into_iter().enumerate() {
                let index = next_index + i as u64;
                let fresh = cov.merge(&outcome.edges);
                if fresh > 0 {
                    if let Some((source, input_sets)) = outcome.candidate {
                        self.corpus.push(CorpusEntry {
                            name: format!("case-{index:06}"),
                            source,
                            input_sets,
                        });
                        corpus_added += 1;
                    }
                }
                for (oracle_id, detail) in outcome.findings {
                    findings.push(Finding {
                        iteration: index,
                        oracle: oracle_id.to_string(),
                        detail,
                        case: outcome.case.clone(),
                        input_sets: outcome.input_sets.clone(),
                        kind: outcome.kind,
                    });
                }
            }
            next_index += n as u64;
        }

        if cfg.minimize {
            for f in &mut findings {
                if matches!(f.kind, CaseKind::Generated | CaseKind::SourceMutant) {
                    let (source, inputs) = minimize::minimize(&f.oracle, &f.case, &f.input_sets);
                    f.case = source;
                    f.input_sets = inputs;
                }
            }
        }

        FuzzReport {
            seed: cfg.seed,
            iterations: next_index,
            coverage_edges: cov.len(),
            corpus_added,
            corpus_size: self.corpus.len(),
            findings,
            elapsed: start.elapsed(),
            workers: cfg.jobs.max(1),
        }
    }

    /// The corpus after fuzzing (initial entries plus coverage-selected
    /// additions, in discovery order).
    pub fn into_corpus(self) -> Vec<CorpusEntry> {
        self.corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed: 0xF15E,
            iters,
            jobs: 2,
            minimize: false,
            ..Default::default()
        }
    }

    #[test]
    fn clean_build_short_run_has_no_findings() {
        mfdefect::clear();
        let report = Fuzzer::new(quick_config(192), Vec::new()).run();
        assert_eq!(report.iterations, 192);
        assert!(
            report.findings.is_empty(),
            "clean build must produce zero findings: {}",
            report.deterministic_text()
        );
        assert!(report.coverage_edges > 0);
        assert!(
            report.corpus_size > 0,
            "coverage feedback must grow a corpus"
        );
    }

    #[test]
    fn same_seed_same_report_at_any_job_count() {
        mfdefect::clear();
        let mut cfg1 = quick_config(160);
        cfg1.jobs = 1;
        let mut cfg4 = quick_config(160);
        cfg4.jobs = 4;
        let a = Fuzzer::new(cfg1, Vec::new()).run();
        let b = Fuzzer::new(cfg4, Vec::new()).run();
        assert_eq!(a.deterministic_text(), b.deterministic_text());
    }

    #[test]
    fn report_serializes() {
        mfdefect::clear();
        let report = Fuzzer::new(quick_config(64), Vec::new()).run();
        let json = report.to_json();
        assert!(json.contains("\"findings\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.summary_table().render().contains("coverage edges"));
    }
}
