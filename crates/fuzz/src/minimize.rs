//! Test-case minimization (delta debugging).
//!
//! Given a finding, the minimizer shrinks the source until the same oracle
//! stops firing: first ddmin over line chunks, then integer literals are
//! pulled toward zero, then inputs are zeroed. The predicate is "the same
//! oracle id still fires", so a minimized case is guaranteed to reproduce
//! the original class of failure, and the whole process is bounded by a
//! fixed evaluation budget.

use crate::oracle;

const EVAL_BUDGET: usize = 300;

struct Shrinker<'a> {
    oracle_id: &'a str,
    evals: usize,
}

impl Shrinker<'_> {
    fn still_fails(&mut self, source: &str, input_sets: &[Vec<i64>]) -> bool {
        if self.evals >= EVAL_BUDGET {
            return false;
        }
        self.evals += 1;
        oracle::check_source(source, input_sets, 0)
            .findings
            .iter()
            .any(|(o, _)| *o == self.oracle_id)
    }
}

/// Shrinks `(source, input_sets)` while oracle `oracle_id` keeps firing.
/// Always returns a case that still reproduces the finding.
pub fn minimize(oracle_id: &str, source: &str, input_sets: &[Vec<i64>]) -> (String, Vec<Vec<i64>>) {
    let mut sh = Shrinker {
        oracle_id,
        evals: 0,
    };
    let mut best = source.to_string();
    let mut inputs = input_sets.to_vec();

    // Phase 1: ddmin over lines. Try removing each chunk-sized window of
    // lines; on success stay put (a new window slid into place), otherwise
    // advance. Halve the chunk when a full sweep removes nothing.
    let mut chunk = (best.lines().count() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut kept: Vec<String> = best.lines().map(str::to_string).collect();
        let mut start = 0;
        while start < kept.len() && sh.evals < EVAL_BUDGET {
            let end = (start + chunk).min(kept.len());
            let mut candidate_lines = kept.clone();
            candidate_lines.drain(start..end);
            let mut candidate = candidate_lines.join("\n");
            candidate.push('\n');
            if sh.still_fails(&candidate, &inputs) {
                kept = candidate_lines;
                best = candidate;
                removed_any = true;
            } else {
                start += 1;
            }
        }
        if sh.evals >= EVAL_BUDGET {
            break;
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    // Phase 2: pull integer literals toward zero.
    loop {
        let mut improved = false;
        let runs = literal_runs(&best);
        for (start, end) in runs {
            let value: i64 = match best[start..end].parse() {
                Ok(v) => v,
                Err(_) => continue,
            };
            for smaller in [0i64, 1, value / 2] {
                if smaller >= value {
                    continue;
                }
                let candidate = format!("{}{}{}", &best[..start], smaller, &best[end..]);
                if sh.still_fails(&candidate, &inputs) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
            if improved {
                break; // literal offsets shifted; rescan
            }
        }
        if !improved || sh.evals >= EVAL_BUDGET {
            break;
        }
    }

    // Phase 3: zero inputs where the finding survives.
    for si in 0..inputs.len() {
        for slot in 0..inputs[si].len() {
            if inputs[si][slot] == 0 {
                continue;
            }
            let mut candidate = inputs.clone();
            candidate[si][slot] = 0;
            if sh.still_fails(&best, &candidate) {
                inputs = candidate;
            }
        }
    }

    (best, inputs)
}

fn literal_runs(source: &str) -> Vec<(usize, usize)> {
    let bytes = source.as_bytes();
    let mut runs = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            runs.push((start, i));
        } else {
            i += 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shrinking against a live seeded defect is exercised by the gauntlet
    // integration test (tests/gauntlet.rs), which owns the process-global
    // defect registry; unit tests here must stay defect-free so they can
    // run in parallel with the clean-build tests.

    #[test]
    fn no_finding_means_no_shrinking() {
        let source = "fn main(a: int, b: int) {\n    emit(a + b);\n}\n";
        let inputs = vec![vec![7, 9]];
        let (min_src, min_inputs) = minimize("diff-opt", source, &inputs);
        assert_eq!(min_src, source);
        assert_eq!(min_inputs, inputs);
    }

    #[test]
    fn literal_runs_found() {
        let runs = literal_runs("x = 12 + 345;");
        assert_eq!(runs, vec![(4, 6), (9, 12)]);
    }
}
