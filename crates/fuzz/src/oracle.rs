//! Differential and invariant oracles.
//!
//! Every fuzz case is pushed through a battery of checks, each of which
//! knows how to tell a *bug* from a legitimate behavioural difference:
//!
//! * **compile-panic / vm-panic** — the compiler may reject input, and the
//!   VM may fault, but neither may ever panic.
//! * **pass-defect** — `Pipeline::run_checked` runs the semantic verifier
//!   after every optimization pass; any diagnostic is a finding.
//! * **diff-opt** — the unoptimized program and its `Pipeline::standard()`
//!   compilation must produce identical output, return value, and
//!   per-branch counts for every branch the optimized program still
//!   contains. Resource-limit faults (fuel, stack) are excluded: the
//!   optimizer legitimately changes instruction counts.
//! * **profile-invariant** — recorded counts must satisfy
//!   `taken ≤ executed` and other mfcheck profile rules.
//! * **trace-replay** — replaying the ordered branch trace must rebuild
//!   exactly the aggregate counts the VM recorded alongside it.
//! * **directive-roundtrip** — writing profile directives and parsing them
//!   back must reproduce the counts bit for bit.
//! * **combine-convexity** — a scaled combination of per-dataset profiles
//!   must stay inside the convex hull of the inputs' taken-fractions and
//!   never claim more taken weight than executed weight.
//! * **profdb-roundtrip** — persisting the per-dataset profiles through
//!   the on-disk database (on the in-memory VFS) and reopening must
//!   reproduce every raw count bit for bit, before and after compaction;
//!   a corrupted tail frame must be salvaged away, never accepted.
//! * **profsvc-groupcommit** — pushing the same profiles through the
//!   sharded group-commit service must round-trip losslessly on a clean
//!   VFS, salvage a torn shard tail back to the committed prefix, and —
//!   under a transient-fault storm with retries disabled — never
//!   acknowledge a submission as `Committed` whose records did not
//!   actually reach the disk (the ack-before-sync bug).
//! * **switch-diff** — compiling with `SwitchMode::JumpTable` instead of
//!   the default cascade must not change program output.
//! * **predict-soundness** — the `mfpredict` interval abstract
//!   interpreter's proofs are universally quantified: a branch proved
//!   always-taken (or never-taken) must never be observed going the
//!   other way in a completed run, and a block proved dead must show a
//!   zero Pixie count. Any observed contradiction means the abstract
//!   domain, a transfer function, or the widening is unsound.
//! * **dynpred-consistency** — driving the online `mfdyn` predictor zoo
//!   over the unoptimized program's branch stream (on both backends) and
//!   replaying the recorded branch trace through the independently written
//!   golden predictor models must produce identical per-predictor
//!   `(executed, mispredicted)` tallies; any divergence is predictor
//!   state-update drift, never a legitimate behavioural difference.
//! * **stale-remap** — the version-skew fingerprint scheme must notice a
//!   changed predicate: flipping one comparison operator between two
//!   otherwise identical program versions must change exactly that site's
//!   fingerprint, orphan its old counts, and degrade the edited site to
//!   the static tier — never silently salvage counts recorded for a
//!   different predicate onto it.
//! * **flat-diff** — running the unoptimized program on the *other* VM
//!   backend (flat when the primary is reference, and vice versa) must be
//!   observably identical: same output/result, same `RunStats` (branch and
//!   Pixie counters, break events, total instructions), same branch trace,
//!   same coverage edges, and — unlike diff-opt — the *same* `RuntimeError`
//!   on faulting runs, since both backends execute the identical program.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use ifprob::directives::{parse_directives, write_directives};
use ifprob::{combine, CombineRule};
use mfdyn::{golden, BranchDirs, DynSpec, Zoo};
use mffault::{FaultPlan, FaultVfs, MemVfs, RetryPolicy, Vfs};
use mfopt::Pipeline;
use mfprofdb::{LockMode, OpenOptions, Persistence, ProfileStore};
use mfprofsvc::{ProfileService, ServiceOptions};
use trace_ir::{BranchId, Program};
use trace_vm::{Backend, BranchCounts, GuestValue, Input, Run, RuntimeError, Vm, VmConfig};

use crate::cov::{Collector, Edge};
use mflang::{CompileOptions, SwitchMode};

static PRIMARY_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the VM backend the oracle battery's primary runs use
/// (`mffuzz --backend`). The flat-vs-reference differential always runs the
/// *other* backend, so either choice exercises both engines.
pub fn set_backend(backend: Backend) {
    PRIMARY_BACKEND.store(backend as u8, Ordering::Relaxed);
}

/// The currently selected primary backend (reference unless overridden).
pub fn backend() -> Backend {
    match PRIMARY_BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Reference,
        _ => Backend::Flat,
    }
}

fn other_backend(b: Backend) -> Backend {
    match b {
        Backend::Reference => Backend::Flat,
        Backend::Flat => Backend::Reference,
    }
}

/// The VM limits every oracle run uses: small enough that runaway mutants
/// die fast, large enough that generated programs always finish.
pub fn fuzz_vm_config() -> VmConfig {
    VmConfig {
        fuel: 200_000,
        max_stack: 128,
        max_alloc: 1 << 12,
        record_branch_trace: true,
        backend: backend(),
        ..VmConfig::default()
    }
}

/// What the oracle battery concluded about one case.
#[derive(Clone, Debug, Default)]
pub struct OracleOutcome {
    /// `(oracle, detail)` pairs, one per violated oracle.
    pub findings: Vec<(&'static str, String)>,
    /// Coverage edges observed while running the unoptimized program.
    pub edges: Vec<Edge>,
    /// Whether the case compiled (only compiled cases seed the corpus).
    pub compiled: bool,
}

fn guest_eq(a: &GuestValue, b: &GuestValue) -> bool {
    let canon = |v: &GuestValue| match *v {
        GuestValue::Zero => GuestValue::Int(0),
        other => other,
    };
    match (canon(a), canon(b)) {
        (GuestValue::Float(x), GuestValue::Float(y)) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn runs_eq(a: &Run, b: &Run) -> Option<String> {
    if a.output.len() != b.output.len() {
        return Some(format!(
            "output length {} vs {}",
            a.output.len(),
            b.output.len()
        ));
    }
    for (i, (x, y)) in a.output.iter().zip(&b.output).enumerate() {
        if !guest_eq(x, y) {
            return Some(format!("output[{i}] {x:?} vs {y:?}"));
        }
    }
    match (&a.result, &b.result) {
        (None, None) => None,
        (Some(x), Some(y)) if guest_eq(x, y) => None,
        (x, y) => Some(format!("result {x:?} vs {y:?}")),
    }
}

fn is_resource_limit(e: &RuntimeError) -> bool {
    matches!(
        e,
        RuntimeError::OutOfFuel { .. } | RuntimeError::StackOverflow { .. }
    )
}

fn to_inputs(set: &[i64]) -> Vec<Input> {
    set.iter().map(|&v| Input::Int(v)).collect()
}

/// Runs the VM, converting a panic into a finding via `findings`.
fn run_guarded(
    program: &Program,
    inputs: &[Input],
    collector: Option<&mut Collector>,
    findings: &mut Vec<(&'static str, String)>,
) -> Option<Result<Run, RuntimeError>> {
    let vm = Vm::with_config(program, fuzz_vm_config());
    let outcome = catch_unwind(AssertUnwindSafe(|| match collector {
        Some(sink) => vm.run_observed(inputs, sink),
        None => vm.run(inputs),
    }));
    match outcome {
        Ok(r) => Some(r),
        Err(payload) => {
            findings.push(("vm-panic", panic_detail(&payload)));
            None
        }
    }
}

/// The predictor roster the consistency oracle drives: one member of each
/// predictor family, sized small so aliasing (and thus interesting state
/// evolution) shows up even on fuzz-sized programs. Gshare and the
/// perceptron are the history-bearing members — the ones whose online
/// state can silently drift from the golden replay's.
const DYNPRED_SPECS: [DynSpec; 5] = [
    DynSpec::Btfn,
    DynSpec::OneBit { table_bits: 8 },
    DynSpec::TwoBit { table_bits: 8 },
    DynSpec::Gshare {
        history: 8,
        table_bits: 8,
    },
    DynSpec::Perceptron {
        history: 8,
        table_bits: 6,
    },
];

/// O13: the dynamic-predictor consistency oracle. Drives a fresh online
/// [`mfdyn::Zoo`] over the unoptimized program's branch stream — once per
/// backend — then replays the run's recorded branch trace through the
/// independently written golden predictor models. The online zoo and the
/// golden replay observe the same outcome sequence, so every predictor's
/// `(executed, mispredicted)` tallies must match exactly; a divergence
/// means online predictor state drifted (e.g. a skipped global-history
/// update), never a legitimate behavioural difference. Faulting runs are
/// skipped: without a completed run there is no trace to replay.
fn check_dynpred_consistency(
    program: &Program,
    inputs: &[Input],
    findings: &mut Vec<(&'static str, String)>,
) {
    let dirs = BranchDirs::of(program);
    for be in [backend(), other_backend(backend())] {
        let mut config = fuzz_vm_config();
        config.backend = be;
        let mut zoo = Zoo::with_dirs(&DYNPRED_SPECS, dirs.clone());
        let vm = Vm::with_config(program, config);
        let outcome = catch_unwind(AssertUnwindSafe(|| vm.run_branches(inputs, &mut zoo)));
        let run = match outcome {
            Ok(Ok(run)) => run,
            Ok(Err(_)) => continue,
            Err(payload) => {
                findings.push(("vm-panic", panic_detail(&payload)));
                return;
            }
        };
        let online = zoo.report();
        let replayed = golden::replay_zoo(&DYNPRED_SPECS, &dirs, &run.branch_trace);
        for ((spec, on), (_, gold)) in online.entries.iter().zip(&replayed.entries) {
            if on != gold {
                findings.push((
                    "dynpred-consistency",
                    format!(
                        "{} backend, {spec}: online {}/{} mispredicts vs golden replay {}/{}",
                        be.name(),
                        on.mispredicted,
                        on.executed,
                        gold.mispredicted,
                        gold.executed,
                    ),
                ));
            }
        }
    }
}

/// O9: the flat-vs-reference differential. Re-runs `program` on the backend
/// the primary runs did *not* use and demands bit-identical observations.
fn check_flat_diff(
    program: &Program,
    inputs: &[Input],
    si: usize,
    primary: &Result<Run, RuntimeError>,
    primary_edges: Option<&[Edge]>,
    case_hash: u64,
    findings: &mut Vec<(&'static str, String)>,
) {
    let mut config = fuzz_vm_config();
    config.backend = other_backend(config.backend);
    let vm = Vm::with_config(program, config);
    let mut collector = primary_edges.map(|_| Collector::new(case_hash));
    let outcome = catch_unwind(AssertUnwindSafe(|| match collector.as_mut() {
        Some(sink) => vm.run_observed(inputs, sink),
        None => vm.run(inputs),
    }));
    let secondary = match outcome {
        Ok(r) => r,
        Err(payload) => {
            findings.push(("vm-panic", panic_detail(&payload)));
            return;
        }
    };
    match (primary, &secondary) {
        (Ok(p), Ok(s)) => {
            if let Some(diff) = runs_eq(p, s) {
                findings.push(("flat-diff", format!("input set {si}: {diff}")));
            } else if p.stats != s.stats {
                findings.push((
                    "flat-diff",
                    format!("input set {si}: {}", flat_stats_detail(p, s)),
                ));
            } else if p.branch_trace != s.branch_trace {
                findings.push((
                    "flat-diff",
                    format!(
                        "input set {si}: branch traces diverge ({} vs {} events)",
                        p.branch_trace.len(),
                        s.branch_trace.len()
                    ),
                ));
            }
        }
        // Same program on both backends: even the error must match exactly,
        // including OutOfFuel at the same charge boundary.
        (Err(pe), Err(se)) if pe == se => {}
        (p, s) => findings.push((
            "flat-diff",
            format!(
                "input set {si}: primary {} vs secondary {}",
                flat_result_word(p),
                flat_result_word(s)
            ),
        )),
    }
    if let (Some(expected), Some(collector)) = (primary_edges, collector) {
        let got = collector.into_edges();
        if got != expected {
            findings.push((
                "flat-diff",
                format!(
                    "input set {si}: coverage edges diverge ({} vs {} edges)",
                    expected.len(),
                    got.len()
                ),
            ));
        }
    }
}

fn flat_result_word(r: &Result<Run, RuntimeError>) -> String {
    match r {
        Ok(_) => "succeeded".to_string(),
        Err(e) => format!("faulted ({e})"),
    }
}

fn flat_stats_detail(p: &Run, s: &Run) -> String {
    if p.stats.total_instrs != s.stats.total_instrs {
        return format!(
            "total_instrs {} vs {}",
            p.stats.total_instrs, s.stats.total_instrs
        );
    }
    if p.stats.branches != s.stats.branches {
        return first_count_diff(&p.stats.branches, &s.stats.branches)
            .unwrap_or_else(|| "branch counts diverge".to_string());
    }
    if p.stats.events != s.stats.events {
        return format!("events {:?} vs {:?}", p.stats.events, s.stats.events);
    }
    "pixie block counts diverge".to_string()
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The trace-replay and profile-invariant checks shared by every oracle
/// entry point.
fn check_run_invariants(run: &Run, findings: &mut Vec<(&'static str, String)>) {
    let entries: Vec<(BranchId, u64, u64)> = run.stats.branches.iter().collect();
    let issues = mfcheck::check_entries(&entries);
    if !issues.is_empty() {
        findings.push((
            "profile-invariant",
            issues
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        ));
    }
    let mut replayed = BranchCounts::new();
    for ev in &run.branch_trace {
        replayed.record(ev.id, ev.taken);
    }
    if replayed != run.stats.branches {
        let detail = first_count_diff(&replayed, &run.stats.branches)
            .unwrap_or_else(|| "trace and aggregate counts disagree".to_string());
        findings.push(("trace-replay", detail));
    }
}

fn first_count_diff(a: &BranchCounts, b: &BranchCounts) -> Option<String> {
    let ids: std::collections::BTreeSet<BranchId> = a
        .iter()
        .map(|(id, _, _)| id)
        .chain(b.iter().map(|(id, _, _)| id))
        .collect();
    for id in ids {
        if a.get(id) != b.get(id) {
            return Some(format!("branch {id:?}: {:?} vs {:?}", a.get(id), b.get(id)));
        }
    }
    None
}

/// Writes directives from `counts` and parses them back; any discrepancy
/// is a `directive-roundtrip` finding.
fn check_directive_roundtrip(
    program: &Program,
    counts: &BranchCounts,
    findings: &mut Vec<(&'static str, String)>,
) {
    let text = write_directives(program, counts);
    match parse_directives(program, &text) {
        Ok(parsed) => {
            for id in (0..program.branch_info.len() as u32).map(BranchId) {
                if parsed.get(id) != counts.get(id) {
                    findings.push((
                        "directive-roundtrip",
                        format!(
                            "branch {id:?}: wrote {:?}, read back {:?}",
                            counts.get(id),
                            parsed.get(id)
                        ),
                    ));
                    return;
                }
            }
        }
        Err(e) => findings.push((
            "directive-roundtrip",
            format!("directives failed to re-parse: {e}"),
        )),
    }
}

/// O-predict: interval proofs held against a completed run's observed
/// counters. Proofs quantify over every execution that runs to
/// completion, so a single counter going the proved-impossible way — or
/// a single execution of a provably-dead block — convicts the static
/// analysis, not the program.
pub fn check_predict_soundness(
    proofs: &mfpredict::ProgramProofs,
    si: usize,
    run: &Run,
    findings: &mut Vec<(&'static str, String)>,
) {
    for c in proofs.contradictions(run.stats.branches.iter()) {
        findings.push(("predict-soundness", format!("input set {si}: {c}")));
    }
    for &(f, b) in &proofs.dead_blocks {
        let count = run.stats.pixie.block_count(f, b.index());
        if count > 0 {
            findings.push((
                "predict-soundness",
                format!(
                    "input set {si}: {b} of fn{} proved dead but executed {count} times",
                    f.index()
                ),
            ));
        }
    }
}

/// Scaled combination must stay in the convex hull of its inputs.
pub fn check_combine_convexity(
    profiles: &[&BranchCounts],
    findings: &mut Vec<(&'static str, String)>,
) {
    if profiles.len() < 2 {
        return;
    }
    const EPS: f64 = 1e-9;
    let combined = combine(profiles, CombineRule::Scaled);
    for (id, we, wt) in combined.iter() {
        if wt > we + EPS {
            findings.push((
                "combine-convexity",
                format!("branch {id:?}: taken weight {wt} exceeds executed weight {we}"),
            ));
            return;
        }
        let fractions: Vec<f64> = profiles
            .iter()
            .filter_map(|p| {
                let (e, t) = p.get(id);
                (e > 0).then(|| t as f64 / e as f64)
            })
            .collect();
        if fractions.is_empty() || we <= 0.0 {
            continue;
        }
        let f = wt / we;
        let lo = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = fractions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if f < lo - EPS || f > hi + EPS {
            findings.push((
                "combine-convexity",
                format!("branch {id:?}: combined fraction {f} outside [{lo}, {hi}]"),
            ));
            return;
        }
    }
}

/// Persisting per-dataset profiles through the on-disk database and
/// reading them back must be lossless, before and after compaction; a
/// corrupted tail frame must be salvaged away, never folded in. Runs
/// entirely on the in-memory VFS, so it is deterministic and touches no
/// real filesystem.
pub fn check_profdb_roundtrip(
    profiles: &[BranchCounts],
    findings: &mut Vec<(&'static str, String)>,
) {
    if profiles.is_empty() {
        return;
    }
    let opts = || OpenOptions {
        lock: LockMode::None,
        ..OpenOptions::default()
    };
    let dataset = |i: usize| format!("ds{i:02}");
    let expected: BTreeMap<String, Vec<(u32, u64, u64)>> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                dataset(i),
                p.iter().map(|(id, e, t)| (id.0, e, t)).collect(),
            )
        })
        .collect();
    let fill = |store: &mut ProfileStore| -> bool {
        for (i, p) in profiles.iter().enumerate() {
            let landed = store
                .append(&dataset(i), p)
                .expect("no fault plan, so appends cannot crash");
            if landed != Persistence::Committed {
                return false;
            }
        }
        true
    };

    // Round trip: append every dataset, reopen, compact, reopen again.
    // Each view must reproduce the raw per-branch counts exactly.
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let mut store = ProfileStore::open(Arc::clone(&vfs), "/oracle-db", opts())
        .expect("no fault plan, so open cannot crash");
    if !fill(&mut store) {
        findings.push((
            "profdb-roundtrip",
            format!(
                "append degraded on a fault-free vfs: {:?}",
                store.warnings()
            ),
        ));
        return;
    }
    drop(store);
    for compacted in [false, true] {
        let mut reopened = ProfileStore::open(Arc::clone(&vfs), "/oracle-db", opts())
            .expect("no fault plan, so open cannot crash");
        if reopened.raw_totals() != expected {
            findings.push((
                "profdb-roundtrip",
                format!(
                    "reopen {} altered the stored profiles: recovered datasets {:?}, expected {:?}",
                    if compacted {
                        "after compaction"
                    } else {
                        "after append"
                    },
                    reopened.datasets(),
                    expected.keys().collect::<Vec<_>>()
                ),
            ));
            return;
        }
        if compacted {
            break;
        }
        reopened
            .compact()
            .expect("no fault plan, so compaction cannot crash");
        if reopened.raw_totals() != expected {
            findings.push((
                "profdb-roundtrip",
                "compaction changed the folded profile".to_string(),
            ));
            return;
        }
    }

    // Tail salvage: flip the high byte of the final record's last taken
    // count, leaving the frame structurally intact. The checksum must
    // reject the frame, so recovery yields exactly the records before it.
    if profiles[profiles.len() - 1].iter().next().is_none() {
        return; // no trailing count word to corrupt
    }
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let mut store = ProfileStore::open(Arc::clone(&vfs), "/oracle-db", opts())
        .expect("no fault plan, so open cannot crash");
    if !fill(&mut store) {
        return; // already reported above on an identical store
    }
    let segment = store
        .active_segment()
        .expect("persistent store has a segment")
        .to_path_buf();
    drop(store);
    let mut bytes = vfs.read(&segment).expect("in-memory segment is readable");
    let flip = bytes.len() - 9; // MSB of the little-endian taken u64, just before the checksum
    bytes[flip] ^= 0x80;
    vfs.write(&segment, &bytes)
        .expect("in-memory segment is writable");

    let salvaged = ProfileStore::open(Arc::clone(&vfs), "/oracle-db", opts())
        .expect("no fault plan, so open cannot crash");
    let mut pruned = expected;
    pruned.remove(&dataset(profiles.len() - 1));
    if salvaged.raw_totals() != pruned {
        findings.push((
            "profdb-roundtrip",
            format!(
                "corrupted tail frame was not salvaged away: recovered datasets {:?}, \
                 expected the uncorrupted prefix {:?}",
                salvaged.datasets(),
                pruned.keys().collect::<Vec<_>>()
            ),
        ));
    }
}

/// The sharded group-commit service must honor its acknowledgments.
/// Three legs, all on the in-memory VFS:
///
/// 1. a fault-free enqueue/flush of every dataset must ack `Committed`
///    everywhere and survive a reopen bit for bit;
/// 2. a torn shard tail (garbage appended past the last group commit)
///    must be salvaged back to exactly the committed prefix;
/// 3. under a transient-fault storm with retries disabled, every
///    submission acked `Committed` must actually be on disk after a
///    clean reopen — a service that acks before its sync confirms
///    (or that counts truncated-away data as durable) fails here.
pub fn check_profsvc_groupcommit(
    profiles: &[BranchCounts],
    findings: &mut Vec<(&'static str, String)>,
) {
    if profiles.is_empty() {
        return;
    }
    let opts = || ServiceOptions {
        shards: 4,
        retry: RetryPolicy::none(),
        ..ServiceOptions::default()
    };
    let dataset = |i: usize| format!("svc{i:02}");
    let expected: BTreeMap<String, Vec<(u32, u64, u64)>> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                dataset(i),
                p.iter().map(|(id, e, t)| (id.0, e, t)).collect(),
            )
        })
        .collect();

    // Leg 1: fault-free group commit round trip.
    let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let svc = ProfileService::open(Arc::clone(&mem), "/oracle-svc", opts())
        .expect("no fault plan, so open cannot crash");
    let mut sids = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        sids.push(
            svc.enqueue(&dataset(i), p)
                .expect("no fault plan, so enqueue cannot crash"),
        );
    }
    let acks = svc
        .flush()
        .expect("no fault plan, so group commit cannot crash");
    if sids
        .iter()
        .any(|sid| acks.get(sid) != Some(&Persistence::Committed))
    {
        findings.push((
            "profsvc-groupcommit",
            format!(
                "group commit degraded on a fault-free vfs: {:?}",
                svc.warnings()
            ),
        ));
        return;
    }
    drop(svc);
    let reopened = ProfileService::open(Arc::clone(&mem), "/oracle-svc", opts())
        .expect("no fault plan, so open cannot crash");
    if reopened.merged_totals().expect("fault-free read") != expected {
        findings.push((
            "profsvc-groupcommit",
            "reopen after group commit altered the stored profiles".to_string(),
        ));
        return;
    }

    // Leg 2: torn shard tails must salvage to the committed prefix.
    for shard_dir in mem
        .read_dir(Path::new("/oracle-svc"))
        .expect("in-memory dir is readable")
    {
        for seg in mem.read_dir(&shard_dir).into_iter().flatten() {
            if seg.extension().is_some_and(|x| x == "mfdb") {
                mem.append(&seg, &[0xAB, 0xCD, 0xEF, 0x01])
                    .expect("in-memory segment is writable");
            }
        }
    }
    drop(reopened);
    let salvaged = ProfileService::open(Arc::clone(&mem), "/oracle-svc", opts())
        .expect("no fault plan, so open cannot crash");
    if salvaged.merged_totals().expect("fault-free read") != expected {
        findings.push((
            "profsvc-groupcommit",
            "torn shard tail was not salvaged back to the committed prefix".to_string(),
        ));
        return;
    }
    drop(salvaged);

    // Leg 3: the ack-discipline check, by surgical fault injection. Two
    // clean submits measure the steady-state mutating-op count of one
    // group commit; its second-to-last op is the batch sync (the last is
    // the shard-lock release), so a targeted transient there makes
    // exactly the sync fail for the victim submission. With retries off
    // a correct service must ack that submission `Degraded`; acking
    // `Committed` while the records never survive a reopen is the
    // ack-before-sync bug. One shard, so the victim's ack is the verdict
    // of that single commit.
    let storm_opts = || ServiceOptions {
        shards: 1,
        ..opts()
    };
    let mem = Arc::new(MemVfs::new());
    let storm = Arc::new(FaultVfs::new(
        Arc::clone(&mem) as Arc<dyn Vfs>,
        FaultPlan::none(),
    ));
    let svc = ProfileService::open(
        Arc::clone(&storm) as Arc<dyn Vfs>,
        "/oracle-svc",
        storm_opts(),
    )
    .expect("no fault plan, so open cannot crash");
    let probe = &profiles[0];
    for name in ["svc-base", "svc-probe"] {
        if svc
            .submit(name, probe)
            .expect("no fault plan, so submit cannot crash")
            != Persistence::Committed
        {
            findings.push((
                "profsvc-groupcommit",
                format!("fault-free submit degraded: {:?}", svc.warnings()),
            ));
            return;
        }
    }
    let before = storm.op_count();
    if svc
        .submit("svc-calib", probe)
        .expect("no fault plan, so submit cannot crash")
        != Persistence::Committed
    {
        return; // already reported shapes like this above
    }
    let per_submit = storm.op_count() - before;
    storm.set_plan(FaultPlan {
        transient_at: Some(storm.op_count() + per_submit.saturating_sub(2)),
        ..FaultPlan::none()
    });
    let victim_ack = svc
        .submit("svc-victim", probe)
        .expect("a single transient is not a crash");
    let injected = storm.counters().transients == 1;
    drop(svc);
    let reopened = ProfileService::open(
        Arc::clone(&mem) as Arc<dyn Vfs>,
        "/oracle-svc",
        storm_opts(),
    )
    .expect("no fault plan, so open cannot crash");
    let disk = reopened.merged_totals().expect("fault-free read");
    let want: Vec<(u32, u64, u64)> = probe.iter().map(|(id, e, t)| (id.0, e, t)).collect();
    if injected && victim_ack == Persistence::Committed && disk.get("svc-victim") != Some(&want) {
        findings.push((
            "profsvc-groupcommit",
            format!(
                "sync of the victim batch failed, yet it was acked Committed; after reopen \
                 the disk holds {:?} instead of {:?}",
                disk.get("svc-victim"),
                want
            ),
        ));
    }
}

/// Version-skew salvage must never cross a predicate edit. Two fixture
/// versions of one program differ in exactly one comparison operator
/// (`i < 3` vs `i <= 3`) at a real branch site; the site fingerprints
/// must differ at exactly that site, the old counts recorded for it must
/// orphan, and the edited site must degrade to the static tier. A
/// fingerprint scheme that ignores the operator (the seeded
/// `stale-fingerprint-ignores-operator` defect) instead reports an
/// identity remap and silently reuses counts that describe a different
/// predicate.
pub fn check_stale_remap(findings: &mut Vec<(&'static str, String)>) {
    const V1: &str = "fn main(n: int) {\n\
                      \x20 var t: int = 0;\n\
                      \x20 for (var i: int = 0; i < n; i = i + 1) {\n\
                      \x20   if (i < 3) { emit(i); t = t + 1; } else { emit(t); }\n\
                      \x20 }\n\
                      \x20 emit(t);\n\
                      }\n";
    let v2 = V1.replace("i < 3", "i <= 3");
    let p1 = mflang::compile(V1).expect("stale-remap fixture v1 compiles");
    let p2 = mflang::compile(&v2).expect("stale-remap fixture v2 compiles");
    let fps1 = mfstale::site_fingerprints(&p1);
    let fps2 = mfstale::site_fingerprints(&p2);

    // The versions are structurally identical, so branch ids line up and
    // exactly the edited site's fingerprint may differ.
    let flipped: Vec<BranchId> = fps1
        .iter()
        .filter(|&(id, fp)| fps2.get(id) != Some(fp))
        .map(|(&id, _)| id)
        .collect();
    if flipped.len() != 1 {
        findings.push((
            "stale-remap",
            format!(
                "flipping `<` to `<=` in one predicate must change exactly one of the {} \
                 site fingerprints, but {} changed",
                fps1.len(),
                flipped.len()
            ),
        ));
        return;
    }

    let entries: Vec<(BranchId, u64, u64)> = fps1.keys().map(|&id| (id, 12, 5)).collect();
    let out = mfstale::remap_counts(&entries, &fps1, &fps2);
    let r = &out.report;
    if r.orphaned != 1 || out.degraded != flipped {
        findings.push((
            "stale-remap",
            format!(
                "counts recorded for the old `i < 3` predicate must orphan and the edited \
                 site must degrade to the static tier: {r:?}, degraded {:?}, expected \
                 degraded {flipped:?}",
                out.degraded
            ),
        ));
        return;
    }
    if out.counts.iter().any(|&(id, _, _)| id == flipped[0]) {
        findings.push((
            "stale-remap",
            "stale counts were remapped onto the operator-edited site".to_string(),
        ));
    }
}

/// Runs the full oracle battery on one `.mf` source case.
///
/// `case_hash` qualifies coverage edges; pass `collect_edges = false` for
/// minimization re-runs where coverage is irrelevant.
pub fn check_source(source: &str, input_sets: &[Vec<i64>], case_hash: u64) -> OracleOutcome {
    let mut out = OracleOutcome::default();

    let compiled = catch_unwind(AssertUnwindSafe(|| mflang::compile(source)));
    let program = match compiled {
        Ok(Ok(p)) => p,
        Ok(Err(_)) => return out, // rejection is the parser doing its job
        Err(payload) => {
            out.findings.push(("compile-panic", panic_detail(&payload)));
            return out;
        }
    };
    out.compiled = true;

    // O2: the pass-by-pass semantic verifier.
    let mut optimized = program.clone();
    match Pipeline::standard().run_checked(&mut optimized) {
        Ok(_) => {}
        Err(defect) => {
            out.findings.push(("pass-defect", defect.to_string()));
            return out;
        }
    }

    // Interval proofs over the unoptimized program: checked against every
    // completed run's counters below.
    let proofs = mfpredict::analyze(&program);

    // Jump-table lowering for the switch differential (may legitimately
    // fail to differ from cascade when the program has no switch).
    let jt_options = CompileOptions {
        switch_mode: SwitchMode::JumpTable,
        ..Default::default()
    };
    let jt_program = mflang::compile_with(source, &jt_options).ok();

    let mut unopt_counts: Vec<BranchCounts> = Vec::new();
    for (si, set) in input_sets.iter().enumerate() {
        let inputs = to_inputs(set);
        let mut collector = Collector::new(case_hash);
        let sink = (si == 0).then_some(&mut collector);
        let Some(unopt) = run_guarded(&program, &inputs, sink, &mut out.findings) else {
            return out;
        };
        if si == 0 {
            out.edges = collector.into_edges();
        }
        check_flat_diff(
            &program,
            &inputs,
            si,
            &unopt,
            (si == 0).then_some(out.edges.as_slice()),
            case_hash,
            &mut out.findings,
        );
        // O13 is a full extra pair of runs; the first input set is enough
        // for a per-case conviction signal at fuzz throughput.
        if si == 0 {
            check_dynpred_consistency(&program, &inputs, &mut out.findings);
        }
        let Some(opt) = run_guarded(&optimized, &inputs, None, &mut out.findings) else {
            return out;
        };
        match (&unopt, &opt) {
            (Ok(u), Ok(o)) => {
                if let Some(diff) = runs_eq(u, o) {
                    out.findings
                        .push(("diff-opt", format!("input set {si}: {diff}")));
                }
                // Per-branch counts must agree for every branch the
                // optimized program still contains (the metamorphic
                // profile-preservation invariant).
                for (&id, _) in optimized.live_branches().iter() {
                    if u.stats.branches.get(id) != o.stats.branches.get(id) {
                        out.findings.push((
                            "branch-counts",
                            format!(
                                "input set {si}, branch {id:?}: unopt {:?} vs opt {:?}",
                                u.stats.branches.get(id),
                                o.stats.branches.get(id)
                            ),
                        ));
                        break;
                    }
                }
                check_run_invariants(u, &mut out.findings);
                check_predict_soundness(&proofs, si, u, &mut out.findings);
                check_directive_roundtrip(&program, &u.stats.branches, &mut out.findings);
                unopt_counts.push(u.stats.branches.clone());
            }
            (Err(ue), Err(_oe)) => {
                // Both faulted: error kinds may differ (evaluation order
                // shifts under optimization), never a finding.
                let _ = ue;
            }
            (Ok(_), Err(e)) | (Err(e), Ok(_)) if is_resource_limit(e) => {}
            (Ok(_), Err(e)) => out.findings.push((
                "diff-opt",
                format!("input set {si}: optimized faulted ({e}) where unoptimized succeeded"),
            )),
            (Err(e), Ok(_)) => out.findings.push((
                "diff-opt",
                format!("input set {si}: unoptimized faulted ({e}) where optimized succeeded"),
            )),
        }

        // O6: switch lowering differential.
        if let Some(jt) = &jt_program {
            let Some(jt_run) = run_guarded(jt, &inputs, None, &mut out.findings) else {
                return out;
            };
            match (&unopt, &jt_run) {
                (Ok(u), Ok(j)) => {
                    if let Some(diff) = runs_eq(u, j) {
                        out.findings
                            .push(("switch-diff", format!("input set {si}: {diff}")));
                    }
                }
                (Err(_), _) | (_, Err(_)) => {
                    // Lowering changes instruction counts; only compare
                    // clean runs.
                }
            }
        }
    }

    let refs: Vec<&BranchCounts> = unopt_counts.iter().collect();
    check_combine_convexity(&refs, &mut out.findings);
    check_profdb_roundtrip(&unopt_counts, &mut out.findings);
    check_profsvc_groupcommit(&unopt_counts, &mut out.findings);
    check_stale_remap(&mut out.findings);
    out
}

/// The reduced battery for IR-level mutants: the mutant must first pass
/// `validate()` and the mfcheck verifier (otherwise it is silently
/// discarded — `compiled` stays false), then the optimizer and VM must
/// digest it without disagreeing.
pub fn check_ir(program: &Program, input_sets: &[Vec<i64>]) -> OracleOutcome {
    let mut out = OracleOutcome::default();
    if program.validate().is_err() {
        return out;
    }
    if !mfcheck::is_clean(&mfcheck::verify_program(program)) {
        return out;
    }
    out.compiled = true;

    let mut optimized = program.clone();
    match Pipeline::standard().run_checked(&mut optimized) {
        Ok(_) => {}
        Err(defect) => {
            out.findings.push(("pass-defect", defect.to_string()));
            return out;
        }
    }

    for (si, set) in input_sets.iter().enumerate() {
        let inputs = to_inputs(set);
        let Some(unopt) = run_guarded(program, &inputs, None, &mut out.findings) else {
            return out;
        };
        check_flat_diff(program, &inputs, si, &unopt, None, 0, &mut out.findings);
        let Some(opt) = run_guarded(&optimized, &inputs, None, &mut out.findings) else {
            return out;
        };
        match (&unopt, &opt) {
            (Ok(u), Ok(o)) => {
                if let Some(diff) = runs_eq(u, o) {
                    out.findings
                        .push(("diff-opt", format!("input set {si}: {diff}")));
                }
                check_run_invariants(u, &mut out.findings);
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) | (Err(e), Ok(_)) if is_resource_limit(e) => {}
            (Ok(_), Err(e)) => out.findings.push((
                "diff-opt",
                format!("input set {si}: optimized faulted ({e}) where unoptimized succeeded"),
            )),
            (Err(e), Ok(_)) => out.findings.push((
                "diff-opt",
                format!("input set {si}: unoptimized faulted ({e}) where optimized succeeded"),
            )),
        }
    }
    out
}

/// The profile-machinery battery for perturbed counts that the VM never
/// produced: directive round-trip against `program`, plus combine
/// convexity across the perturbed datasets.
pub fn check_profile(program: &Program, counts_sets: &[BranchCounts]) -> OracleOutcome {
    let mut out = OracleOutcome {
        compiled: true,
        ..Default::default()
    };
    for counts in counts_sets {
        check_directive_roundtrip(program, counts, &mut out.findings);
    }
    let refs: Vec<&BranchCounts> = counts_sets.iter().collect();
    check_combine_convexity(&refs, &mut out.findings);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::rng::Rng;

    #[test]
    fn generated_cases_are_clean() {
        for i in 0..60 {
            let case = generate(&mut Rng::for_iteration(0xFEED, i));
            let out = check_source(&case.source, &case.input_sets, 1);
            assert!(
                out.findings.is_empty(),
                "clean build produced findings {:?} for:\n{}",
                out.findings,
                case.source
            );
            assert!(out.compiled);
            assert!(!out.edges.is_empty(), "coverage hook reported no edges");
        }
    }

    #[test]
    fn rejection_is_not_a_finding() {
        let out = check_source("fn main( {", &[vec![0, 0]], 1);
        assert!(!out.compiled);
        assert!(out.findings.is_empty());
    }

    #[test]
    fn convexity_accepts_valid_profiles() {
        // Well-formed profiles can never violate convexity (the combine
        // rule is a convex mixture); the violating path is exercised by
        // the gauntlet via the `profile-combine-taken-inflate` defect.
        let a: BranchCounts = [(BranchId(0), 10u64, 9u64), (BranchId(1), 4u64, 0u64)]
            .into_iter()
            .collect();
        let b: BranchCounts = [(BranchId(0), 10u64, 2u64), (BranchId(1), 8u64, 8u64)]
            .into_iter()
            .collect();
        let mut findings = Vec::new();
        check_combine_convexity(&[&a, &b], &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
