//! The on-disk regression corpus.
//!
//! A corpus entry is a plain `.mf` file whose first line may carry the
//! input vectors the fuzzer runs it with:
//!
//! ```text
//! // mffuzz-inputs: 3 17 | 9 4
//! fn main(a: int, b: int) { ... }
//! ```
//!
//! `|` separates input sets; each set is whitespace-separated integers.
//! Files without the header run with a default all-zero input set. Entries
//! load in filename order so corpus iteration is deterministic.

use std::fs;
use std::io;
use std::path::Path;

/// The input-header marker.
pub const INPUTS_MARKER: &str = "// mffuzz-inputs:";

/// One corpus entry: a named `.mf` source plus its input vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// File stem the entry was loaded from (or will be saved under).
    pub name: String,
    /// Source text, header line stripped.
    pub source: String,
    /// Input vectors; never empty.
    pub input_sets: Vec<Vec<i64>>,
}

impl CorpusEntry {
    /// Parses file text into an entry, splitting off the input header.
    pub fn parse(name: &str, text: &str) -> CorpusEntry {
        let mut input_sets = Vec::new();
        let source = if let Some(rest) = text.strip_prefix(INPUTS_MARKER) {
            let (header, body) = match rest.split_once('\n') {
                Some((h, b)) => (h, b),
                None => (rest, ""),
            };
            for set in header.split('|') {
                let values: Vec<i64> = set
                    .split_whitespace()
                    .filter_map(|w| w.parse().ok())
                    .collect();
                input_sets.push(values);
            }
            body.to_string()
        } else {
            text.to_string()
        };
        if input_sets.is_empty() {
            input_sets.push(vec![0, 0]);
        }
        CorpusEntry {
            name: name.to_string(),
            source,
            input_sets,
        }
    }

    /// Renders the entry back to file text (header plus source).
    pub fn render(&self) -> String {
        let header: Vec<String> = self
            .input_sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        format!("{INPUTS_MARKER} {}\n{}", header.join(" | "), self.source)
    }
}

/// Loads every `.mf` file under `dir`, sorted by filename.
///
/// # Errors
///
/// Propagates directory/file read failures; a missing directory yields an
/// empty corpus.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut entries = Vec::new();
    let read = match fs::read_dir(dir) {
        Ok(r) => r,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<_> = read
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mf"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("entry")
            .to_string();
        let text = fs::read_to_string(&path)?;
        entries.push(CorpusEntry::parse(&name, &text));
    }
    Ok(entries)
}

/// Writes `entry` as `<dir>/<name>.mf`, creating `dir` if needed.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn save_entry(dir: &Path, entry: &CorpusEntry) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.mf", entry.name)), entry.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let text = "// mffuzz-inputs: 3 17 | 9 4\nfn main(a: int, b: int) { emit(a); }\n";
        let entry = CorpusEntry::parse("t", text);
        assert_eq!(entry.input_sets, vec![vec![3, 17], vec![9, 4]]);
        assert_eq!(entry.source, "fn main(a: int, b: int) { emit(a); }\n");
        assert_eq!(entry.render(), text);
    }

    #[test]
    fn missing_header_defaults_inputs() {
        let entry = CorpusEntry::parse("t", "fn main() { }\n");
        assert_eq!(entry.input_sets, vec![vec![0, 0]]);
        assert_eq!(entry.source, "fn main() { }\n");
    }

    #[test]
    fn load_dir_is_sorted_and_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join(format!("mffuzz-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).unwrap().is_empty());
        let b = CorpusEntry {
            name: "bb".into(),
            source: "fn main() { }\n".into(),
            input_sets: vec![vec![1]],
        };
        let a = CorpusEntry {
            name: "aa".into(),
            source: "fn main() { }\n".into(),
            input_sets: vec![vec![2]],
        };
        save_entry(&dir, &b).unwrap();
        save_entry(&dir, &a).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].name, "aa");
        assert_eq!(loaded[1].name, "bb");
        let _ = fs::remove_dir_all(&dir);
    }
}
