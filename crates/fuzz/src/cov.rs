//! Edge-coverage accounting.
//!
//! The VM reports every traversed control-flow edge through the
//! [`trace_vm::CoverageSink`] hook; the fuzzer keys each edge by a hash of
//! the program it came from, so coverage accumulated over many distinct
//! corpus entries lives in one global set. Ordered collections keep every
//! derived number deterministic.

use std::collections::BTreeSet;

use trace_ir::FuncId;
use trace_vm::CoverageSink;

/// One program-qualified control-flow edge.
pub type Edge = (u64, u32, u32, u32);

/// The global, ordered edge set.
#[derive(Clone, Debug, Default)]
pub struct CovMap {
    edges: BTreeSet<Edge>,
}

impl CovMap {
    /// An empty map.
    pub fn new() -> Self {
        CovMap::default()
    }

    /// Number of distinct edges seen.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Inserts every edge; returns how many were new.
    pub fn merge(&mut self, edges: &[Edge]) -> usize {
        let mut fresh = 0;
        for &e in edges {
            if self.edges.insert(e) {
                fresh += 1;
            }
        }
        fresh
    }

    /// True if any of `edges` is not yet in the map.
    pub fn any_new(&self, edges: &[Edge]) -> bool {
        edges.iter().any(|e| !self.edges.contains(e))
    }
}

/// A [`CoverageSink`] that buffers one run's edges, qualified by the hash
/// of the program under execution.
#[derive(Debug)]
pub struct Collector {
    case_hash: u64,
    edges: Vec<Edge>,
}

impl Collector {
    /// A collector for a program identified by `case_hash`.
    pub fn new(case_hash: u64) -> Self {
        Collector {
            case_hash,
            edges: Vec::new(),
        }
    }

    /// The buffered edges, deduplicated and sorted.
    pub fn into_edges(self) -> Vec<Edge> {
        let set: BTreeSet<Edge> = self.edges.into_iter().collect();
        set.into_iter().collect()
    }
}

impl CoverageSink for Collector {
    fn edge(&mut self, func: FuncId, from: u32, to: u32) {
        self.edges.push((self.case_hash, func.0, from, to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counts_new_edges_once() {
        let mut map = CovMap::new();
        let edges = vec![(1, 0, u32::MAX, 0), (1, 0, 0, 1), (1, 0, 0, 1)];
        assert!(map.any_new(&edges));
        assert_eq!(map.merge(&edges), 2);
        assert_eq!(map.len(), 2);
        assert!(!map.any_new(&edges));
        assert_eq!(map.merge(&edges), 0);
    }

    #[test]
    fn collector_dedups_and_sorts() {
        let mut c = Collector::new(9);
        c.edge(FuncId(0), u32::MAX, 0);
        c.edge(FuncId(0), 0, 1);
        c.edge(FuncId(0), 0, 1);
        let edges = c.into_edges();
        assert_eq!(edges, vec![(9, 0, 0, 1), (9, 0, u32::MAX, 0)]);
    }
}
