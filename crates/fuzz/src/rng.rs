//! A tiny deterministic PRNG (SplitMix64), the only randomness source in
//! the fuzzer. Every iteration's generator is derived from the master seed
//! and the iteration's global index, so a run is reproducible bit-for-bit
//! regardless of worker count or scheduling.

/// SplitMix64: passes BigCrush, two lines long, and — crucially — trivially
/// splittable by construction.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl Rng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The generator for one fuzzing iteration: a pure function of the
    /// master seed and the iteration's global index.
    pub fn for_iteration(master: u64, index: u64) -> Self {
        let mut rng = Rng::new(master ^ index.wrapping_mul(GOLDEN).wrapping_add(1));
        // One warm-up step decorrelates adjacent indices.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_iteration() {
        let mut a = Rng::for_iteration(42, 7);
        let mut b = Rng::for_iteration(42, 7);
        let mut c = Rng::for_iteration(42, 8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn bounds_respected() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }
}
