//! The long clean soak: a clean build must survive 50k iterations at a
//! fixed seed with zero findings. Too slow for the default test run —
//! execute with `cargo test -p mffuzz --test soak --release -- --ignored`.

use mffuzz::{FuzzConfig, Fuzzer};

#[test]
#[ignore = "long soak; run explicitly with -- --ignored (release build recommended)"]
fn clean_build_survives_50k_iterations() {
    mfdefect::clear();
    let config = FuzzConfig {
        seed: 0x50AC,
        iters: 50_000,
        jobs: mfharness::default_workers(),
        max_findings: 12,
        minimize: false,
        ..Default::default()
    };
    let report = Fuzzer::new(config, Vec::new()).run();
    assert_eq!(report.iterations, 50_000);
    assert!(
        report.findings.is_empty(),
        "clean soak produced findings:\n{}",
        report.deterministic_text()
    );
    assert!(report.coverage_edges > 100);
}
