//! The mutation gauntlet: every seeded defect must be caught.
//!
//! The product crates compile fifteen known bugs behind their (off by
//! default) `seeded-defects` features, dormant until armed through the
//! process-global `mfdefect` registry. This test arms each defect in turn
//! and asserts the fuzzer finds it — through the *expected* oracle —
//! within a bounded iteration count. A fuzzer change that blinds any
//! oracle fails here, not in the field.
//!
//! Everything lives in ONE test function: the registry is process-global,
//! so defect activation must never overlap with another test's run.

use mffuzz::{minimize, oracle, FuzzConfig, Fuzzer};

/// Per-defect iteration budget and the oracles allowed to catch it.
const GAUNTLET: &[(&str, u64, &[&str])] = &[
    (
        "opt-fold-add-off-by-one",
        3000,
        &["diff-opt", "branch-counts", "pass-defect"],
    ),
    ("opt-dce-drops-emit", 1000, &["diff-opt", "pass-defect"]),
    (
        "opt-thread-swaps-edges",
        3000,
        &["diff-opt", "branch-counts", "pass-defect"],
    ),
    ("vm-branch-count-polarity", 1000, &["trace-replay"]),
    ("vm-profile-drop-increment", 1000, &["trace-replay"]),
    ("vm-flat-fuse-swapped-arms", 1000, &["flat-diff"]),
    ("lang-switch-case-compare", 4000, &["switch-diff"]),
    ("profile-directive-ordinal", 4000, &["directive-roundtrip"]),
    (
        "profile-combine-taken-inflate",
        1000,
        &["combine-convexity"],
    ),
    ("profdb-checksum-skipped", 1000, &["profdb-roundtrip"]),
    ("profsvc-batch-ack-early", 1000, &["profsvc-groupcommit"]),
    ("predict-widen-dropped-bound", 3000, &["predict-soundness"]),
    (
        "dynpred-history-not-updated",
        1000,
        &["dynpred-consistency"],
    ),
    ("vm-trace-sidexit-counter-drift", 2000, &["flat-diff"]),
    ("stale-fingerprint-ignores-operator", 1000, &["stale-remap"]),
];

#[test]
fn fuzzer_catches_every_seeded_defect() {
    // The roster here must cover the registry exactly; a defect added to
    // mfdefect without a gauntlet row is a silent hole.
    let rostered: Vec<&str> = GAUNTLET.iter().map(|(n, _, _)| *n).collect();
    assert_eq!(rostered, mfdefect::KNOWN, "gauntlet roster out of date");

    for &(defect, budget, expected_oracles) in GAUNTLET {
        mfdefect::clear();
        assert!(mfdefect::activate(defect), "unknown defect {defect}");

        let config = FuzzConfig {
            seed: 0xDEFEC7,
            iters: budget,
            jobs: 2,
            max_findings: 1,
            minimize: false,
            ..Default::default()
        };
        let report = Fuzzer::new(config, Vec::new()).run();
        assert!(
            !report.findings.is_empty(),
            "defect '{defect}' survived {budget} iterations undetected"
        );
        let caught: Vec<&str> = report.findings.iter().map(|f| f.oracle.as_str()).collect();
        assert!(
            report
                .findings
                .iter()
                .any(|f| expected_oracles.contains(&f.oracle.as_str())),
            "defect '{defect}' was caught, but by {caught:?} instead of one of \
             {expected_oracles:?}"
        );
        eprintln!(
            "gauntlet: {defect} caught at iteration {} by {}",
            report.findings[0].iteration, report.findings[0].oracle
        );
    }
    mfdefect::clear();

    // Minimization against a live defect: the shrunken case must still
    // reproduce the same oracle violation.
    assert!(mfdefect::activate("opt-fold-add-off-by-one"));
    let source = "fn main(a: int, b: int) {\n    var x: int = 2 + 3;\n    var y: int = a;\n    \
                  y = y * 1;\n    emit(x);\n    emit(y);\n}\n";
    let inputs = vec![vec![7, 9]];
    let before = oracle::check_source(source, &inputs, 0);
    assert!(
        before.findings.iter().any(|(o, _)| *o == "diff-opt"),
        "fold defect must fire before minimizing: {:?}",
        before.findings
    );
    let (min_src, min_inputs) = minimize::minimize("diff-opt", source, &inputs);
    let after = oracle::check_source(&min_src, &min_inputs, 0);
    assert!(
        after.findings.iter().any(|(o, _)| *o == "diff-opt"),
        "minimized case no longer reproduces:\n{min_src}"
    );
    assert!(min_src.len() <= source.len());
    mfdefect::clear();

    // And with every defect cleared again, the same seed runs clean.
    let config = FuzzConfig {
        seed: 0xDEFEC7,
        iters: 256,
        jobs: 2,
        minimize: false,
        ..Default::default()
    };
    let report = Fuzzer::new(config, Vec::new()).run();
    assert!(
        report.findings.is_empty(),
        "cleared defects still produce findings: {}",
        report.deterministic_text()
    );
}
