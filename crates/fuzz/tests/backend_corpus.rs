//! Backend equivalence and counter invariants over the on-disk corpus.
//!
//! Every corpus entry runs on both VM backends with its recorded input
//! sets, asserting the ISSUE-4 invariants: identical [`Run`]s (output,
//! result, stats, branch trace), identical coverage edge streams,
//! `total_instrs` reconciling with the Pixie-weighted block counts, and
//! branch counter totals matching the recorded trace.

use std::path::Path;

use mffuzz::corpus;
use trace_ir::{BranchId, FuncId, Program};
use trace_vm::{Backend, CoverageSink, Input, Run, Vm, VmConfig};

/// Collects the full edge stream so the two backends' coverage callbacks
/// can be compared event-for-event.
#[derive(Default)]
struct EdgeLog(Vec<(FuncId, u32, u32)>);

impl CoverageSink for EdgeLog {
    fn edge(&mut self, func: FuncId, from: u32, to: u32) {
        self.0.push((func, from, to));
    }
}

fn config(backend: Backend) -> VmConfig {
    VmConfig {
        backend,
        record_branch_trace: true,
        ..VmConfig::default()
    }
}

fn run_both(program: &Program, inputs: &[Input]) -> (Run, Run) {
    let runs = Backend::ALL.map(|backend| {
        let mut edges = EdgeLog::default();
        let vm = Vm::with_config(program, config(backend));
        let run = vm
            .run_observed(inputs, &mut edges)
            .expect("corpus entry runs");
        (run, edges.0)
    });
    let [(reference, reference_edges), (flat, flat_edges)] = runs;
    assert_eq!(reference_edges, flat_edges, "coverage edge streams differ");
    (reference, flat)
}

/// `stats.total_instrs` must equal the Pixie-weighted instruction count:
/// each execution of block `b` contributes its instruction count plus one
/// for the terminator.
fn assert_pixie_reconciles(program: &Program, run: &Run, what: &str) {
    let mut weighted = 0u64;
    for (fi, f) in program.functions.iter().enumerate() {
        let counts = &run.stats.pixie.blocks[fi];
        assert_eq!(counts.len(), f.blocks.len(), "{what}: pixie shape");
        for (bi, block) in f.blocks.iter().enumerate() {
            weighted += counts[bi] * (block.instrs.len() as u64 + 1);
        }
    }
    assert_eq!(
        run.stats.total_instrs, weighted,
        "{what}: total_instrs vs pixie-weighted block counts"
    );
}

/// The aggregate branch counters must be exactly the recorded trace,
/// folded by branch id.
fn assert_branches_match_trace(run: &Run, what: &str) {
    let mut by_id: std::collections::BTreeMap<BranchId, (u64, u64)> =
        std::collections::BTreeMap::new();
    for event in &run.branch_trace {
        let slot = by_id.entry(event.id).or_insert((0, 0));
        slot.0 += 1;
        if event.taken {
            slot.1 += 1;
        }
    }
    let recorded: Vec<(BranchId, u64, u64)> = run.stats.branches.iter().collect();
    let traced: Vec<(BranchId, u64, u64)> = by_id
        .into_iter()
        .map(|(id, (executed, taken))| (id, executed, taken))
        .collect();
    assert_eq!(recorded, traced, "{what}: branch counters vs trace");
}

/// Every dynamic predictor must tally identical `(executed, mispredicted)`
/// counts on both backends: the predictors are pure functions of the branch
/// outcome stream, so this is the observable-equivalence invariant extended
/// to the `BranchSink` hook. The golden trace replay is cross-checked too,
/// closing the triangle online-reference = online-flat = replayed-trace.
#[test]
fn predictor_zoo_agrees_on_both_backends_across_corpus() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let entries = corpus::load_dir(&dir).expect("corpus loads");
    assert!(!entries.is_empty(), "corpus directory is empty");
    let specs = mfdyn::full_zoo();
    for entry in &entries {
        let program =
            mflang::compile(&entry.source).unwrap_or_else(|e| panic!("{}: {e:?}", entry.name));
        let dirs = mfdyn::BranchDirs::of(&program);
        for (si, set) in entry.input_sets.iter().enumerate() {
            let inputs: Vec<Input> = set.iter().map(|&v| Input::Int(v)).collect();
            let what = format!("{} input set {si}", entry.name);
            let reports = Backend::ALL.map(|backend| {
                let mut zoo = mfdyn::Zoo::with_dirs(&specs, dirs.clone());
                let vm = Vm::with_config(&program, config(backend));
                let run = vm
                    .run_branches(&inputs, &mut zoo)
                    .expect("corpus entry runs");
                (zoo.report(), run)
            });
            let [(reference, reference_run), (flat, _)] = reports;
            assert_eq!(
                reference, flat,
                "{what}: zoo reports differ between backends"
            );
            let replayed = mfdyn::golden::replay_zoo(&specs, &dirs, &reference_run.branch_trace);
            assert_eq!(reference, replayed, "{what}: online zoo vs golden replay");
        }
    }
}

#[test]
fn corpus_entries_agree_and_reconcile_on_both_backends() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let entries = corpus::load_dir(&dir).expect("corpus loads");
    assert!(!entries.is_empty(), "corpus directory is empty");
    for entry in &entries {
        let program =
            mflang::compile(&entry.source).unwrap_or_else(|e| panic!("{}: {e:?}", entry.name));
        for (si, set) in entry.input_sets.iter().enumerate() {
            let inputs: Vec<Input> = set.iter().map(|&v| Input::Int(v)).collect();
            let what = format!("{} input set {si}", entry.name);
            let (reference, flat) = run_both(&program, &inputs);
            assert_eq!(reference, flat, "{what}: Run differs between backends");
            for run in [&reference, &flat] {
                assert_pixie_reconciles(&program, run, &what);
                assert_branches_match_trace(run, &what);
            }
        }
    }
}
