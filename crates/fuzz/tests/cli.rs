//! CLI contract tests for the `mffuzz` binary: the 0/1/2 exit-code
//! convention, deterministic stdout across `--jobs`, and JSON metrics.

use std::path::Path;
use std::process::{Command, Output};

fn mffuzz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mffuzz"))
        .args(args)
        .output()
        .expect("spawn mffuzz")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_run_exits_zero() {
    let out = mffuzz(&["--seed", "11", "--iters", "96"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("findings: 0"));
}

#[test]
fn findings_exit_one() {
    let out = mffuzz(&[
        "--seed",
        "11",
        "--iters",
        "600",
        "--defect",
        "opt-dce-drops-emit",
        "--max-findings",
        "1",
        "--no-minimize",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stdout(&out).contains("diff-opt") || stdout(&out).contains("pass-defect"));
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["--frobnicate"][..],
        &["--seed"][..],
        &["--seed", "pony"][..],
        &["--jobs", "0"][..],
        &["--defect", "no-such-defect"][..],
        &["--save-corpus"][..],
        &["--time-budget", "-3"][..],
    ] {
        let out = mffuzz(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
    }
}

#[test]
fn unreadable_corpus_exits_two() {
    let out = mffuzz(&["--corpus", "/proc/self/mem/nope", "--iters", "1"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_defects_prints_roster() {
    let out = mffuzz(&["--list-defects"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for name in mfdefect::KNOWN {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(text.lines().count(), mfdefect::KNOWN.len());
}

#[test]
fn stdout_is_byte_identical_across_jobs() {
    let one = mffuzz(&["--seed", "77", "--iters", "256", "--jobs", "1"]);
    let four = mffuzz(&["--seed", "77", "--iters", "256", "--jobs", "4"]);
    assert_eq!(one.status.code(), Some(0));
    assert_eq!(four.status.code(), Some(0));
    assert_eq!(
        stdout(&one),
        stdout(&four),
        "same seed must give byte-identical stdout at any --jobs"
    );
}

#[test]
fn json_metrics_are_written() {
    let path = std::env::temp_dir().join(format!("mffuzz-metrics-{}.json", std::process::id()));
    let out = mffuzz(&[
        "--seed",
        "5",
        "--iters",
        "64",
        "--json-metrics",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    for key in [
        "\"seed\": 5",
        "\"iterations\": 64",
        "\"coverage_edges\":",
        "\"execs_per_sec\":",
        "\"findings\": [",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn json_metrics_write_failure_exits_two() {
    let out = mffuzz(&[
        "--seed",
        "5",
        "--iters",
        "16",
        "--json-metrics",
        "/nonexistent-dir/metrics.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn save_corpus_persists_new_entries() {
    let dir = std::env::temp_dir().join(format!("mffuzz-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = mffuzz(&[
        "--seed",
        "3",
        "--iters",
        "128",
        "--corpus",
        dir.to_str().unwrap(),
        "--save-corpus",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let saved = mffuzz::corpus::load_dir(Path::new(&dir)).unwrap();
    assert!(
        !saved.is_empty(),
        "coverage feedback should persist at least one entry"
    );
    // Replaying the saved corpus is still clean and deterministic.
    let replay = mffuzz(&[
        "--seed",
        "3",
        "--iters",
        "0",
        "--corpus",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(replay.status.code(), Some(0), "{replay:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
