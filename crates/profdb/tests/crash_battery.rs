//! The crash-consistency battery: a fixed write script is executed once
//! fault-free to count its mutating operations, then re-executed with a
//! hard crash injected at *every* operation index. After each crash the
//! surviving in-memory filesystem is reopened with a clean accessor and
//! the recovered database must equal the fold of an exact prefix of the
//! script's runs — bounded below by the appends whose sync was
//! acknowledged and above by the append in flight at the crash.
//!
//! A second pass storms the same script with seeded mixed fault plans
//! (short writes, `ENOSPC`, transients, torn renames) and asserts the
//! degrade-never-die contract: the script always completes, the
//! in-memory view is always complete, and whatever reached disk is still
//! an exact prefix.

use std::collections::BTreeMap;
use std::sync::Arc;

use mffault::{FaultPlan, FaultVfs, MemVfs, RetryPolicy, Vfs};
use mfprofdb::{LockMode, OpenOptions, Persistence, ProfileStore};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

const DIR: &str = "/db";

/// One scripted append: dataset name plus raw `(branch, executed, taken)` rows.
type ScriptedRun = (&'static str, &'static [(u32, u64, u64)]);

/// The committed-run script: seven appends across three datasets, with a
/// compaction injected between runs 3 and 4 so crash points land inside
/// the compaction protocol too.
const RUNS: &[ScriptedRun] = &[
    ("train", &[(0, 10, 4), (1, 8, 8)]),
    ("train", &[(0, 6, 1)]),
    ("ref", &[(2, 20, 5)]),
    ("train", &[(1, 3, 0), (4, 12, 11)]),
    ("ref", &[(2, 4, 4), (5, 9, 2)]),
    ("extra", &[(7, 1, 1)]),
    ("train", &[(0, 2, 2)]),
];
const COMPACT_AFTER: usize = 4;

fn counts(rows: &[(u32, u64, u64)]) -> BranchCounts {
    rows.iter()
        .map(|&(id, e, t)| (BranchId(id), e, t))
        .collect()
}

fn steal_opts() -> OpenOptions {
    OpenOptions {
        lock: LockMode::Steal,
        retry: RetryPolicy::none(),
    }
}

/// The fold of the first `m` runs — what a recovered database must equal
/// for some valid `m`.
fn expected(m: usize) -> BTreeMap<String, Vec<(u32, u64, u64)>> {
    let mut fold: BTreeMap<String, BTreeMap<u32, (u64, u64)>> = BTreeMap::new();
    for &(ds, rows) in &RUNS[..m] {
        let per = fold.entry(ds.to_string()).or_default();
        for &(id, e, t) in rows {
            let slot = per.entry(id).or_insert((0, 0));
            slot.0 += e;
            slot.1 += t;
        }
    }
    fold.into_iter()
        .map(|(ds, m)| (ds, m.into_iter().map(|(id, (e, t))| (id, e, t)).collect()))
        .collect()
}

struct ScriptRun {
    /// The live store, when the script completed without a crash.
    store: Option<ProfileStore>,
    /// Appends whose sync was acknowledged.
    acked: usize,
    /// Appends attempted (includes one possibly in flight at the crash).
    issued: usize,
}

fn run_script(vfs: Arc<dyn Vfs>, retry: RetryPolicy) -> ScriptRun {
    let options = OpenOptions {
        lock: LockMode::Steal,
        retry,
    };
    let mut acked = 0;
    let mut issued = 0;
    let Ok(mut store) = ProfileStore::open(vfs, DIR, options) else {
        return ScriptRun {
            store: None,
            acked,
            issued,
        };
    };
    for (i, &(ds, rows)) in RUNS.iter().enumerate() {
        if i == COMPACT_AFTER && store.compact().is_err() {
            return ScriptRun {
                store: None,
                acked,
                issued,
            };
        }
        issued += 1;
        match store.append(ds, &counts(rows)) {
            Ok(Persistence::Committed) => acked += 1,
            Ok(Persistence::Degraded) => {}
            Err(_) => {
                return ScriptRun {
                    store: None,
                    acked,
                    issued,
                }
            }
        }
    }
    ScriptRun {
        store: Some(store),
        acked,
        issued,
    }
}

#[test]
fn every_crash_point_recovers_an_exact_prefix() {
    // Profiling pass: count the script's mutating operations fault-free.
    let mem = Arc::new(MemVfs::new());
    let fv = Arc::new(FaultVfs::new(mem as Arc<dyn Vfs>, FaultPlan::none()));
    let clean = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::none());
    assert_eq!(clean.acked, RUNS.len());
    let store = clean.store.expect("fault-free script completes");
    assert_eq!(store.raw_totals(), expected(RUNS.len()));
    assert_eq!(store.counters().compactions, 1);
    drop(store);
    let total_ops = fv.op_count();
    assert!(
        total_ops >= 20,
        "script too small to be an interesting battery: {total_ops} ops"
    );

    for k in 0..total_ops {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::crash_at(k),
        ));
        let crashed = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::none());
        // The final ops belong to the store's Drop (lock release), so the
        // crash may only fire once the store is gone.
        drop(crashed.store);
        assert!(fv.crashed(), "op {k} of {total_ops} never fired");

        // Reopen the surviving filesystem with a clean accessor — the
        // crashed writer is dead, so its lock is stolen. The default read
        // path checksum-verifies every salvaged frame.
        let recovered = ProfileStore::open(mem as Arc<dyn Vfs>, DIR, steal_opts())
            .unwrap_or_else(|e| panic!("clean reopen after crash at op {k} died: {e}"));
        assert!(
            recovered.is_persistent(),
            "reopen after crash at op {k} degraded: {:?}",
            recovered.warnings()
        );
        let got = recovered.raw_totals();
        let matched = (crashed.acked..=crashed.issued).find(|&m| got == expected(m));
        assert!(
            matched.is_some(),
            "crash at op {k}: recovered state is not a committed prefix \
             (acked {} / issued {}): {got:?}",
            crashed.acked,
            crashed.issued
        );
    }
}

#[test]
fn seeded_fault_storms_never_lose_in_memory_data() {
    for seed in 0..32u64 {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::from_seed(seed),
        ));
        let run = run_script(fv.clone() as Arc<dyn Vfs>, RetryPolicy::immediate(4));
        // No crash points in a from_seed plan: degrade, never die.
        let store = run
            .store
            .unwrap_or_else(|| panic!("seed {seed}: script died without a crash plan"));
        assert_eq!(run.issued, RUNS.len());
        assert_eq!(
            store.raw_totals(),
            expected(RUNS.len()),
            "seed {seed}: the in-memory view must survive any I/O weather"
        );
        if store.is_degraded() {
            assert!(
                !store.warnings().is_empty(),
                "seed {seed}: degradation must be surfaced"
            );
        }
        let injected = fv.counters();
        drop(store);

        // Whatever reached disk is an exact committed prefix.
        let recovered = ProfileStore::open(mem as Arc<dyn Vfs>, DIR, steal_opts()).unwrap();
        let got = recovered.raw_totals();
        let matched = (0..=RUNS.len()).find(|&m| got == expected(m));
        assert!(
            matched.is_some(),
            "seed {seed} (injected {injected:?}): disk state is not a prefix: {got:?}"
        );
        assert!(
            matched.unwrap() >= run.acked.min(RUNS.len()),
            "seed {seed}: disk lost acknowledged appends (acked {}, disk holds {})",
            run.acked,
            matched.unwrap()
        );
    }
}
