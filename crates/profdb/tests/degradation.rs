//! Graceful-degradation contract: a profile database that cannot reach
//! its disk keeps accumulating in memory, surfaces a warning, and never
//! panics — a read-only filesystem, a disk that fills mid-append, or a
//! lock that cannot be acquired all cost durability, not correctness.

use std::sync::Arc;

use mffault::{FaultPlan, FaultVfs, MemVfs, RetryPolicy, Vfs};
use mfprofdb::{LockMode, OpenOptions, Persistence, ProfileStore};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

const DIR: &str = "/db";

fn counts(rows: &[(u32, u64, u64)]) -> BranchCounts {
    rows.iter()
        .map(|&(id, e, t)| (BranchId(id), e, t))
        .collect()
}

fn opts() -> OpenOptions {
    OpenOptions {
        lock: LockMode::Steal,
        retry: RetryPolicy::none(),
    }
}

#[test]
fn read_only_filesystem_degrades_to_memory() {
    // Every mutation denied — the moral equivalent of a read-only mount
    // (run as root, a chmod-based test would be a no-op).
    let fv: Arc<dyn Vfs> = Arc::new(FaultVfs::new(
        Arc::new(MemVfs::new()) as Arc<dyn Vfs>,
        FaultPlan::deny_writes(),
    ));
    let mut store = ProfileStore::open(fv, DIR, opts()).expect("degrade, not die");
    assert!(store.is_degraded());
    assert!(
        store.warnings().iter().any(|w| w.contains("in memory")),
        "warnings: {:?}",
        store.warnings()
    );
    for i in 0..3u64 {
        assert_eq!(
            store.append("train", &counts(&[(0, 10 + i, i)])).unwrap(),
            Persistence::Degraded
        );
    }
    assert_eq!(store.counters().degraded_appends, 3);
    assert_eq!(store.raw_profile("train").unwrap(), vec![(0, 33, 3)]);
    // Compaction on a degraded store is a no-op, not an error.
    store.compact().unwrap();
    assert_eq!(store.raw_profile("train").unwrap(), vec![(0, 33, 3)]);
}

#[test]
fn enospc_mid_append_preserves_the_committed_prefix() {
    let mem = Arc::new(MemVfs::new());
    let fv = Arc::new(FaultVfs::new(
        mem.clone() as Arc<dyn Vfs>,
        FaultPlan::none(),
    ));
    let mut store =
        ProfileStore::open(fv.clone() as Arc<dyn Vfs>, DIR, opts()).expect("clean open");
    assert_eq!(
        store.append("train", &counts(&[(0, 10, 4)])).unwrap(),
        Persistence::Committed
    );
    assert_eq!(
        store.append("ref", &counts(&[(1, 5, 5)])).unwrap(),
        Persistence::Committed
    );

    // The disk fills: every data write now fails with ENOSPC (possibly
    // after landing a partial prefix).
    fv.set_plan(FaultPlan {
        enospc_per_mille: 1000,
        ..FaultPlan::none()
    });
    assert_eq!(
        store.append("train", &counts(&[(0, 99, 99)])).unwrap(),
        Persistence::Degraded
    );
    assert!(store.is_degraded());
    assert!(
        store.warnings().iter().any(|w| w.contains("in memory")),
        "warnings: {:?}",
        store.warnings()
    );
    // Later appends stay in memory without touching the broken disk.
    assert_eq!(
        store.append("ref", &counts(&[(1, 1, 0)])).unwrap(),
        Persistence::Degraded
    );
    // The complete view survives in memory.
    assert_eq!(store.raw_profile("train").unwrap(), vec![(0, 109, 103)]);
    assert_eq!(store.raw_profile("ref").unwrap(), vec![(1, 6, 5)]);
    drop(store);

    // On disk: exactly the two committed appends, and no torn garbage —
    // the failed append's partial frame was repaired away (or dropped by
    // checksum salvage if even the repair was refused).
    let recovered = ProfileStore::open(mem as Arc<dyn Vfs>, DIR, opts()).unwrap();
    assert_eq!(recovered.records().len(), 2);
    assert_eq!(recovered.raw_profile("train").unwrap(), vec![(0, 10, 4)]);
    assert_eq!(recovered.raw_profile("ref").unwrap(), vec![(1, 5, 5)]);
}

#[test]
fn unopenable_directory_degrades_to_memory() {
    // Directory creation itself is denied — nothing on disk at all.
    let fv: Arc<dyn Vfs> = Arc::new(FaultVfs::new(
        Arc::new(MemVfs::new()) as Arc<dyn Vfs>,
        FaultPlan::deny_writes(),
    ));
    let mut store = ProfileStore::open(fv, "/no/such/mount", opts()).unwrap();
    assert!(store.is_degraded());
    assert!(store.warnings()[0].contains("unavailable"));
    assert_eq!(
        store.append("x", &counts(&[(0, 1, 1)])).unwrap(),
        Persistence::Degraded
    );
    assert_eq!(store.raw_profile("x").unwrap(), vec![(0, 1, 1)]);
}

#[test]
fn transient_faults_are_absorbed_by_retry_without_degrading() {
    // A 300‰ transient rate with four immediate retries: every operation
    // eventually succeeds, so the store must stay fully persistent.
    let mem = Arc::new(MemVfs::new());
    let fv = Arc::new(FaultVfs::new(
        mem.clone() as Arc<dyn Vfs>,
        FaultPlan::transient(7, 300),
    ));
    let mut store = ProfileStore::open(
        fv.clone() as Arc<dyn Vfs>,
        DIR,
        OpenOptions {
            lock: LockMode::Steal,
            retry: RetryPolicy::immediate(4),
        },
    )
    .unwrap();
    assert!(store.is_persistent(), "{:?}", store.warnings());
    for i in 0..5u64 {
        assert_eq!(
            store.append("train", &counts(&[(0, i + 1, 1)])).unwrap(),
            Persistence::Committed,
            "append {i}"
        );
    }
    assert!(
        store.counters().io_retries > 0,
        "a 300 per-mille plan over dozens of ops should have injected something"
    );
    drop(store);
    let recovered = ProfileStore::open(mem as Arc<dyn Vfs>, DIR, opts()).unwrap();
    assert_eq!(recovered.records().len(), 5);
    assert_eq!(recovered.raw_profile("train").unwrap(), vec![(0, 15, 5)]);
}
