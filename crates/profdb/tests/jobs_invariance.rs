//! Acceptance check: a fault-free profile database fed from harness
//! outcomes round-trips bit-identically to the in-memory accumulation
//! path, regardless of how many workers the harness used. Results come
//! back in submission order at any parallelism, so the database ingest
//! order — and therefore every byte of the segment log's fold — must be
//! invariant under `--jobs`.

use std::sync::Arc;

use mffault::{MemVfs, RetryPolicy, Vfs};
use mfharness::{DiskCache, Harness, HarnessOptions, RunJob};
use mfprofdb::{LockMode, OpenOptions, Persistence, ProfileStore};
use trace_vm::{Input, VmConfig};

const BRANCHY: &str = "fn main(n: int) { var i: int = 0; var acc: int = 0; \
    while (i < n) { if (i % 3 == 0) { acc = acc + i; } \
    if (i % 7 == 0) { acc = acc - 1; } i = i + 1; } emit(acc); }";

fn open(mem: &Arc<MemVfs>) -> ProfileStore {
    ProfileStore::open(
        Arc::clone(mem) as Arc<dyn Vfs>,
        "/db",
        OpenOptions {
            lock: LockMode::None,
            retry: RetryPolicy::none(),
        },
    )
    .expect("fault-free open")
}

#[test]
fn db_accumulation_is_invariant_under_harness_parallelism() {
    let program = Arc::new(mflang::compile(BRANCHY).unwrap());
    let batch: Vec<RunJob> = (0..6i64)
        .map(|i| {
            RunJob::new(
                "inv",
                format!("n{i}"),
                Arc::clone(&program),
                vec![Input::Int(50 + i * 37)],
                VmConfig::default(),
            )
        })
        .collect();

    let mut snapshots = Vec::new();
    let mut raw = Vec::new();
    let mut segment_bytes = Vec::new();
    for workers in [1usize, 8] {
        let harness = Harness::new(HarnessOptions {
            jobs: Some(workers),
            disk_cache: DiskCache::Off,
            ..HarnessOptions::default()
        });
        let outcomes = harness.run(batch.clone()).unwrap();

        let mem = Arc::new(MemVfs::new());
        let mut store = open(&mem);
        let mut direct = ifprob::ProfileDb::new();
        for outcome in &outcomes {
            assert_eq!(
                store
                    .append(&outcome.label, &outcome.stats.branches)
                    .unwrap(),
                Persistence::Committed
            );
            direct.record(&outcome.label, &outcome.stats.branches);
        }
        store.compact().unwrap();
        drop(store);

        // Through the disk and back: identical to never having left RAM.
        let recovered = open(&mem);
        assert!(
            recovered.warnings().is_empty(),
            "{:?}",
            recovered.warnings()
        );
        assert_eq!(recovered.snapshot(), direct, "jobs={workers}");
        snapshots.push(recovered.snapshot());
        raw.push(recovered.raw_totals());

        // And the segment bytes themselves are deterministic: the
        // compacted log must be byte-identical across parallelism.
        let seg = recovered.active_segment().unwrap().to_path_buf();
        segment_bytes.push(mem.read(&seg).unwrap());
    }
    assert_eq!(snapshots[0], snapshots[1], "snapshot differs across --jobs");
    assert_eq!(raw[0], raw[1], "raw totals differ across --jobs");
    assert_eq!(
        segment_bytes[0], segment_bytes[1],
        "segment bytes differ across --jobs"
    );
}
