//! The segment-file codec.
//!
//! A segment is a checksummed header followed by length-prefixed,
//! individually checksummed frames (one frame per appended run profile,
//! or one frame per group-committed *batch* of run profiles):
//!
//! ```text
//! header  = "MFPD" version:u8 generation:u64 folds_through:u64
//!           base_len:u64 fnv64(previous 29 bytes):u64        (37 bytes)
//! frame   = payload_len:u32 payload fnv64(payload):u64
//! payload = kind:u8(=1) record                        (single run)
//!         | kind:u8(=2) n:u32 record * n              (batch)
//!         | kind:u8(=3) record_v2                     (single run + fps)
//!         | kind:u8(=4) n:u32 record_v2 * n           (batch + fps)
//! record  = name_len:u32 name:bytes
//!           n:u32 { branch_id:u32 executed:u64 taken:u64 } * n
//! record_v2 = record f:u32 { branch_id:u32 fingerprint:u64 } * f
//! ```
//!
//! The v2 kinds (3/4) extend each record with the structural site
//! fingerprints (`mfstale`) of the branches it profiled, enabling
//! version-skew-tolerant reuse. Records without fingerprints keep
//! encoding as the v1 kinds byte-for-byte, and v1 frames stay readable
//! forever (they decode with an empty fingerprint list).
//!
//! All integers little-endian. `generation` orders segments;
//! `folds_through` marks a compacted segment as superseding every
//! generation `<=` it; `base_len` is the byte length the file had when
//! its creation was committed — a file shorter than its own `base_len`
//! was torn mid-creation and never contained acknowledged data, so it can
//! be discarded whole. Frames past `base_len` (the appends) are governed
//! by salvage: the longest prefix of structurally complete, checksum-
//! valid frames wins, and everything after it is a torn tail. Because a
//! batch is one frame under one checksum, salvage is all-or-nothing at
//! batch granularity — a torn group commit can never resurface as a
//! partial batch.
//!
//! The codec is public: `mfprofsvc` shard logs speak the same format, so
//! any shard directory is also a readable `mfprofdb` database.

/// Segment-header magic.
pub const MAGIC: &[u8; 4] = b"MFPD";
/// On-disk format version.
pub const VERSION: u8 = 1;
/// Encoded header size.
pub const HEADER_LEN: usize = 37;
/// Sanity bound on a single frame payload (a run profile is at most a
/// few thousand branch entries and group commits are chunked well below
/// this; 16 MiB is absurdly generous).
pub const MAX_PAYLOAD: u32 = 16 << 20;
const KIND_RUN: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_RUN_V2: u8 = 3;
const KIND_BATCH_V2: u8 = 4;

/// 64-bit FNV-1a — same checksum the harness cache uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One appended run profile: a dataset name plus raw
/// `(branch, executed, taken)` entries. Kept raw (not `BranchCounts`) so
/// reading a corrupted-but-accepted frame can never trip a counter
/// invariant — semantic judgment belongs to the consumer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileRecord {
    /// Dataset the counts belong to.
    pub dataset: String,
    /// `(branch id, executed, taken)` in id order.
    pub entries: Vec<(u32, u64, u64)>,
    /// `(branch id, structural fingerprint)` in id order — the `mfstale`
    /// site fingerprints of the program the counts were gathered on.
    /// Empty for legacy records (and for writers that do not fingerprint);
    /// such records encode as v1 frames byte-for-byte.
    pub fps: Vec<(u32, u64)>,
}

/// A decoded segment header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Ordering rank among the segments of one database directory.
    pub generation: u64,
    /// Highest generation this (compacted) segment supersedes; 0 for a
    /// plain append segment.
    pub folds_through: u64,
    /// File length at creation-commit time; a shorter file was torn
    /// mid-creation and is discarded whole.
    pub base_len: u64,
}

/// Encodes a segment header, checksum included.
pub fn encode_header(h: &SegmentHeader) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.extend_from_slice(&h.generation.to_le_bytes());
    buf.extend_from_slice(&h.folds_through.to_le_bytes());
    buf.extend_from_slice(&h.base_len.to_le_bytes());
    let sum = fnv64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Decodes and validates the first [`HEADER_LEN`] bytes of a segment.
pub fn decode_header(bytes: &[u8]) -> Option<SegmentHeader> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let (body, sum) = bytes[..HEADER_LEN].split_at(HEADER_LEN - 8);
    if u64::from_le_bytes(sum.try_into().ok()?) != fnv64(body) {
        return None;
    }
    if &body[..4] != MAGIC || body[4] != VERSION {
        return None;
    }
    let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes"));
    Some(SegmentHeader {
        generation: u64_at(5),
        folds_through: u64_at(13),
        base_len: u64_at(21),
    })
}

/// Encoded size of one record body, for pre-sizing and for chunking
/// batches below [`MAX_PAYLOAD`]. Slightly overestimates fingerprint-free
/// records (they omit the v2 fingerprint count), which keeps chunking
/// safe regardless of which frame kind a mixed batch ends up using.
pub fn record_body_len(record: &ProfileRecord) -> usize {
    12 + record.dataset.len() + record.entries.len() * 20 + record.fps.len() * 12
}

fn encode_record_body(record: &ProfileRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&(record.dataset.len() as u32).to_le_bytes());
    out.extend_from_slice(record.dataset.as_bytes());
    out.extend_from_slice(&(record.entries.len() as u32).to_le_bytes());
    for &(id, executed, taken) in &record.entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&executed.to_le_bytes());
        out.extend_from_slice(&taken.to_le_bytes());
    }
}

fn encode_record_body_v2(record: &ProfileRecord, out: &mut Vec<u8>) {
    encode_record_body(record, out);
    out.extend_from_slice(&(record.fps.len() as u32).to_le_bytes());
    for &(id, fp) in &record.fps {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&fp.to_le_bytes());
    }
}

fn seal_frame(payload: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let sum = fnv64(&payload);
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// Encodes one record as a single-run frame. Fingerprint-free records
/// produce v1 frames byte-for-byte; records carrying fingerprints produce
/// v2 frames.
pub fn encode_frame(record: &ProfileRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + record_body_len(record));
    if record.fps.is_empty() {
        payload.push(KIND_RUN);
        encode_record_body(record, &mut payload);
    } else {
        payload.push(KIND_RUN_V2);
        encode_record_body_v2(record, &mut payload);
    }
    seal_frame(payload)
}

/// Encodes a group-committed batch as ONE frame under ONE checksum, so
/// the salvage walk keeps or drops the whole batch — a torn group commit
/// can never recover to a partial batch. The caller keeps the encoded
/// payload under [`MAX_PAYLOAD`] by chunking submissions across frames.
pub fn encode_batch_frame(records: &[ProfileRecord]) -> Vec<u8> {
    let body: usize = records.iter().map(record_body_len).sum();
    let mut payload = Vec::with_capacity(5 + body);
    // A batch is v2 as soon as ANY member carries fingerprints (members
    // without them encode a zero fingerprint count); an all-legacy batch
    // stays a v1 frame byte-for-byte.
    let v2 = records.iter().any(|r| !r.fps.is_empty());
    payload.push(if v2 { KIND_BATCH_V2 } else { KIND_BATCH });
    payload.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        if v2 {
            encode_record_body_v2(r, &mut payload);
        } else {
            encode_record_body(r, &mut payload);
        }
    }
    seal_frame(payload)
}

fn checksum_ok(payload: &[u8], stored: u64) -> bool {
    #[cfg(feature = "seeded-defects")]
    if mfdefect::active("profdb-checksum-skipped") {
        return true;
    }
    fnv64(payload) == stored
}

fn take<'a>(payload: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    if end > payload.len() {
        return None;
    }
    let s = &payload[*pos..end];
    *pos = end;
    Some(s)
}

fn decode_record_body(payload: &[u8], pos: &mut usize, v2: bool) -> Option<ProfileRecord> {
    let name_len = u32::from_le_bytes(take(payload, pos, 4)?.try_into().ok()?) as usize;
    let dataset = String::from_utf8(take(payload, pos, name_len)?.to_vec()).ok()?;
    let n = u32::from_le_bytes(take(payload, pos, 4)?.try_into().ok()?) as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let id = u32::from_le_bytes(take(payload, pos, 4)?.try_into().ok()?);
        let executed = u64::from_le_bytes(take(payload, pos, 8)?.try_into().ok()?);
        let taken = u64::from_le_bytes(take(payload, pos, 8)?.try_into().ok()?);
        entries.push((id, executed, taken));
    }
    let mut fps = Vec::new();
    if v2 {
        let f = u32::from_le_bytes(take(payload, pos, 4)?.try_into().ok()?) as usize;
        fps.reserve(f.min(1 << 16));
        for _ in 0..f {
            let id = u32::from_le_bytes(take(payload, pos, 4)?.try_into().ok()?);
            let fp = u64::from_le_bytes(take(payload, pos, 8)?.try_into().ok()?);
            fps.push((id, fp));
        }
    }
    Some(ProfileRecord {
        dataset,
        entries,
        fps,
    })
}

/// A frame payload decodes to the batch of records it committed
/// atomically: one for a run frame, any number for a batch frame.
fn decode_payload(payload: &[u8]) -> Option<Vec<ProfileRecord>> {
    let mut pos = 0usize;
    let records = match take(payload, &mut pos, 1)?[0] {
        kind @ (KIND_RUN | KIND_RUN_V2) => {
            vec![decode_record_body(payload, &mut pos, kind == KIND_RUN_V2)?]
        }
        kind @ (KIND_BATCH | KIND_BATCH_V2) => {
            let n = u32::from_le_bytes(take(payload, &mut pos, 4)?.try_into().ok()?) as usize;
            let mut records = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                records.push(decode_record_body(
                    payload,
                    &mut pos,
                    kind == KIND_BATCH_V2,
                )?);
            }
            records
        }
        _ => return None,
    };
    if pos != payload.len() {
        return None; // trailing garbage inside the frame
    }
    Some(records)
}

/// Walks the frames of a segment body (everything after the header),
/// calling `visit` once per valid frame with the records that frame
/// committed atomically. Returns the number of body bytes covered by the
/// longest valid prefix; anything beyond that is a torn tail. Visitor
/// form so a multi-gigabyte shard can be folded without materializing
/// every record at once.
pub fn walk_batches(body: &[u8], mut visit: impl FnMut(Vec<ProfileRecord>)) -> usize {
    let mut pos = 0usize;
    while let Some(len_bytes) = body.get(pos..pos + 4) {
        let payload_len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
        if payload_len > MAX_PAYLOAD {
            break;
        }
        let payload_len = payload_len as usize;
        let Some(payload) = body.get(pos + 4..pos + 4 + payload_len) else {
            break;
        };
        let Some(sum_bytes) = body.get(pos + 4 + payload_len..pos + 12 + payload_len) else {
            break;
        };
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if !checksum_ok(payload, stored) {
            break;
        }
        let Some(records) = decode_payload(payload) else {
            break;
        };
        visit(records);
        pos += 12 + payload_len;
    }
    pos
}

/// [`walk_batches`] flattened: the salvaged records in append order plus
/// the valid-prefix length.
pub fn walk_frames(body: &[u8]) -> (Vec<ProfileRecord>, usize) {
    let mut records = Vec::new();
    let valid = walk_batches(body, |batch| records.extend(batch));
    (records, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileRecord {
        ProfileRecord {
            dataset: "train".into(),
            entries: vec![(0, 100, 40), (7, 5, 5), (9, 1, 0)],
            ..Default::default()
        }
    }

    fn sample_v2() -> ProfileRecord {
        ProfileRecord {
            dataset: "train".into(),
            entries: vec![(0, 100, 40), (7, 5, 5), (9, 1, 0)],
            fps: vec![(0, 0xDEAD_BEEF), (7, 42), (9, u64::MAX)],
        }
    }

    #[test]
    fn fingerprinted_frames_roundtrip() {
        let records = vec![sample_v2(), sample(), sample_v2()];
        let mut body = Vec::new();
        for r in &records {
            body.extend_from_slice(&encode_frame(r));
        }
        let (got, valid) = walk_frames(&body);
        assert_eq!(got, records);
        assert_eq!(valid, body.len());
    }

    #[test]
    fn fingerprint_free_records_encode_as_legacy_frames() {
        // The compatibility contract: a writer that never fingerprints
        // produces bytes indistinguishable from the pre-v2 codec, so old
        // readers (and old databases) are unaffected.
        let frame = encode_frame(&sample());
        assert_eq!(frame[4], KIND_RUN, "kind byte must stay v1");
        let batch = encode_batch_frame(&[sample(), sample()]);
        assert_eq!(batch[4], KIND_BATCH, "batch kind byte must stay v1");
        let v2 = encode_frame(&sample_v2());
        assert_eq!(v2[4], KIND_RUN_V2);
    }

    #[test]
    fn mixed_batch_promotes_to_v2_and_roundtrips() {
        let records = vec![sample(), sample_v2(), sample()];
        let frame = encode_batch_frame(&records);
        assert_eq!(frame[4], KIND_BATCH_V2);
        let (got, valid) = walk_frames(&frame);
        assert_eq!(got, records);
        assert_eq!(valid, frame.len());
    }

    #[test]
    fn damaged_v2_frame_is_rejected() {
        let good = encode_frame(&sample());
        let mut body = good.clone();
        body.extend_from_slice(&encode_frame(&sample_v2()));
        for i in good.len()..body.len() {
            let mut bad = body.clone();
            bad[i] ^= 0x41;
            let (got, valid) = walk_frames(&bad);
            assert_eq!(got, vec![sample()], "byte {i}");
            assert_eq!(valid, good.len(), "byte {i}");
        }
    }

    #[test]
    fn header_roundtrips_and_rejects_damage() {
        let h = SegmentHeader {
            generation: 3,
            folds_through: 2,
            base_len: 1234,
        };
        let buf = encode_header(&h);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(decode_header(&buf), Some(h));
        for len in 0..buf.len() {
            assert_eq!(decode_header(&buf[..len]), None, "truncated to {len}");
        }
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            assert_eq!(decode_header(&bad), None, "flipped byte {i}");
        }
    }

    #[test]
    fn frames_roundtrip() {
        let records = vec![
            sample(),
            ProfileRecord {
                dataset: "ref".into(),
                entries: vec![],
                ..Default::default()
            },
        ];
        let mut body = Vec::new();
        for r in &records {
            body.extend_from_slice(&encode_frame(r));
        }
        let (got, valid) = walk_frames(&body);
        assert_eq!(got, records);
        assert_eq!(valid, body.len());
    }

    #[test]
    fn every_truncation_salvages_a_frame_prefix() {
        let records: Vec<ProfileRecord> = (0..4)
            .map(|i| ProfileRecord {
                dataset: format!("ds{i}"),
                entries: vec![(i, 10 + u64::from(i), 3)],
                ..Default::default()
            })
            .collect();
        let frames: Vec<Vec<u8>> = records.iter().map(encode_frame).collect();
        let body: Vec<u8> = frames.concat();
        let boundaries: Vec<usize> = frames
            .iter()
            .scan(0, |acc, f| {
                *acc += f.len();
                Some(*acc)
            })
            .collect();
        for len in 0..=body.len() {
            let (got, valid) = walk_frames(&body[..len]);
            // Salvage stops exactly at the last complete frame boundary.
            let complete = boundaries.iter().filter(|&&b| b <= len).count();
            assert_eq!(got.len(), complete, "len {len}");
            assert_eq!(got[..], records[..complete], "len {len}");
            assert_eq!(
                valid,
                boundaries
                    .get(complete.wrapping_sub(1))
                    .copied()
                    .unwrap_or(0)
            );
        }
    }

    #[test]
    fn any_flipped_byte_drops_that_frame_and_its_suffix() {
        let records: Vec<ProfileRecord> = (0..3)
            .map(|i| ProfileRecord {
                dataset: format!("ds{i}"),
                entries: vec![(i, 100, 40)],
                ..Default::default()
            })
            .collect();
        let frames: Vec<Vec<u8>> = records.iter().map(encode_frame).collect();
        let body: Vec<u8> = frames.concat();
        for i in 0..body.len() {
            let mut bad = body.clone();
            bad[i] ^= 0x41;
            let (got, _) = walk_frames(&bad);
            // The records before the damaged frame must survive intact;
            // the damaged frame and everything after must be dropped
            // (a flipped length prefix may also desynchronize earlier).
            let frame_of_i = frames
                .iter()
                .scan(0usize, |acc, f| {
                    *acc += f.len();
                    Some(*acc)
                })
                .position(|end| i < end)
                .expect("byte inside some frame");
            assert!(got.len() <= frame_of_i, "byte {i}");
            assert_eq!(got[..], records[..got.len()], "byte {i}");
        }
    }

    #[test]
    fn batch_frames_roundtrip_and_interleave_with_run_frames() {
        let batch: Vec<ProfileRecord> = (0..3)
            .map(|i| ProfileRecord {
                dataset: format!("b{i}"),
                entries: vec![(i, 2 * u64::from(i) + 1, u64::from(i))],
                ..Default::default()
            })
            .collect();
        let mut body = encode_frame(&sample());
        body.extend_from_slice(&encode_batch_frame(&batch));
        body.extend_from_slice(&encode_batch_frame(&[]));
        body.extend_from_slice(&encode_frame(&sample()));
        let mut batches = Vec::new();
        let valid = walk_batches(&body, |b| batches.push(b));
        assert_eq!(valid, body.len());
        assert_eq!(
            batches,
            vec![vec![sample()], batch.clone(), vec![], vec![sample()]]
        );
        let (flat, flat_valid) = walk_frames(&body);
        assert_eq!(flat_valid, body.len());
        let mut expected = vec![sample()];
        expected.extend(batch);
        expected.push(sample());
        assert_eq!(flat, expected);
    }

    #[test]
    fn damaged_batch_frame_drops_the_whole_batch() {
        let batch: Vec<ProfileRecord> = (0..4)
            .map(|i| ProfileRecord {
                dataset: format!("b{i}"),
                entries: vec![(i, 10, 5)],
                ..Default::default()
            })
            .collect();
        let first = encode_frame(&sample());
        let mut body = first.clone();
        body.extend_from_slice(&encode_batch_frame(&batch));
        // Flip any single byte inside the batch frame: the whole batch
        // must vanish — never a partial batch — and the run frame before
        // it must survive.
        for i in first.len()..body.len() {
            let mut bad = body.clone();
            bad[i] ^= 0x41;
            let (got, valid) = walk_frames(&bad);
            assert_eq!(got, vec![sample()], "byte {i}");
            assert_eq!(valid, first.len(), "byte {i}");
        }
    }

    #[test]
    fn insane_length_prefix_is_a_torn_tail() {
        let mut body = encode_frame(&sample());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&[0xAB; 100]);
        let (got, valid) = walk_frames(&body);
        assert_eq!(got.len(), 1);
        assert_eq!(valid, encode_frame(&sample()).len());
    }
}
