#![warn(missing_docs)]

//! # mfprofdb — the crash-safe cross-run profile database
//!
//! The paper's IFPROBBER accumulated `(executed, taken)` counter pairs
//! "into a database across runs"; this crate is that database, built to
//! survive what real databases survive: torn writes, `ENOSPC`, crashes
//! mid-append, crashes mid-compaction, and concurrent writers.
//!
//! Layout: a directory of segment files (`seg-<generation>.mfdb`), each
//! an append-only log of checksummed frames — one frame per appended run
//! profile (see [`format`](self) internals). The write protocol is
//! append-then-sync; a sync acknowledgment is the commit point.
//! Recovery salvages the longest valid frame prefix of each surviving
//! segment and truncates the torn tail. Compaction folds all records
//! into one frame per dataset in a new segment whose header supersedes
//! (`folds_through`) every older generation — written to a temp name,
//! synced, then renamed, and validated by a committed-length field so a
//! torn copy can never masquerade as a complete compaction.
//!
//! A `LOCK` file serializes writers (bounded deterministic backoff, with
//! liveness-checked staleness detection so a crashed writer's lock does
//! not wedge the database forever). Every failure that is not a crash
//! degrades the store to in-memory accumulation with a surfaced warning
//! — opening or appending never panics and never loses the current
//! process's data.
//!
//! All I/O goes through [`mffault::Vfs`], so the crash battery can
//! enumerate every crash-point deterministically on an in-memory
//! filesystem.

pub mod format;

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mffault::{is_crash, RetryPolicy, Vfs};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

pub use format::ProfileRecord;

/// Name of the writer-serialization lock file.
const LOCK_FILE: &str = "LOCK";

/// How [`ProfileStore::open`] should handle the writer lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Try to acquire; on contention back off deterministically, then
    /// check the holder's liveness and steal a dead holder's lock.
    Acquire {
        /// Retries after the first attempt.
        attempts: u32,
        /// Backoff before retry `i` is `base * (i + 1)`.
        base: Duration,
    },
    /// Take the lock unconditionally — for crash-recovery tests, where
    /// the previous holder is known dead.
    Steal,
    /// Skip locking entirely (single-accessor callers).
    None,
}

impl Default for LockMode {
    fn default() -> Self {
        LockMode::Acquire {
            attempts: 5,
            base: Duration::from_millis(2),
        }
    }
}

/// Open-time knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenOptions {
    /// Writer-lock handling.
    pub lock: LockMode,
    /// Bounded retry for transient I/O faults.
    pub retry: RetryPolicy,
}

/// Where an append landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persistence {
    /// Durable in the segment log (append + sync acknowledged).
    Committed,
    /// In memory only — the store is (now) degraded.
    Degraded,
}

/// The only hard failure: an injected crash-point fired. The accessor is
/// dead; tests treat this as process death. Real filesystems never
/// produce it — every real I/O failure degrades instead.
#[derive(Debug)]
pub struct DbError {
    /// The operation that was interrupted.
    pub op: &'static str,
    /// The underlying (injected) crash error.
    pub source: io::Error,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile db crashed during {}: {}", self.op, self.source)
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Observability counters for one store's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Appends acknowledged durable.
    pub committed_appends: u64,
    /// Appends that fell back to memory.
    pub degraded_appends: u64,
    /// Records recovered from disk at open.
    pub salvaged_records: u64,
    /// Torn-tail bytes truncated at open.
    pub truncated_bytes: u64,
    /// Transient I/O faults absorbed by retry.
    pub io_retries: u64,
    /// Successful compactions.
    pub compactions: u64,
}

/// Per-dataset raw accumulation: branch id → (executed, taken), summed
/// saturating so even nonsense counts (from a seeded defect) cannot trip
/// an arithmetic invariant while being compared against expectations.
type RawFold = BTreeMap<String, BTreeMap<u32, (u64, u64)>>;

#[derive(Debug)]
struct Persist {
    segment: PathBuf,
    generation: u64,
    /// Acknowledged byte length of the active segment; the repair target
    /// after a failed append.
    committed_len: u64,
}

/// The crash-safe profile store. See the crate docs for the protocol.
#[derive(Debug)]
pub struct ProfileStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    retry: RetryPolicy,
    persist: Option<Persist>,
    locked: bool,
    records: Vec<ProfileRecord>,
    fold: RawFold,
    /// Program-wide structural fingerprints folded across every record
    /// that carried them (last writer wins per branch id). Fingerprints
    /// describe the *program*, not a dataset, so one map serves all.
    fps: BTreeMap<u32, u64>,
    warnings: Vec<String>,
    counters: StoreCounters,
}

/// Classifies an I/O result: crashes become `DbError`, everything else
/// stays for the caller's degrade-or-proceed policy.
fn crash_check<T>(op: &'static str, result: io::Result<T>) -> Result<io::Result<T>, DbError> {
    match result {
        Err(e) if is_crash(&e) => Err(DbError { op, source: e }),
        other => Ok(other),
    }
}

impl ProfileStore {
    /// Opens (or creates) the database at `dir`. Returns `Err` only on an
    /// injected crash; every real failure yields a degraded, in-memory
    /// store with a warning in [`ProfileStore::warnings`].
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
        options: OpenOptions,
    ) -> Result<Self, DbError> {
        let dir = dir.into();
        let mut store = ProfileStore {
            vfs,
            dir,
            retry: options.retry,
            persist: None,
            locked: false,
            records: Vec::new(),
            fold: RawFold::new(),
            fps: BTreeMap::new(),
            warnings: Vec::new(),
            counters: StoreCounters::default(),
        };

        let made = store.io("create db directory", |vfs, dir| vfs.create_dir_all(dir))?;
        if let Err(e) = made {
            store.degrade(format!(
                "profile db directory {} unavailable ({e}); accumulating in memory only",
                store.dir.display()
            ));
            return Ok(store);
        }

        if !store.acquire_lock(options.lock)? {
            return Ok(store);
        }

        store.recover()?;
        Ok(store)
    }

    // -- public accessors ------------------------------------------------

    /// False once the store fell back to in-memory accumulation.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// True when appends no longer reach disk.
    pub fn is_degraded(&self) -> bool {
        self.persist.is_none()
    }

    /// Everything that went wrong so far, in order, human-readable.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Lifetime counters.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment file, when persistent.
    pub fn active_segment(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.segment.as_path())
    }

    /// Every record currently in the store (recovered + appended), in
    /// log order. After a compaction this is one folded record per
    /// dataset followed by any later appends.
    pub fn records(&self) -> &[ProfileRecord] {
        &self.records
    }

    /// Dataset names present, sorted.
    pub fn datasets(&self) -> Vec<&str> {
        self.fold.keys().map(String::as_str).collect()
    }

    /// Raw accumulated `(branch, executed, taken)` rows for one dataset.
    pub fn raw_profile(&self, dataset: &str) -> Option<Vec<(u32, u64, u64)>> {
        self.fold
            .get(dataset)
            .map(|m| m.iter().map(|(&id, &(e, t))| (id, e, t)).collect())
    }

    /// Raw accumulated totals for every dataset — the comparison currency
    /// of the crash battery and the fuzz oracle (no counter invariants
    /// are asserted on the way out).
    pub fn raw_totals(&self) -> BTreeMap<String, Vec<(u32, u64, u64)>> {
        self.fold
            .iter()
            .map(|(ds, m)| {
                (
                    ds.clone(),
                    m.iter().map(|(&id, &(e, t))| (id, e, t)).collect(),
                )
            })
            .collect()
    }

    /// Structural site fingerprints folded across every record that
    /// carried them, keyed by branch id. Empty for a database written
    /// entirely by legacy (fingerprint-free) writers.
    pub fn fingerprints(&self) -> &BTreeMap<u32, u64> {
        &self.fps
    }

    /// The accumulated database as the in-memory [`ifprob::ProfileDb`]
    /// every downstream predictor consumes.
    pub fn snapshot(&self) -> ifprob::ProfileDb {
        let mut db = ifprob::ProfileDb::new();
        for (dataset, entries) in &self.fold {
            let counts: BranchCounts = entries
                .iter()
                .map(|(&id, &(e, t))| (BranchId(id), e, t))
                .collect();
            db.record(dataset, &counts);
        }
        db
    }

    // -- the write path --------------------------------------------------

    /// Appends one run's counters under `dataset`. Returns where the
    /// record landed; `Err` only on an injected crash.
    pub fn append(&mut self, dataset: &str, counts: &BranchCounts) -> Result<Persistence, DbError> {
        self.append_with_fps(dataset, counts, &BTreeMap::new())
    }

    /// [`ProfileStore::append`] carrying the structural site fingerprints
    /// of the program the counts were gathered on. Fingerprinted records
    /// write v2 frames; an empty map writes a legacy frame byte-for-byte.
    pub fn append_with_fps(
        &mut self,
        dataset: &str,
        counts: &BranchCounts,
        fps: &BTreeMap<BranchId, u64>,
    ) -> Result<Persistence, DbError> {
        let record = ProfileRecord {
            dataset: dataset.to_string(),
            entries: counts.iter().map(|(id, e, t)| (id.0, e, t)).collect(),
            fps: fps.iter().map(|(&id, &fp)| (id.0, fp)).collect(),
        };
        let persistence = self.persist_record(&record)?;
        self.ingest(record);
        Ok(persistence)
    }

    fn persist_record(&mut self, record: &ProfileRecord) -> Result<Persistence, DbError> {
        let Some(persist) = &self.persist else {
            self.counters.degraded_appends += 1;
            return Ok(Persistence::Degraded);
        };
        let segment = persist.segment.clone();
        let committed_len = persist.committed_len;
        let frame = format::encode_frame(record);

        let appended = self.io("append frame", |vfs, _| vfs.append(&segment, &frame))?;
        let synced = match appended {
            Ok(()) => self.io("sync segment", |vfs, _| vfs.sync(&segment))?,
            Err(e) => Err(e),
        };
        match synced {
            Ok(()) => {
                let persist = self.persist.as_mut().expect("still persistent");
                persist.committed_len += frame.len() as u64;
                self.counters.committed_appends += 1;
                Ok(Persistence::Committed)
            }
            Err(e) => {
                // Repair: cut the segment back to the last acknowledged
                // byte so a partial frame cannot linger ahead of future
                // appends, then degrade.
                let repaired = self.io("truncate torn append", |vfs, _| {
                    vfs.truncate(&segment, committed_len)
                })?;
                let detail = match repaired {
                    Ok(()) => String::new(),
                    Err(re) => format!(" (tail repair also failed: {re})"),
                };
                self.degrade(format!(
                    "append to {} failed ({e}){detail}; accumulating in memory from here on",
                    segment.display()
                ));
                self.counters.degraded_appends += 1;
                Ok(Persistence::Degraded)
            }
        }
    }

    /// Folds every record into one frame per dataset inside a fresh
    /// segment that supersedes all current generations. On any real
    /// failure the store keeps running on the current segment.
    pub fn compact(&mut self) -> Result<(), DbError> {
        let Some(persist) = &self.persist else {
            return Ok(());
        };
        let generation = persist.generation;
        let new_gen = generation + 1;
        let final_path = self.segment_path(new_gen);
        let tmp = self.dir.join(format!("compact-{new_gen}.tmp"));

        // One folded record per dataset, via the same accumulation path
        // the in-memory database uses (BTreeMap order ⇒ deterministic).
        let folded: Vec<ProfileRecord> = self
            .fold
            .iter()
            .map(|(ds, m)| ProfileRecord {
                dataset: ds.clone(),
                entries: m.iter().map(|(&id, &(e, t))| (id, e, t)).collect(),
                // Fingerprints survive compaction: each folded record
                // carries the folded fingerprint of every site it counts.
                fps: m
                    .keys()
                    .filter_map(|id| self.fps.get(id).map(|&fp| (*id, fp)))
                    .collect(),
            })
            .collect();
        let mut buf = Vec::new();
        for r in &folded {
            buf.extend_from_slice(&format::encode_frame(r));
        }
        let header = format::encode_header(&format::SegmentHeader {
            generation: new_gen,
            folds_through: generation,
            base_len: (format::HEADER_LEN + buf.len()) as u64,
        });
        let mut segment_bytes = header;
        segment_bytes.extend_from_slice(&buf);
        let total_len = segment_bytes.len() as u64;

        let staged = self.io("write compaction", |vfs, _| vfs.write(&tmp, &segment_bytes))?;
        let staged = match staged {
            Ok(()) => self.io("sync compaction", |vfs, _| vfs.sync(&tmp))?,
            Err(e) => Err(e),
        };
        let renamed = match staged {
            Ok(()) => self.io("publish compaction", |vfs, _| vfs.rename(&tmp, &final_path))?,
            Err(e) => Err(e),
        };
        match renamed {
            Ok(()) => {
                let old: Vec<PathBuf> = self
                    .list_segments()?
                    .into_iter()
                    .filter(|(gen, _)| *gen <= generation)
                    .map(|(_, p)| p)
                    .collect();
                for path in old {
                    // Best-effort: a survivor is superseded by
                    // `folds_through` at the next open anyway.
                    let _ =
                        self.io("remove superseded segment", |vfs, _| vfs.remove_file(&path))?;
                }
                self.persist = Some(Persist {
                    segment: final_path,
                    generation: new_gen,
                    committed_len: total_len,
                });
                self.records = folded;
                self.counters.compactions += 1;
                Ok(())
            }
            Err(e) => {
                // A torn publish may have left a partial destination; it
                // is self-invalidating (file shorter than its header's
                // base_len), but clean it up eagerly when we can. If a
                // complete copy landed despite the error, it *will* be
                // honored at the next open — so it must go, or this
                // store's future appends (to the old segment) would be
                // superseded behind our back.
                let _ = self.io("remove staged compaction", |vfs, _| vfs.remove_file(&tmp))?;
                if self.vfs.exists(&final_path) {
                    let removed = self.io("remove torn compaction", |vfs, _| {
                        vfs.remove_file(&final_path)
                    })?;
                    if removed.is_err() {
                        self.degrade(format!(
                            "compaction to {} tore and could not be cleaned up; \
                             accumulating in memory from here on",
                            final_path.display()
                        ));
                        return Ok(());
                    }
                }
                self.warnings.push(format!(
                    "compaction failed ({e}); continuing on the current segment"
                ));
                Ok(())
            }
        }
    }

    // -- internals -------------------------------------------------------

    fn io<T>(
        &mut self,
        op: &'static str,
        f: impl FnMut(&dyn Vfs, &Path) -> io::Result<T>,
    ) -> Result<io::Result<T>, DbError> {
        let mut f = f;
        let vfs = Arc::clone(&self.vfs);
        let (result, used) = mffault::retry(self.retry, || f(vfs.as_ref(), &self.dir));
        self.counters.io_retries += u64::from(used);
        crash_check(op, result)
    }

    fn degrade(&mut self, warning: String) {
        self.persist = None;
        self.warnings.push(warning);
    }

    fn ingest(&mut self, record: ProfileRecord) {
        let per_dataset = self.fold.entry(record.dataset.clone()).or_default();
        for &(id, e, t) in &record.entries {
            let slot = per_dataset.entry(id).or_insert((0, 0));
            slot.0 = slot.0.saturating_add(e);
            slot.1 = slot.1.saturating_add(t);
        }
        for &(id, fp) in &record.fps {
            self.fps.insert(id, fp); // log order ⇒ last writer wins
        }
        self.records.push(record);
    }

    fn segment_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("seg-{generation:08}.mfdb"))
    }

    /// Segment files present, as `(generation-from-name, path)`, sorted.
    fn list_segments(&mut self) -> Result<Vec<(u64, PathBuf)>, DbError> {
        let entries = self.io("scan segments", |vfs, dir| vfs.read_dir(dir))?;
        let entries = match entries {
            Ok(e) => e,
            Err(_) => return Ok(Vec::new()),
        };
        let mut segments = Vec::new();
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(gen) = name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".mfdb"))
                .and_then(|g| g.parse::<u64>().ok())
            {
                segments.push((gen, path));
            }
        }
        segments.sort();
        Ok(segments)
    }

    fn acquire_lock(&mut self, mode: LockMode) -> Result<bool, DbError> {
        let lock_path = self.dir.join(LOCK_FILE);
        let content = std::process::id().to_string().into_bytes();
        let try_create = |store: &mut Self| -> Result<io::Result<()>, DbError> {
            store.io("acquire lock", |vfs, _| {
                vfs.create_new(&lock_path, &content)
            })
        };
        match mode {
            LockMode::None => Ok(true),
            LockMode::Steal => {
                let _ = self.io("steal lock", |vfs, _| vfs.remove_file(&lock_path))?;
                match try_create(self)? {
                    Ok(()) => {
                        self.locked = true;
                        Ok(true)
                    }
                    Err(e) => {
                        self.degrade(format!(
                            "could not take profile db lock {} ({e}); \
                             accumulating in memory only",
                            lock_path.display()
                        ));
                        Ok(false)
                    }
                }
            }
            LockMode::Acquire { attempts, base } => {
                for attempt in 0..=attempts {
                    match try_create(self)? {
                        Ok(()) => {
                            self.locked = true;
                            return Ok(true);
                        }
                        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                            if attempt < attempts && !base.is_zero() {
                                std::thread::sleep(base.saturating_mul(attempt + 1));
                            }
                        }
                        Err(e) => {
                            self.degrade(format!(
                                "could not create profile db lock {} ({e}); \
                                 accumulating in memory only",
                                lock_path.display()
                            ));
                            return Ok(false);
                        }
                    }
                }
                // Contended beyond the backoff budget: a live holder wins;
                // a dead one (crashed writer) forfeits. An unreadable or
                // unparseable lock means a torn lock write — its writer
                // died mid-create, so it is stale too.
                let holder = self
                    .io("read lock", |vfs, _| vfs.read(&lock_path))?
                    .ok()
                    .and_then(|bytes| String::from_utf8(bytes).ok())
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = match holder {
                    Some(pid) => pid != std::process::id() && !pid_alive(pid),
                    None => true,
                };
                if !stale {
                    self.degrade(format!(
                        "profile db {} is locked by a live writer (pid {:?}); \
                         accumulating in memory only",
                        self.dir.display(),
                        holder
                    ));
                    return Ok(false);
                }
                self.warnings.push(format!(
                    "profile db lock {} was held by a dead writer; stealing it",
                    lock_path.display()
                ));
                let _ = self.io("steal stale lock", |vfs, _| vfs.remove_file(&lock_path))?;
                match try_create(self)? {
                    Ok(()) => {
                        self.locked = true;
                        Ok(true)
                    }
                    Err(e) => {
                        self.degrade(format!(
                            "could not steal stale profile db lock {} ({e}); \
                             accumulating in memory only",
                            lock_path.display()
                        ));
                        Ok(false)
                    }
                }
            }
        }
    }

    /// Scans, salvages, and selects the active segment; creates the first
    /// segment on a fresh database.
    fn recover(&mut self) -> Result<(), DbError> {
        // Sweep compaction leftovers.
        let leftovers = self.io("scan db directory", |vfs, dir| vfs.read_dir(dir))?;
        if let Ok(entries) = leftovers {
            for path in entries {
                let is_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("compact-") && n.ends_with(".tmp"));
                if is_tmp {
                    let _ = self.io("remove stale compaction tmp", |vfs, _| {
                        vfs.remove_file(&path)
                    })?;
                }
            }
        }

        // Read every segment's header; collect parsed ones, discard the
        // unparseable (torn creation — nothing in them was ever acked).
        let mut parsed: Vec<(format::SegmentHeader, PathBuf, Vec<u8>)> = Vec::new();
        for (_, path) in self.list_segments()? {
            let bytes = match self.io("read segment", |vfs, _| vfs.read(&path))? {
                Ok(b) => b,
                Err(_) => continue,
            };
            match format::decode_header(&bytes) {
                Some(h) if bytes.len() as u64 >= h.base_len => parsed.push((h, path, bytes)),
                _ => {
                    self.warnings.push(format!(
                        "discarding segment {} (torn or foreign header)",
                        path.display()
                    ));
                    let _ = self.io("remove torn segment", |vfs, _| vfs.remove_file(&path))?;
                }
            }
        }

        // A compacted segment supersedes every generation <= its
        // folds_through mark; apply the strongest mark present.
        let folds_through = parsed.iter().map(|(h, _, _)| h.folds_through).max();
        if let Some(f) = folds_through {
            let (keep, superseded): (Vec<_>, Vec<_>) =
                parsed.into_iter().partition(|(h, _, _)| h.generation > f);
            for (_, path, _) in superseded {
                let _ = self.io("remove superseded segment", |vfs, _| vfs.remove_file(&path))?;
            }
            parsed = keep;
        }
        parsed.sort_by_key(|(h, _, _)| h.generation);

        // Salvage frames, oldest generation first; truncate torn tails.
        let mut active: Option<Persist> = None;
        for (header, path, bytes) in &parsed {
            let body = &bytes[format::HEADER_LEN..];
            let (records, valid_body) = format::walk_frames(body);
            let valid_len = (format::HEADER_LEN + valid_body) as u64;
            if valid_len < bytes.len() as u64 {
                let dropped = bytes.len() as u64 - valid_len;
                self.counters.truncated_bytes += dropped;
                self.warnings.push(format!(
                    "salvaged {} of {} bytes from {} (torn tail of {dropped} bytes truncated)",
                    valid_len,
                    bytes.len(),
                    path.display()
                ));
                let truncated =
                    self.io("truncate torn tail", |vfs, _| vfs.truncate(path, valid_len))?;
                if truncated.is_err() {
                    // Appending after unremovable garbage would corrupt
                    // the log; this open stays read-only-in-memory.
                    self.counters.salvaged_records += records.len() as u64;
                    for r in records {
                        self.ingest(r);
                    }
                    self.degrade(format!(
                        "could not truncate torn tail of {}; accumulating in memory only",
                        path.display()
                    ));
                    return Ok(());
                }
            }
            self.counters.salvaged_records += records.len() as u64;
            for r in records {
                self.ingest(r);
            }
            active = Some(Persist {
                segment: path.clone(),
                generation: header.generation,
                committed_len: valid_len,
            });
        }

        match active {
            Some(persist) => self.persist = Some(persist),
            None => {
                // Fresh database (or everything was torn): start a new
                // generation above any mark we saw.
                let generation = folds_through.unwrap_or(0) + 1;
                let path = self.segment_path(generation);
                let header = format::encode_header(&format::SegmentHeader {
                    generation,
                    folds_through: folds_through.unwrap_or(0),
                    base_len: format::HEADER_LEN as u64,
                });
                let wrote = self.io("create segment", |vfs, _| vfs.write(&path, &header))?;
                let wrote = match wrote {
                    Ok(()) => self.io("sync new segment", |vfs, _| vfs.sync(&path))?,
                    Err(e) => Err(e),
                };
                match wrote {
                    Ok(()) => {
                        self.persist = Some(Persist {
                            segment: path,
                            generation,
                            committed_len: format::HEADER_LEN as u64,
                        });
                    }
                    Err(e) => self.degrade(format!(
                        "could not create segment {} ({e}); accumulating in memory only",
                        path.display()
                    )),
                }
            }
        }
        Ok(())
    }
}

impl Drop for ProfileStore {
    fn drop(&mut self) {
        if self.locked {
            let lock_path = self.dir.join(LOCK_FILE);
            let _ = self.vfs.remove_file(&lock_path);
        }
    }
}

/// Best-effort liveness check for a lock holder. Where `/proc` is absent
/// the holder is assumed alive (conservative: degrade rather than steal).
fn pid_alive(pid: u32) -> bool {
    if !Path::new("/proc").exists() {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffault::MemVfs;
    use trace_ir::BranchId;

    fn counts(rows: &[(u32, u64, u64)]) -> BranchCounts {
        rows.iter()
            .map(|&(id, e, t)| (BranchId(id), e, t))
            .collect()
    }

    fn steal_opts() -> OpenOptions {
        OpenOptions {
            lock: LockMode::Steal,
            retry: RetryPolicy::none(),
        }
    }

    const DIR: &str = "/profdb";

    #[test]
    fn append_reopen_accumulate() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        {
            let mut store = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
            assert!(store.is_persistent());
            assert!(store.warnings().is_empty());
            assert_eq!(
                store
                    .append("train", &counts(&[(0, 10, 4), (2, 6, 6)]))
                    .unwrap(),
                Persistence::Committed
            );
            assert_eq!(
                store.append("train", &counts(&[(0, 5, 1)])).unwrap(),
                Persistence::Committed
            );
            assert_eq!(
                store.append("ref", &counts(&[(1, 7, 0)])).unwrap(),
                Persistence::Committed
            );
        }
        let store = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
        assert_eq!(store.counters().salvaged_records, 3);
        assert_eq!(store.records().len(), 3);
        assert_eq!(
            store.raw_profile("train").unwrap(),
            vec![(0, 15, 5), (2, 6, 6)]
        );
        assert_eq!(store.raw_profile("ref").unwrap(), vec![(1, 7, 0)]);

        // The snapshot equals the same runs folded through the in-memory
        // accumulation path.
        let mut expected = ifprob::ProfileDb::new();
        expected.record("train", &counts(&[(0, 10, 4), (2, 6, 6)]));
        expected.record("train", &counts(&[(0, 5, 1)]));
        expected.record("ref", &counts(&[(1, 7, 0)]));
        assert_eq!(store.snapshot(), expected);
    }

    #[test]
    fn fingerprints_survive_reopen_and_compaction() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let fps: BTreeMap<BranchId, u64> = [(BranchId(0), 111), (BranchId(2), 222)]
            .into_iter()
            .collect();
        {
            let mut store = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
            // Legacy append first: a fingerprint-free record coexists.
            store.append("train", &counts(&[(0, 10, 4)])).unwrap();
            store
                .append_with_fps("train", &counts(&[(0, 5, 1), (2, 6, 6)]), &fps)
                .unwrap();
        }
        let mut store = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
        assert_eq!(
            store
                .fingerprints()
                .iter()
                .map(|(&i, &f)| (i, f))
                .collect::<Vec<_>>(),
            vec![(0, 111), (2, 222)]
        );
        let before = store.raw_totals();
        store.compact().unwrap();
        assert_eq!(store.raw_totals(), before);
        drop(store);
        let reopened = ProfileStore::open(mem, DIR, steal_opts()).unwrap();
        assert_eq!(reopened.raw_totals(), before);
        assert_eq!(reopened.fingerprints().get(&0), Some(&111));
        assert_eq!(reopened.fingerprints().get(&2), Some(&222));
    }

    #[test]
    fn compaction_folds_and_supersedes() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let mut store = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
        for i in 0..5u64 {
            store
                .append(
                    if i % 2 == 0 { "a" } else { "b" },
                    &counts(&[(0, i + 1, 1)]),
                )
                .unwrap();
        }
        let before = store.raw_totals();
        store.compact().unwrap();
        assert_eq!(store.counters().compactions, 1);
        assert_eq!(store.records().len(), 2, "one folded record per dataset");
        assert_eq!(store.raw_totals(), before);

        // Exactly one segment remains on disk, the new generation.
        let seg = store.active_segment().unwrap().to_path_buf();
        assert!(seg.to_string_lossy().contains("seg-00000002"));
        drop(store);
        let reopened = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
        assert_eq!(reopened.raw_totals(), before);
        assert_eq!(reopened.records().len(), 2);

        // Appends after compaction keep accumulating.
        let mut store = reopened;
        store.append("a", &counts(&[(9, 3, 2)])).unwrap();
        assert_eq!(store.records().len(), 3);
        drop(store);
        let reopened = ProfileStore::open(Arc::clone(&mem), DIR, steal_opts()).unwrap();
        assert_eq!(reopened.raw_profile("a").unwrap().last(), Some(&(9, 3, 2)));
    }

    #[test]
    fn corrupt_tail_is_salvaged_to_a_prefix() {
        let mem = Arc::new(MemVfs::new());
        let vfs: Arc<dyn Vfs> = mem.clone();
        let seg;
        {
            let mut store = ProfileStore::open(Arc::clone(&vfs), DIR, steal_opts()).unwrap();
            for i in 0..4u64 {
                store
                    .append(&format!("ds{i}"), &counts(&[(0, 10 + i, i)]))
                    .unwrap();
            }
            seg = store.active_segment().unwrap().to_path_buf();
        }
        // Flip a byte inside the last frame's payload.
        let mut bytes = mem.read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 9] ^= 0x40;
        mem.write(&seg, &bytes).unwrap();

        let store = ProfileStore::open(Arc::clone(&vfs), DIR, steal_opts()).unwrap();
        assert_eq!(store.records().len(), 3, "last frame dropped");
        assert!(store.raw_profile("ds3").is_none());
        assert!(store.counters().truncated_bytes > 0);
        assert!(
            store.warnings().iter().any(|w| w.contains("torn tail")),
            "warnings: {:?}",
            store.warnings()
        );
        // The truncation repaired the file: a further reopen is clean.
        assert!(store.is_persistent());
        drop(store);
        let clean = ProfileStore::open(vfs, DIR, steal_opts()).unwrap();
        assert!(clean.warnings().is_empty(), "{:?}", clean.warnings());
        assert_eq!(clean.records().len(), 3);
    }

    #[test]
    fn lock_contention_degrades_and_releases() {
        let mem: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let acquire = OpenOptions {
            lock: LockMode::Acquire {
                attempts: 2,
                base: Duration::ZERO,
            },
            retry: RetryPolicy::none(),
        };
        let holder = ProfileStore::open(Arc::clone(&mem), DIR, acquire).unwrap();
        assert!(holder.is_persistent());

        let mut second = ProfileStore::open(Arc::clone(&mem), DIR, acquire).unwrap();
        assert!(second.is_degraded(), "{:?}", second.warnings());
        assert!(second.warnings()[0].contains("locked by a live writer"));
        assert_eq!(
            second.append("x", &counts(&[(0, 1, 0)])).unwrap(),
            Persistence::Degraded
        );
        assert_eq!(second.raw_profile("x").unwrap(), vec![(0, 1, 0)]);

        drop(holder); // releases the lock
        drop(second);
        let third = ProfileStore::open(mem, DIR, acquire).unwrap();
        assert!(third.is_persistent(), "{:?}", third.warnings());
    }

    #[test]
    fn stale_lock_from_dead_writer_is_stolen() {
        let mem = Arc::new(MemVfs::new());
        mem.create_dir_all(Path::new(DIR)).unwrap();
        // A pid far above any live one on this machine, and a torn lock.
        for lock_content in [&b"999999999"[..], &b"\xFF\xFEgarbage"[..]] {
            let _ = mem.remove_file(&Path::new(DIR).join(LOCK_FILE));
            mem.create_new(&Path::new(DIR).join(LOCK_FILE), lock_content)
                .unwrap();
            let store = ProfileStore::open(
                mem.clone() as Arc<dyn Vfs>,
                DIR,
                OpenOptions {
                    lock: LockMode::Acquire {
                        attempts: 1,
                        base: Duration::ZERO,
                    },
                    retry: RetryPolicy::none(),
                },
            )
            .unwrap();
            assert!(store.is_persistent(), "{:?}", store.warnings());
            assert!(store.warnings().iter().any(|w| w.contains("dead writer")));
        }
    }
}
