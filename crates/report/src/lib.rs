#![warn(missing_docs)]

//! # mfreport
//!
//! ASCII rendering for the reproduced tables and figures: aligned tables
//! (Tables 1–3) and horizontal paired bar charts (Figures 1–3, which in the
//! paper are black/white bar pairs per program×dataset).
//!
//! ```
//! use mfreport::Table;
//!
//! let mut t = Table::new(&["PROGRAM", "DATASET", "INSTRS/BREAK"]);
//! t.row(&["tomcatv", "-", "7461"]);
//! t.row(&["doduc", "tiny", "257"]);
//! let text = t.render();
//! assert!(text.contains("tomcatv"));
//! assert!(text.lines().count() >= 4);
//! ```

/// A simple aligned ASCII table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// A horizontal paired-bar chart: each entry draws two bars (the paper's
/// black/white pairs), scaled to a shared maximum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BarChart {
    title: String,
    label_a: String,
    label_b: String,
    entries: Vec<(String, f64, f64)>,
}

impl BarChart {
    /// Creates a chart; `label_a`/`label_b` name the two bar series.
    pub fn new(title: &str, label_a: &str, label_b: &str) -> Self {
        BarChart {
            title: title.to_string(),
            label_a: label_a.to_string(),
            label_b: label_b.to_string(),
            entries: Vec::new(),
        }
    }

    /// Adds one labelled pair of values.
    pub fn entry(&mut self, label: &str, a: f64, b: f64) -> &mut Self {
        self.entries.push((label.to_string(), a, b));
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the chart has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders with `width` character cells for the longest bar.
    pub fn render(&self, width: usize) -> String {
        let max = self
            .entries
            .iter()
            .flat_map(|(_, a, b)| [*a, *b])
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self
            .entries
            .iter()
            .map(|(l, _, _)| l.len())
            .max()
            .unwrap_or(0)
            .max(8);
        let mut out = format!(
            "{}\n  (█ = {}, ░ = {})\n",
            self.title, self.label_a, self.label_b
        );
        for (label, a, b) in &self.entries {
            let cells_a = ((a / max) * width as f64).round() as usize;
            let cells_b = ((b / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "{label:<label_w$} █{} {a:.1}\n",
                "█".repeat(cells_a)
            ));
            out.push_str(&format!(
                "{:<label_w$} ░{} {b:.1}\n",
                "",
                "░".repeat(cells_b)
            ));
        }
        out
    }
}

/// Formats a float with a sensible number of digits for tables (3
/// significant-ish digits, no scientific notation).
pub fn fmt_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a 0..=1 fraction as a percentage.
pub fn fmt_percent(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["A", "LONGHEADER"]);
        t.row(&["xxxxxx", "1"]);
        t.row(&["y", "2"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in all rows.
        let pos = lines[0].find("LONGHEADER").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), pos);
        assert_eq!(lines[3].find('2').unwrap(), pos);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["A"]);
        t.row_owned(vec!["v".to_string()]);
        assert!(t.render().contains('v'));
    }

    #[test]
    fn chart_scales_to_max() {
        let mut c = BarChart::new("Figure 1a", "no calls", "with calls");
        c.entry("tomcatv", 100.0, 50.0);
        c.entry("doduc", 25.0, 20.0);
        let text = c.render(40);
        assert!(text.contains("Figure 1a"));
        assert!(text.contains("tomcatv"));
        // The 100.0 bar renders at full width (plus leading cell).
        let full_bar = "█".repeat(41);
        assert!(text.contains(&full_bar));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn chart_handles_zero_values() {
        let mut c = BarChart::new("t", "a", "b");
        c.entry("zero", 0.0, 0.0);
        let text = c.render(10);
        assert!(text.contains("zero"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_value(1234.6), "1235");
        assert_eq!(fmt_value(56.78), "56.8");
        assert_eq!(fmt_value(3.456), "3.46");
        assert_eq!(fmt_percent(0.5), "50.0%");
    }
}
