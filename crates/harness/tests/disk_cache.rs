//! The persistent cache tier, end to end: hits survive a "process
//! restart" (a fresh `Harness` over the same directory), key changes
//! invalidate, and damaged files degrade to misses.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mfharness::{CacheSource, DiskCache, Harness, HarnessOptions, RunJob};
use trace_ir::Program;
use trace_vm::{Input, VmConfig};

const LOOPY: &str = "fn main(n: int) { var i: int = 0; var acc: int = 0; \
    while (i < n) { if (i % 2 == 0) { acc = acc + i; } i = i + 1; } emit(acc); }";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfharness-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn disk_harness(dir: &Path) -> Harness {
    Harness::new(HarnessOptions {
        jobs: Some(2),
        disk_cache: DiskCache::Dir(dir.to_path_buf()),
        ..HarnessOptions::default()
    })
}

fn job(program: &Arc<Program>, n: i64) -> RunJob {
    RunJob::new(
        "it",
        format!("n{n}"),
        Arc::clone(program),
        vec![Input::Int(n)],
        VmConfig::default(),
    )
}

#[test]
fn warm_cache_survives_a_restart_with_identical_stats() {
    let dir = temp_dir("restart");
    let program = Arc::new(mflang::compile(LOOPY).unwrap());

    let cold = disk_harness(&dir);
    let first = cold.run_one(job(&program, 1000)).unwrap();
    assert_eq!(first.source, CacheSource::Computed);

    // A fresh harness simulates the next process: nothing memoized, so
    // the result must come from disk — and be bit-identical.
    let warm = disk_harness(&dir);
    let second = warm.run_one(job(&program, 1000)).unwrap();
    assert_eq!(second.source, CacheSource::Disk);
    assert_eq!(*first.stats, *second.stats);
    let report = warm.report();
    assert_eq!(report.cache.disk_hits, 1);
    assert!(report.hit_rate() > 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_inputs_and_relowered_ir_miss() {
    let dir = temp_dir("invalidate");
    let program = Arc::new(mflang::compile(LOOPY).unwrap());
    let cold = disk_harness(&dir);
    cold.run_one(job(&program, 500)).unwrap();

    let warm = disk_harness(&dir);
    // Different dataset seed: new key, recomputed.
    let other_input = warm.run_one(job(&program, 501)).unwrap();
    assert_eq!(other_input.source, CacheSource::Computed);

    // Re-lowered (edited) IR: new key even with identical inputs.
    let edited = Arc::new(mflang::compile(&LOOPY.replace("acc + i", "acc + i + 1")).unwrap());
    let other_ir = warm.run_one(job(&edited, 500)).unwrap();
    assert_eq!(other_ir.source, CacheSource::Computed);

    // The original is still served from disk.
    let same = warm.run_one(job(&program, 500)).unwrap();
    assert_eq!(same.source, CacheSource::Disk);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_truncated_entries_degrade_to_recomputation() {
    let dir = temp_dir("corrupt");
    let program = Arc::new(mflang::compile(LOOPY).unwrap());
    let reference = disk_harness(&dir).run_one(job(&program, 800)).unwrap();

    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "one run, one cache file");
    let entry = &entries[0];
    let pristine = std::fs::read(entry).unwrap();

    // Truncated file: miss, recompute, same stats.
    std::fs::write(entry, &pristine[..pristine.len() / 2]).unwrap();
    let after_truncation = disk_harness(&dir).run_one(job(&program, 800)).unwrap();
    assert_eq!(after_truncation.source, CacheSource::Computed);
    assert_eq!(*after_truncation.stats, *reference.stats);

    // Bit-flipped payload: checksum rejects it.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(entry, &flipped).unwrap();
    let after_flip = disk_harness(&dir).run_one(job(&program, 800)).unwrap();
    assert_eq!(after_flip.source, CacheSource::Computed);
    assert_eq!(*after_flip.stats, *reference.stats);

    // Outright garbage.
    std::fs::write(entry, b"not a cache entry at all").unwrap();
    let after_garbage = disk_harness(&dir).run_one(job(&program, 800)).unwrap();
    assert_eq!(after_garbage.source, CacheSource::Computed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_entry_is_a_miss() {
    let dir = temp_dir("zerolen");
    let program = Arc::new(mflang::compile(LOOPY).unwrap());
    let reference = disk_harness(&dir).run_one(job(&program, 600)).unwrap();

    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .next()
        .expect("one cache file");
    std::fs::write(&entry, b"").unwrap();
    assert_eq!(std::fs::metadata(&entry).unwrap().len(), 0);

    let after = disk_harness(&dir).run_one(job(&program, 600)).unwrap();
    assert_eq!(after.source, CacheSource::Computed);
    assert_eq!(*after.stats, *reference.stats);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_ir_with_different_vm_config_never_collides() {
    let dir = temp_dir("vmconfig");
    let program = Arc::new(mflang::compile(LOOPY).unwrap());

    // Same program, same inputs, different fuel limit: the key must
    // differ, so the second lookup may not be served by the first entry.
    let loose = job(&program, 700);
    let mut tight = job(&program, 700);
    tight.config = VmConfig {
        fuel: 1 << 20,
        ..VmConfig::default()
    };
    tight.key = RunJob::new(
        "it",
        "n700",
        Arc::clone(&program),
        vec![Input::Int(700)],
        tight.config,
    )
    .key;
    assert_ne!(loose.key, tight.key, "VmConfig must be part of the key");

    let first = disk_harness(&dir).run_one(loose).unwrap();
    assert_eq!(first.source, CacheSource::Computed);

    // Adversarially copy the first entry onto the second key's path: the
    // stored key is checksummed into the payload, so the forged file must
    // read as a miss, not a wrong-config hit.
    let loose_path = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .next()
        .expect("one cache file");
    let forged_path = dir.join(format!("{}.bin", tight.key.hex()));
    std::fs::copy(&loose_path, &forged_path).unwrap();

    let harness = disk_harness(&dir);
    let second = harness.run_one(tight).unwrap();
    assert_eq!(
        second.source,
        CacheSource::Computed,
        "forged cross-config entry must not be served"
    );
    assert_eq!(*second.stats, *first.stats, "same program, same behaviour");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_cache_dir_degrades_to_recomputation() {
    // Point the disk tier at a path that can never be a directory (a file
    // stands where the directory should be): stores fail silently, every
    // lookup misses, and runs still succeed.
    let blocker = std::env::temp_dir().join(format!("mfharness-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"i am a file, not a directory").unwrap();
    let program = Arc::new(mflang::compile(LOOPY).unwrap());

    let harness = disk_harness(&blocker);
    let first = harness.run_one(job(&program, 900)).unwrap();
    assert_eq!(first.source, CacheSource::Computed);

    // A second harness over the same broken path: still a miss (nothing
    // was persisted), still a successful run.
    let again = disk_harness(&blocker);
    let second = again.run_one(job(&program, 900)).unwrap();
    assert_eq!(second.source, CacheSource::Computed);
    assert_eq!(*first.stats, *second.stats);
    assert_eq!(again.report().cache.disk_hits, 0);

    // The blocker is untouched: best-effort persistence must not clobber
    // whatever occupies the target path.
    assert_eq!(
        std::fs::read(&blocker).unwrap(),
        b"i am a file, not a directory"
    );
    let _ = std::fs::remove_file(&blocker);
}
