//! Units of work and their results.

use std::sync::Arc;
use std::time::Duration;

use mfdyn::{DynSpec, ZooReport};
use trace_ir::Program;
use trace_vm::{Input, Run, RunStats, VmConfig};

use crate::key::RunKey;

/// What a job's consumer needs back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Need {
    /// Aggregate [`RunStats`] suffice (eligible for the disk cache).
    Stats,
    /// The full [`Run`] — output stream and, if configured, the branch
    /// trace. Served from memory or recomputed; never from disk.
    FullRun,
}

/// One `(program, dataset, vm-config)` execution request.
#[derive(Clone, Debug)]
pub struct RunJob {
    /// Program name, for labels and error messages.
    pub program_name: String,
    /// Dataset name, for labels and error messages.
    pub dataset: String,
    /// The compiled program to execute.
    pub program: Arc<Program>,
    /// The guest `main` inputs.
    pub inputs: Vec<Input>,
    /// VM resource/measurement configuration.
    pub config: VmConfig,
    /// What the consumer needs back.
    pub need: Need,
    /// Online dynamic predictors to drive over the run's branch stream —
    /// empty for ordinary jobs. A non-empty zoo folds into [`RunJob::key`]
    /// (by canonical spec name, in order), so runs observed by different
    /// predictor configurations never share a cache entry, and the job is
    /// excluded from the disk tier (the zoo report is not persisted).
    pub zoo: Vec<DynSpec>,
    /// The content-addressed identity of this work.
    pub key: RunKey,
}

impl RunJob {
    /// Builds a stats-level job; the key is computed from the arguments.
    pub fn new(
        program_name: impl Into<String>,
        dataset: impl Into<String>,
        program: Arc<Program>,
        inputs: Vec<Input>,
        config: VmConfig,
    ) -> Self {
        let key = RunKey::of(&program, &inputs, &config);
        RunJob {
            program_name: program_name.into(),
            dataset: dataset.into(),
            program,
            inputs,
            config,
            need: Need::Stats,
            zoo: Vec::new(),
            key,
        }
    }

    /// Builds a job for one dataset of a workload, using the workload's
    /// canonical VM configuration so harness runs are bit-identical to
    /// [`mfwork::Workload::run`].
    pub fn from_workload(
        workload: &mfwork::Workload,
        program: &Arc<Program>,
        dataset: &mfwork::Dataset,
    ) -> Self {
        RunJob::new(
            workload.name,
            dataset.name.clone(),
            Arc::clone(program),
            dataset.inputs.clone(),
            workload.vm_config(),
        )
    }

    /// Upgrades the job to require the full [`Run`].
    pub fn needing_run(mut self) -> Self {
        self.need = Need::FullRun;
        self
    }

    /// Attaches an online predictor zoo to the job and re-keys it: the
    /// spec names become observation tags in the run key.
    pub fn with_zoo(mut self, zoo: Vec<DynSpec>) -> Self {
        self.zoo = zoo;
        let tags: Vec<String> = self.zoo.iter().map(|s| s.name()).collect();
        self.key = RunKey::of_tagged(&self.program, &self.inputs, &self.config, &tags);
        self
    }

    /// `program/dataset` display label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.program_name, self.dataset)
    }
}

/// Where a completed job's result came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheSource {
    /// Executed in this batch.
    Computed,
    /// Served by the in-process memo table.
    Memory,
    /// Deserialized from the persistent cache directory.
    Disk,
}

impl CacheSource {
    /// Short lowercase name (report/JSON vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            CacheSource::Computed => "computed",
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
        }
    }
}

/// A completed job.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `program/dataset` label of the submitted job.
    pub label: String,
    /// The job's content key.
    pub key: RunKey,
    /// Everything the VM measured.
    pub stats: Arc<RunStats>,
    /// The full run — present when the job asked for [`Need::FullRun`].
    pub run: Option<Arc<Run>>,
    /// Where the result came from.
    pub source: CacheSource,
    /// Wall-clock time spent producing this result (≈0 for cache hits).
    pub wall: Duration,
    /// Per-predictor tallies for jobs submitted with a non-empty
    /// [`RunJob::zoo`]; `None` for ordinary jobs (or when a custom
    /// executor that does not drive zoos produced the run).
    pub zoo: Option<Arc<ZooReport>>,
}

impl RunOutcome {
    /// The full run, which [`Need::FullRun`] jobs are guaranteed to have.
    ///
    /// # Panics
    ///
    /// Panics if the job was submitted with [`Need::Stats`].
    pub fn run(&self) -> &Arc<Run> {
        self.run
            .as_ref()
            .expect("job was submitted with Need::Stats; no full run retained")
    }
}
