//! # mfharness — the experiment execution engine
//!
//! Every measured run in the evaluation matrix — `(program, dataset,
//! vm-config)` — is a [`RunJob`] with a stable content-addressed
//! [`RunKey`]. A [`Harness`] deduplicates submitted jobs, serves repeats
//! from a two-tier cache (in-process memo table plus an optional on-disk
//! store of [`trace_vm::RunStats`]), and executes the remainder on a
//! dependency-free work-stealing thread pool. Results always come back in
//! submission order, so downstream tables and figures are bit-identical
//! whether the matrix ran on one worker or eight.
//!
//! Knobs (also surfaced as `repro` flags):
//!
//! * `MFHARNESS_JOBS` — worker thread count (default: available
//!   parallelism, clamped to 8).
//! * `MFHARNESS_CACHE` — `off`/`0` disables the persistent tier; any
//!   other value is used as the cache directory. Default:
//!   `target/mfharness-cache/`.
//! * `MFHARNESS_VERIFY` — any value other than `off`/`0`/empty runs the
//!   `mfcheck` semantic verifier over every unique job's program and
//!   stamps its digest on the run record (cache hits included).
//!
//! Observability — per-run timing, guest-instructions-per-second, cache
//! hit/miss counters, worker utilization — accumulates in a
//! [`HarnessReport`] available from [`Harness::report`].

mod cache;
mod job;
mod key;
mod pool;
mod report;

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mffault::{FaultPlan, FaultVfs, RealVfs, RetryPolicy, Vfs};
use trace_vm::{Run, RuntimeError};

pub use cache::{CacheCounters, CacheHit, CacheRobustness, RunCache};
pub use job::{CacheSource, Need, RunJob, RunOutcome};
pub use key::{fnv64, Fingerprint, RunKey};
pub use pool::{default_workers, run_indexed, run_indexed_supervised, PoolStats};
pub use report::{HarnessReport, RobustnessReport, RunRecord};

/// Persistent-cache configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum DiskCache {
    /// `target/mfharness-cache/` next to the workspace build directory.
    #[default]
    Default,
    /// In-process memoization only.
    Off,
    /// An explicit directory.
    Dir(PathBuf),
}

/// Construction-time options for a [`Harness`].
#[derive(Clone, Debug, Default)]
pub struct HarnessOptions {
    /// Worker thread count; `None` means [`default_workers`].
    pub jobs: Option<usize>,
    /// Persistent-cache mode.
    pub disk_cache: DiskCache,
    /// Run the semantic verifier over every unique job's program and stamp
    /// the digest on its [`RunRecord`] — including cache hits, so results
    /// loaded from disk are still re-checked against today's verifier.
    pub verify: bool,
    /// Bounded retry budget for transient cache I/O errors (`None` = the
    /// default of 2).
    pub io_retries: Option<u32>,
    /// Wrap all cache I/O in a seeded [`mffault::FaultVfs`] — the
    /// fault-injection mode behind `repro --fault-seed`. Cache failures
    /// degrade to recomputation, so results are unchanged; only the
    /// robustness counters tell the difference.
    pub fault_seed: Option<u64>,
}

impl HarnessOptions {
    /// Reads `MFHARNESS_JOBS`, `MFHARNESS_CACHE`, and `MFHARNESS_VERIFY`
    /// from the environment.
    pub fn from_env() -> Self {
        let jobs = std::env::var("MFHARNESS_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let disk_cache = match std::env::var("MFHARNESS_CACHE") {
            Err(_) => DiskCache::Default,
            Ok(v) if v.trim().is_empty() || v.trim() == "off" || v.trim() == "0" => DiskCache::Off,
            Ok(v) => DiskCache::Dir(PathBuf::from(v)),
        };
        let verify = match std::env::var("MFHARNESS_VERIFY") {
            Err(_) => false,
            Ok(v) => !matches!(v.trim(), "" | "0" | "off"),
        };
        let io_retries = std::env::var("MFHARNESS_IO_RETRIES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok());
        let fault_seed = std::env::var("MFHARNESS_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        HarnessOptions {
            jobs,
            disk_cache,
            verify,
            io_retries,
            fault_seed,
        }
    }
}

/// The workspace-relative default cache directory, honoring
/// `CARGO_TARGET_DIR` when the build was redirected.
pub fn default_cache_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    target.join("mfharness-cache")
}

/// A run failed; carries the failing job's label and the VM error.
#[derive(Debug)]
pub enum HarnessError {
    /// The guest program faulted (or exhausted fuel/stack/alloc budgets).
    Run {
        /// `program/dataset` label of the failing job.
        label: String,
        /// The underlying VM error.
        error: RuntimeError,
    },
    /// A run panicked inside a worker. The pool survived (every other job
    /// of the batch ran to completion and was cached); the panicking key
    /// is quarantined so resubmission fails fast instead of re-panicking.
    Panicked {
        /// `program/dataset` label of the poisoned job.
        label: String,
        /// The panic message, as captured by the supervisor.
        detail: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Run { label, error } => write!(f, "run {label} failed: {error}"),
            HarnessError::Panicked { label, detail } => {
                write!(f, "run {label} panicked (quarantined): {detail}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// The deduplicating, caching, parallel run executor.
#[derive(Debug)]
pub struct Harness {
    jobs: usize,
    verify: bool,
    cache: RunCache,
    records: Mutex<Vec<RunRecord>>,
    jobs_submitted: AtomicU64,
    unique_jobs: AtomicU64,
    workers_seen: AtomicUsize,
    wall_ns: AtomicU64,
    busy_ns: AtomicU64,
    panics: AtomicU64,
    quarantine: Mutex<HashMap<RunKey, (String, String)>>,
    /// Predictor-zoo reports keyed by job key — the in-process companion
    /// to the memo table for jobs with a non-empty [`RunJob::zoo`]. Never
    /// persisted (zoo jobs bypass the disk tier), so a memo hit can always
    /// find its report here.
    zoo_memo: Mutex<HashMap<RunKey, Arc<mfdyn::ZooReport>>>,
}

impl Harness {
    /// Builds a harness from explicit options.
    pub fn new(options: HarnessOptions) -> Self {
        let retry = RetryPolicy::immediate(options.io_retries.unwrap_or(2));
        let vfs: Arc<dyn Vfs> = match options.fault_seed {
            Some(seed) => Arc::new(FaultVfs::new(
                Arc::new(RealVfs) as Arc<dyn Vfs>,
                FaultPlan::from_seed(seed),
            )),
            None => Arc::new(RealVfs),
        };
        let cache = match options.disk_cache {
            DiskCache::Off => RunCache::in_memory(),
            DiskCache::Default => RunCache::with_disk_on(vfs, default_cache_dir(), retry),
            DiskCache::Dir(dir) => RunCache::with_disk_on(vfs, dir, retry),
        };
        Harness {
            jobs: options.jobs.unwrap_or_else(default_workers),
            verify: options.verify,
            cache,
            records: Mutex::new(Vec::new()),
            jobs_submitted: AtomicU64::new(0),
            unique_jobs: AtomicU64::new(0),
            workers_seen: AtomicUsize::new(0),
            wall_ns: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            quarantine: Mutex::new(HashMap::new()),
            zoo_memo: Mutex::new(HashMap::new()),
        }
    }

    /// Builds a harness configured from the environment.
    pub fn from_env() -> Self {
        Harness::new(HarnessOptions::from_env())
    }

    /// A harness with no persistent tier — what tests should use.
    pub fn in_memory() -> Self {
        Harness::new(HarnessOptions {
            jobs: None,
            disk_cache: DiskCache::Off,
            ..HarnessOptions::default()
        })
    }

    /// Worker thread count this harness schedules with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether run records carry a semantic-verification digest.
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// The persistent cache directory, if the tier is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache.disk_dir()
    }

    /// Executes a batch. Jobs with equal keys are collapsed to one
    /// execution (the strongest [`Need`] wins); cache hits skip execution
    /// entirely. The returned vector is index-aligned with `batch`.
    ///
    /// Jobs with a non-empty [`RunJob::zoo`] run with the `mfdyn` online
    /// predictors attached (pure observation — stats are bit-identical to
    /// an unobserved run) and come back with [`RunOutcome::zoo`] filled.
    pub fn run(&self, batch: Vec<RunJob>) -> Result<Vec<RunOutcome>, HarnessError> {
        self.run_with(batch, |job| self.exec_default(job))
    }

    /// The default executor: a plain VM run, or — when the job carries a
    /// predictor zoo — a [`trace_vm::Vm::run_branches`] run with the zoo
    /// attached, its report parked in the zoo memo for outcome assembly.
    fn exec_default(&self, job: &RunJob) -> Result<Run, RuntimeError> {
        if job.zoo.is_empty() {
            return trace_vm::run_program(&job.program, job.config, &job.inputs);
        }
        let mut zoo = mfdyn::Zoo::for_program(&job.zoo, &job.program);
        let run = trace_vm::Vm::with_config(&job.program, job.config)
            .run_branches(&job.inputs, &mut zoo)?;
        self.zoo_memo
            .lock()
            .expect("zoo memo lock")
            .insert(job.key, Arc::new(zoo.report()));
        Ok(run)
    }

    /// [`Harness::run`] with an explicit executor — the seam supervision
    /// tests (and alternative backends) plug into. `exec` runs on pool
    /// workers under `catch_unwind`; a panic inside it becomes
    /// [`HarnessError::Panicked`] and quarantines the job's key rather
    /// than killing the pool or poisoning the harness.
    pub fn run_with<E>(&self, batch: Vec<RunJob>, exec: E) -> Result<Vec<RunOutcome>, HarnessError>
    where
        E: Fn(&RunJob) -> Result<Run, RuntimeError> + Sync,
    {
        self.jobs_submitted
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Deduplicate: first occurrence of a key owns the work; later
        // occurrences only strengthen its Need.
        let mut unique: Vec<RunJob> = Vec::new();
        let mut index_of: HashMap<RunKey, usize> = HashMap::new();
        let mut fanout: Vec<usize> = Vec::with_capacity(batch.len());
        for job in batch {
            match index_of.get(&job.key) {
                Some(&i) => {
                    if job.need > unique[i].need {
                        unique[i].need = job.need;
                    }
                    fanout.push(i);
                }
                None => {
                    let i = unique.len();
                    index_of.insert(job.key, i);
                    fanout.push(i);
                    unique.push(job);
                }
            }
        }
        self.unique_jobs
            .fetch_add(unique.len() as u64, Ordering::Relaxed);

        // Quarantined keys fail fast: a job that already panicked once is
        // not given a second chance to take a worker down.
        {
            let quarantine = self.quarantine.lock().expect("quarantine lock");
            for job in &unique {
                if let Some((label, detail)) = quarantine.get(&job.key) {
                    return Err(HarnessError::Panicked {
                        label: label.clone(),
                        detail: detail.clone(),
                    });
                }
            }
        }

        // Cache pass (serial, submission order — keeps counter totals and
        // record order deterministic), then pooled execution of misses.
        let mut resolved: Vec<Option<RunOutcome>> = Vec::with_capacity(unique.len());
        let mut to_run: Vec<usize> = Vec::new();
        for (i, job) in unique.iter().enumerate() {
            match self.cache.lookup(job) {
                Some(hit) => resolved.push(Some(RunOutcome {
                    label: job.label(),
                    key: job.key,
                    stats: hit.stats,
                    run: hit.run,
                    source: hit.source,
                    wall: std::time::Duration::ZERO,
                    zoo: None,
                })),
                None => {
                    to_run.push(i);
                    resolved.push(None);
                }
            }
        }

        if !to_run.is_empty() {
            let (executed, stats) = pool::run_indexed_supervised(self.jobs, to_run.len(), |slot| {
                let job = &unique[to_run[slot]];
                let t0 = Instant::now();
                let result = exec(job);
                (result.map(Arc::new), t0.elapsed())
            });
            self.workers_seen
                .fetch_max(stats.workers, Ordering::Relaxed);
            self.wall_ns
                .fetch_add(stats.wall.as_nanos() as u64, Ordering::Relaxed);
            self.busy_ns.fetch_add(
                stats.busy.iter().map(|d| d.as_nanos() as u64).sum::<u64>(),
                Ordering::Relaxed,
            );
            // Every slot is drained before the first error is surfaced, so
            // all completed work lands in the cache and every panic of the
            // batch is quarantined — not just the first one.
            let mut first_error: Option<HarnessError> = None;
            for (slot, outcome) in executed.into_iter().enumerate() {
                let i = to_run[slot];
                let job = &unique[i];
                match outcome {
                    Err(detail) => {
                        self.panics.fetch_add(1, Ordering::Relaxed);
                        self.quarantine
                            .lock()
                            .expect("quarantine lock")
                            .insert(job.key, (job.label(), detail.clone()));
                        if first_error.is_none() {
                            first_error = Some(HarnessError::Panicked {
                                label: job.label(),
                                detail,
                            });
                        }
                    }
                    Ok((Err(error), _)) => {
                        if first_error.is_none() {
                            first_error = Some(HarnessError::Run {
                                label: job.label(),
                                error,
                            });
                        }
                    }
                    Ok((Ok(run), wall)) => {
                        self.cache.insert(job, &run);
                        resolved[i] = Some(RunOutcome {
                            label: job.label(),
                            key: job.key,
                            stats: Arc::new(run.stats.clone()),
                            run: Some(run),
                            source: CacheSource::Computed,
                            wall,
                            zoo: None,
                        });
                    }
                }
            }
            if let Some(error) = first_error {
                return Err(error);
            }
        }

        let mut outcomes: Vec<RunOutcome> = resolved
            .into_iter()
            .map(|o| o.expect("every unique job resolved"))
            .collect();

        // Zoo jobs collect their predictor reports from the zoo memo —
        // filled by the default executor on compute, and still present for
        // memo hits (zoo jobs never come from disk). A custom executor
        // that ignores zoos simply leaves the field `None`.
        {
            let zoo_memo = self.zoo_memo.lock().expect("zoo memo lock");
            for (job, outcome) in unique.iter().zip(&mut outcomes) {
                if !job.zoo.is_empty() {
                    outcome.zoo = zoo_memo.get(&job.key).cloned();
                }
            }
        }

        // Verification digests: one per distinct program (many unique jobs
        // share one `Arc<Program>` across datasets). Cache hits are
        // digested too — that is the point: a stale disk result still gets
        // checked against today's verifier.
        let digests: Vec<Option<u64>> = if self.verify {
            let mut memo: HashMap<*const trace_ir::Program, u64> = HashMap::new();
            unique
                .iter()
                .map(|job| {
                    Some(
                        *memo
                            .entry(Arc::as_ptr(&job.program))
                            .or_insert_with(|| mfcheck::verify_digest(&job.program)),
                    )
                })
                .collect()
        } else {
            vec![None; unique.len()]
        };

        {
            let mut records = self.records.lock().expect("records lock");
            // `outcomes` is index-aligned with `unique`, so zipping pairs
            // each outcome with its job's digest.
            for (outcome, digest) in outcomes.iter().zip(&digests) {
                records.push(RunRecord {
                    label: outcome.label.clone(),
                    key: outcome.key,
                    guest_instrs: outcome.stats.total_instrs,
                    wall: outcome.wall,
                    source: outcome.source,
                    verify_digest: *digest,
                });
            }
        }

        Ok(fanout.into_iter().map(|i| outcomes[i].clone()).collect())
    }

    /// Convenience: submit one job.
    pub fn run_one(&self, job: RunJob) -> Result<RunOutcome, HarnessError> {
        Ok(self.run(vec![job])?.pop().expect("one job, one outcome"))
    }

    /// Labels currently quarantined after panicking, sorted.
    pub fn quarantined(&self) -> Vec<String> {
        let quarantine = self.quarantine.lock().expect("quarantine lock");
        let mut labels: Vec<String> = quarantine.values().map(|(l, _)| l.clone()).collect();
        labels.sort();
        labels
    }

    /// Snapshot of accumulated observability.
    pub fn report(&self) -> HarnessReport {
        let cache_robustness = self.cache.robustness();
        HarnessReport {
            records: self.records.lock().expect("records lock").clone(),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            unique_jobs: self.unique_jobs.load(Ordering::Relaxed),
            workers: self.workers_seen.load(Ordering::Relaxed),
            wall: std::time::Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed)),
            busy: std::time::Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            cache: self.cache.counters(),
            robustness: RobustnessReport {
                panics: self.panics.load(Ordering::Relaxed),
                quarantined: self.quarantined(),
                io_retries: cache_robustness.io_retries,
                cache_store_failures: cache_robustness.store_failures,
                cache_corrupt_misses: cache_robustness.corrupt_misses,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_vm::{Input, VmConfig};

    fn job(source: &str, inputs: Vec<Input>) -> RunJob {
        let program = Arc::new(mflang::compile(source).unwrap());
        RunJob::new("test", "d0", program, inputs, VmConfig::default())
    }

    const LOOPY: &str = "fn main(n: int) { var i: int = 0; var acc: int = 0; \
        while (i < n) { if (i % 3 == 0) { acc = acc + i; } i = i + 1; } emit(acc); }";

    #[test]
    fn duplicate_jobs_execute_once() {
        let harness = Harness::in_memory();
        let jobs: Vec<RunJob> = (0..6).map(|_| job(LOOPY, vec![Input::Int(50)])).collect();
        let outcomes = harness.run(jobs).unwrap();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes
            .windows(2)
            .all(|w| w[0].stats.total_instrs == w[1].stats.total_instrs));
        let report = harness.report();
        assert_eq!(report.jobs_submitted, 6);
        assert_eq!(report.unique_jobs, 1);
        // Only the single deduplicated job actually executed.
        assert_eq!(report.computed(), 1);
        assert_eq!(report.records.len(), 1);
    }

    #[test]
    fn second_batch_hits_memo_table() {
        let harness = Harness::in_memory();
        let first = harness.run_one(job(LOOPY, vec![Input::Int(40)])).unwrap();
        assert_eq!(first.source, CacheSource::Computed);
        let second = harness.run_one(job(LOOPY, vec![Input::Int(40)])).unwrap();
        assert_eq!(second.source, CacheSource::Memory);
        assert_eq!(first.stats, second.stats);
    }

    #[test]
    fn stats_hit_does_not_satisfy_full_run_need() {
        // A Stats-only memo entry (simulating a disk load) must not be
        // handed to a FullRun consumer.
        let harness = Harness::in_memory();
        let stats_job = job(LOOPY, vec![Input::Int(30)]);
        harness.run_one(stats_job.clone()).unwrap();
        let full = harness.run_one(stats_job.needing_run()).unwrap();
        // Memo table keeps the full Run, so this is served from memory
        // *with* the run present.
        assert!(full.run.is_some());
    }

    #[test]
    fn runtime_errors_surface_with_labels() {
        let harness = Harness::in_memory();
        let mut bad = job(LOOPY, vec![Input::Int(1_000_000)]);
        bad.config.fuel = 10; // guarantee fuel exhaustion
        bad.key = RunKey::of(&bad.program, &bad.inputs, &bad.config);
        let err = harness.run_one(bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("test/d0"), "message was: {msg}");
    }

    #[test]
    fn verify_mode_stamps_digests_on_all_records() {
        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            disk_cache: DiskCache::Off,
            verify: true,
            ..HarnessOptions::default()
        });
        assert!(harness.verify());
        // Two batches of the same job: a computed record and a memory-hit
        // record, both of which must carry the clean digest.
        harness.run_one(job(LOOPY, vec![Input::Int(25)])).unwrap();
        harness.run_one(job(LOOPY, vec![Input::Int(25)])).unwrap();
        let report = harness.report();
        assert_eq!(report.records.len(), 2);
        for record in &report.records {
            assert_eq!(record.verify_digest, Some(mfcheck::CLEAN_DIGEST));
        }
        assert_eq!(report.verified(), 2);
        assert_eq!(report.verified_clean(), 2);
        assert!(report.summary_table().render().contains("runs verified"));
        assert!(report.to_json().contains("\"verify_digest\": \"0x"));
    }

    #[test]
    fn unverified_records_have_no_digest() {
        let harness = Harness::in_memory();
        harness.run_one(job(LOOPY, vec![Input::Int(12)])).unwrap();
        let report = harness.report();
        assert_eq!(report.records[0].verify_digest, None);
        assert_eq!(report.verified(), 0);
        assert!(!report.summary_table().render().contains("runs verified"));
        assert!(report.to_json().contains("\"verify_digest\": null"));
    }

    #[test]
    fn panicking_run_is_quarantined_not_fatal() {
        // Silence the default panic hook for the expected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            disk_cache: DiskCache::Off,
            ..HarnessOptions::default()
        });
        let good = job(LOOPY, vec![Input::Int(20)]);
        let bad = job(LOOPY, vec![Input::Int(21)]);
        let bad_key = bad.key;
        let batch = vec![good.clone(), bad.clone()];
        let err = harness
            .run_with(batch, |j| {
                if j.key == bad_key {
                    panic!("injected poison");
                }
                trace_vm::run_program(&j.program, j.config, &j.inputs)
            })
            .unwrap_err();
        match &err {
            HarnessError::Panicked { label, detail } => {
                assert_eq!(label, "test/d0");
                assert!(detail.contains("injected poison"), "{detail}");
            }
            other => panic!("expected Panicked, got {other}"),
        }

        // The pool survived: the good job completed and was cached.
        let again = harness.run_one(good).unwrap();
        assert_eq!(again.source, CacheSource::Memory);

        // The poisoned key is quarantined: resubmission fails fast with
        // the stored detail instead of re-running.
        let err = harness.run_one(bad).unwrap_err();
        assert!(matches!(err, HarnessError::Panicked { .. }), "{err}");

        let report = harness.report();
        assert_eq!(report.robustness.panics, 1);
        assert_eq!(report.robustness.quarantined, vec!["test/d0".to_string()]);
        assert!(report.to_json().contains("\"robustness\""));

        std::panic::set_hook(prev);
    }

    #[test]
    fn zoo_jobs_carry_reports_and_identical_stats() {
        let harness = Harness::in_memory();
        let plain = job(LOOPY, vec![Input::Int(60)]);
        let zooed = job(LOOPY, vec![Input::Int(60)]).with_zoo(mfdyn::standard_zoo());
        assert_ne!(plain.key, zooed.key, "zoo must perturb the key");
        let outcomes = harness.run(vec![plain, zooed.clone()]).unwrap();
        // Observation is pure: both jobs measured the same run.
        assert_eq!(outcomes[0].stats, outcomes[1].stats);
        assert!(outcomes[0].zoo.is_none());
        let report = outcomes[1].zoo.as_ref().expect("zoo job has a report");
        assert_eq!(report.entries.len(), mfdyn::standard_zoo().len());
        for (spec, counts) in &report.entries {
            assert!(counts.executed > 0, "{spec} saw no branches");
            assert!(counts.mispredicted <= counts.executed);
        }
        // A memo hit still finds its zoo report.
        let again = harness.run_one(zooed).unwrap();
        assert_eq!(again.source, CacheSource::Memory);
        assert_eq!(again.zoo.as_deref(), Some(report.as_ref()));
    }

    #[test]
    fn zoo_jobs_bypass_the_disk_tier() {
        let dir = std::env::temp_dir().join(format!("mfharness-zoo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = || HarnessOptions {
            jobs: Some(2),
            disk_cache: DiskCache::Dir(dir.clone()),
            ..HarnessOptions::default()
        };
        let first = Harness::new(options());
        first
            .run_one(job(LOOPY, vec![Input::Int(35)]).with_zoo(mfdyn::standard_zoo()))
            .unwrap();
        // A second harness over the same directory (a fresh process, in
        // effect) must recompute the zoo job rather than taking a stats
        // hit that would lose the report.
        let second = Harness::new(options());
        let outcome = second
            .run_one(job(LOOPY, vec![Input::Int(35)]).with_zoo(mfdyn::standard_zoo()))
            .unwrap();
        assert_eq!(outcome.source, CacheSource::Computed);
        assert!(outcome.zoo.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = Harness::new(HarnessOptions {
            jobs: Some(1),
            disk_cache: DiskCache::Off,
            ..HarnessOptions::default()
        });
        let parallel = Harness::new(HarnessOptions {
            jobs: Some(8),
            disk_cache: DiskCache::Off,
            ..HarnessOptions::default()
        });
        let batch = |h: &Harness| {
            let jobs: Vec<RunJob> = (10..30).map(|n| job(LOOPY, vec![Input::Int(n)])).collect();
            h.run(jobs).unwrap()
        };
        let a = batch(&serial);
        let b = batch(&parallel);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.stats, y.stats);
        }
    }
}
