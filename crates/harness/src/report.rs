//! Run-level observability.
//!
//! Every job the harness completes contributes a [`RunRecord`]; the
//! accumulated [`HarnessReport`] summarizes throughput, cache behavior,
//! and worker utilization, renders as an mfreport table, and serializes
//! to JSON with a hand-rolled (dependency-free) emitter.

use std::time::Duration;

use mfreport::Table;

use crate::cache::CacheCounters;
use crate::job::CacheSource;
use crate::key::RunKey;

/// One completed job, as observed by the harness.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// `program/dataset` label.
    pub label: String,
    /// Content key of the work.
    pub key: RunKey,
    /// Guest instructions the run executed.
    pub guest_instrs: u64,
    /// Wall time spent producing the result (≈0 for cache hits).
    pub wall: Duration,
    /// Computed, memory hit, or disk hit.
    pub source: CacheSource,
    /// Semantic-verification digest of the program this job ran
    /// (`mfcheck::verify_digest`), recorded when the harness runs with
    /// verification enabled — for cache hits too, so a cached result is
    /// still re-checked against today's verifier. `None` when
    /// verification was off.
    pub verify_digest: Option<u64>,
}

/// Error-taxonomy counters: everything the harness survived rather than
/// died of — worker panics, transient I/O absorbed by retry, persist
/// failures degraded to recomputation, corrupt cache entries salvaged
/// to misses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Runs that panicked inside a worker (each is quarantined).
    pub panics: u64,
    /// Labels currently quarantined, sorted.
    pub quarantined: Vec<String>,
    /// Transient I/O faults absorbed by retrying.
    pub io_retries: u64,
    /// Cache persists that gave up (results stayed in memory).
    pub cache_store_failures: u64,
    /// Cache entries that failed validation and salvaged to a miss.
    pub cache_corrupt_misses: u64,
}

impl RobustnessReport {
    /// True when nothing abnormal was observed (the usual case — and the
    /// reason the summary table omits these rows by default).
    pub fn is_quiet(&self) -> bool {
        *self == RobustnessReport::default()
    }
}

/// Aggregated observability for every batch a harness has executed.
#[derive(Clone, Debug, Default)]
pub struct HarnessReport {
    /// Per-job records, in completion-batch submission order.
    pub records: Vec<RunRecord>,
    /// Jobs submitted across all batches (before dedup).
    pub jobs_submitted: u64,
    /// Distinct keys actually looked up/executed.
    pub unique_jobs: u64,
    /// Worker threads the pool used (max across batches).
    pub workers: usize,
    /// Summed wall time of all pool batches.
    pub wall: Duration,
    /// Summed busy time across all workers and batches.
    pub busy: Duration,
    /// Cache counters snapshot.
    pub cache: CacheCounters,
    /// Error-taxonomy snapshot.
    pub robustness: RobustnessReport,
}

impl HarnessReport {
    /// Jobs that were actually executed this process.
    pub fn computed(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.source == CacheSource::Computed)
            .count() as u64
    }

    /// Total cache hits (memory + disk).
    pub fn cache_hits(&self) -> u64 {
        self.cache.mem_hits + self.cache.disk_hits
    }

    /// Hit fraction over all unique lookups, in `0..=1`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Guest instructions executed by computed runs.
    pub fn guest_instrs(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.source == CacheSource::Computed)
            .map(|r| r.guest_instrs)
            .sum()
    }

    /// Guest instructions per second of busy worker time.
    pub fn guest_instrs_per_sec(&self) -> f64 {
        let busy = self.busy.as_secs_f64();
        if busy <= 0.0 {
            0.0
        } else {
            self.guest_instrs() as f64 / busy
        }
    }

    /// Mean worker utilization over pool wall time, in `0..=1`.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall.is_zero() {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (self.wall.as_secs_f64() * self.workers as f64)).min(1.0)
    }

    /// The human-readable summary table `repro` prints.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(&["metric", "value"]);
        table.row_owned(vec![
            "jobs submitted".into(),
            self.jobs_submitted.to_string(),
        ]);
        table.row_owned(vec![
            "unique jobs (after dedup)".into(),
            self.unique_jobs.to_string(),
        ]);
        table.row_owned(vec!["runs computed".into(), self.computed().to_string()]);
        table.row_owned(vec![
            "cache hits (memory)".into(),
            self.cache.mem_hits.to_string(),
        ]);
        table.row_owned(vec![
            "cache hits (disk)".into(),
            self.cache.disk_hits.to_string(),
        ]);
        table.row_owned(vec![
            "cache hit rate".into(),
            format!("{:.1}%", self.hit_rate() * 100.0),
        ]);
        table.row_owned(vec!["worker threads".into(), self.workers.to_string()]);
        table.row_owned(vec![
            "pool wall time".into(),
            format!("{:.3}s", self.wall.as_secs_f64()),
        ]);
        table.row_owned(vec![
            "worker utilization".into(),
            format!("{:.1}%", self.utilization() * 100.0),
        ]);
        table.row_owned(vec![
            "guest instructions".into(),
            self.guest_instrs().to_string(),
        ]);
        table.row_owned(vec![
            "guest instrs/sec (busy)".into(),
            format!("{:.3e}", self.guest_instrs_per_sec()),
        ]);
        let verified = self.verified();
        if verified > 0 {
            table.row_owned(vec![
                "runs verified".into(),
                format!("{verified} ({} clean)", self.verified_clean()),
            ]);
        }
        if !self.robustness.is_quiet() {
            let r = &self.robustness;
            table.row_owned(vec![
                "runs panicked (quarantined)".into(),
                format!("{} ({})", r.panics, r.quarantined.len()),
            ]);
            table.row_owned(vec!["io retries".into(), r.io_retries.to_string()]);
            table.row_owned(vec![
                "cache store failures".into(),
                r.cache_store_failures.to_string(),
            ]);
            table.row_owned(vec![
                "cache corrupt misses".into(),
                r.cache_corrupt_misses.to_string(),
            ]);
        }
        table
    }

    /// Records carrying a verification digest.
    pub fn verified(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.verify_digest.is_some())
            .count() as u64
    }

    /// Verified records whose program produced no diagnostics at all.
    pub fn verified_clean(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.verify_digest == Some(mfcheck::CLEAN_DIGEST))
            .count() as u64
    }

    /// Serializes the full report (summary plus per-run records) as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.records.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"jobs_submitted\": {},\n  \"unique_jobs\": {},\n  \"runs_computed\": {},\n",
            self.jobs_submitted,
            self.unique_jobs,
            self.computed()
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"memory_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"hit_rate\": {}}},\n",
            self.cache.mem_hits,
            self.cache.disk_hits,
            self.cache.misses,
            json_f64(self.hit_rate())
        ));
        out.push_str(&format!(
            "  \"workers\": {},\n  \"pool_wall_seconds\": {},\n  \"worker_busy_seconds\": {},\n  \"worker_utilization\": {},\n",
            self.workers,
            json_f64(self.wall.as_secs_f64()),
            json_f64(self.busy.as_secs_f64()),
            json_f64(self.utilization())
        ));
        out.push_str(&format!(
            "  \"guest_instructions\": {},\n  \"guest_instrs_per_sec\": {},\n",
            self.guest_instrs(),
            json_f64(self.guest_instrs_per_sec())
        ));
        let quarantined: Vec<String> = self
            .robustness
            .quarantined
            .iter()
            .map(|l| json_str(l))
            .collect();
        out.push_str(&format!(
            "  \"robustness\": {{\"panics\": {}, \"quarantined\": [{}], \"io_retries\": {}, \"cache_store_failures\": {}, \"cache_corrupt_misses\": {}}},\n",
            self.robustness.panics,
            quarantined.join(", "),
            self.robustness.io_retries,
            self.robustness.cache_store_failures,
            self.robustness.cache_corrupt_misses
        ));
        out.push_str("  \"runs\": [\n");
        for (i, record) in self.records.iter().enumerate() {
            // u64 digests exceed JSON-number precision; emit hex strings.
            let verify = match record.verify_digest {
                Some(d) => format!("\"{d:#018x}\""),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"label\": {}, \"key\": \"{}\", \"guest_instructions\": {}, \"wall_seconds\": {}, \"source\": \"{}\", \"verify_digest\": {}}}{}\n",
                json_str(&record.label),
                record.key,
                record.guest_instrs,
                json_f64(record.wall.as_secs_f64()),
                record.source.name(),
                verify,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON number formatting: finite floats only (NaN/inf become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps enough digits to round-trip and always includes a
        // decimal point or exponent.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for labels (ASCII control, quote, slash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HarnessReport {
        HarnessReport {
            records: vec![
                RunRecord {
                    label: "doduc/train".into(),
                    key: RunKey(1),
                    guest_instrs: 1000,
                    wall: Duration::from_millis(5),
                    source: CacheSource::Computed,
                    verify_digest: None,
                },
                RunRecord {
                    label: "doduc/train".into(),
                    key: RunKey(1),
                    guest_instrs: 1000,
                    wall: Duration::ZERO,
                    source: CacheSource::Memory,
                    verify_digest: Some(mfcheck::CLEAN_DIGEST),
                },
            ],
            jobs_submitted: 2,
            unique_jobs: 1,
            workers: 2,
            wall: Duration::from_millis(10),
            busy: Duration::from_millis(8),
            cache: CacheCounters {
                mem_hits: 1,
                disk_hits: 0,
                misses: 1,
            },
            robustness: RobustnessReport::default(),
        }
    }

    #[test]
    fn metrics_add_up() {
        let report = sample();
        assert_eq!(report.computed(), 1);
        assert_eq!(report.cache_hits(), 1);
        assert!((report.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(report.guest_instrs(), 1000);
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
    }

    #[test]
    fn summary_table_renders() {
        let rendered = sample().summary_table().render();
        assert!(rendered.contains("cache hit rate"));
        assert!(rendered.contains("50.0%"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"label\"").count(), 2);
        // Balanced braces/brackets (no strings contain them here).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn robustness_rows_appear_only_when_noisy() {
        let mut report = sample();
        assert!(!report.summary_table().render().contains("runs panicked"));
        assert!(report
            .to_json()
            .contains("\"robustness\": {\"panics\": 0, \"quarantined\": []"));
        report.robustness = RobustnessReport {
            panics: 1,
            quarantined: vec!["doduc/train".into()],
            io_retries: 3,
            cache_store_failures: 2,
            cache_corrupt_misses: 1,
        };
        let rendered = report.summary_table().render();
        assert!(rendered.contains("runs panicked (quarantined)"));
        assert!(rendered.contains("io retries"));
        let json = report.to_json();
        assert!(
            json.contains("\"quarantined\": [\"doduc/train\"]"),
            "{json}"
        );
        assert!(json.contains("\"cache_store_failures\": 2"));
    }

    #[test]
    fn empty_report_is_stable() {
        let report = HarnessReport::default();
        assert_eq!(report.hit_rate(), 0.0);
        assert_eq!(report.utilization(), 0.0);
        assert!(report.to_json().contains("\"runs\": [\n  ]"));
    }
}
