//! The content-addressed result cache.
//!
//! Two tiers: an in-process memo table holding [`Arc`]s of completed runs,
//! and an optional on-disk tier persisting [`RunStats`] as
//! `<cache-dir>/<runkey-hex>.bin` in a small self-describing binary format.
//! Keys cover the lowered IR, inputs, and VM configuration (see
//! [`crate::key`]), so invalidation is automatic: changed work gets a new
//! key and simply never finds the old entry. Corrupted, truncated, or
//! version-skewed files are treated as misses, never errors.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use trace_ir::BranchId;
use trace_vm::{BranchCounts, BreakEvents, PixieCounts, Run, RunStats};

use crate::job::{CacheSource, Need, RunJob};
use crate::key::{fnv64, RunKey};

const MAGIC: &[u8; 4] = b"MFHC";
const FORMAT_VERSION: u8 = 1;

/// An in-memory cache entry: either the stats alone (e.g. loaded from
/// disk) or the full run.
#[derive(Clone, Debug)]
enum Entry {
    Stats(Arc<RunStats>),
    Full(Arc<Run>),
}

/// A cache lookup result ready to become a [`crate::RunOutcome`].
#[derive(Clone, Debug)]
pub struct CacheHit {
    /// The cached statistics.
    pub stats: Arc<RunStats>,
    /// The full run, when the memo table has it.
    pub run: Option<Arc<Run>>,
    /// Memory or disk.
    pub source: CacheSource,
}

/// The two-tier run cache. Thread-safe; shared by all workers of a batch.
#[derive(Debug)]
pub struct RunCache {
    mem: Mutex<HashMap<RunKey, Entry>>,
    disk: Option<PathBuf>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

/// Snapshot of the cache's hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served by the in-process memo table.
    pub mem_hits: u64,
    /// Lookups served by the persistent tier.
    pub disk_hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
}

impl RunCache {
    /// A purely in-process cache (no persistence).
    pub fn in_memory() -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache persisting stats under `dir` (created on first store).
    pub fn with_disk(dir: PathBuf) -> Self {
        RunCache {
            disk: Some(dir),
            ..RunCache::in_memory()
        }
    }

    /// The persistent tier's directory, if enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Looks `job` up; a hit must satisfy the job's [`Need`].
    pub fn lookup(&self, job: &RunJob) -> Option<CacheHit> {
        {
            let mem = self.mem.lock().expect("cache lock");
            match mem.get(&job.key) {
                Some(Entry::Full(run)) => {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(CacheHit {
                        stats: Arc::new(run.stats.clone()),
                        run: Some(Arc::clone(run)),
                        source: CacheSource::Memory,
                    });
                }
                Some(Entry::Stats(stats)) if job.need == Need::Stats => {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(CacheHit {
                        stats: Arc::clone(stats),
                        run: None,
                        source: CacheSource::Memory,
                    });
                }
                _ => {}
            }
        }
        if job.need == Need::Stats {
            if let Some(dir) = &self.disk {
                if let Some(stats) = load_stats(&entry_path(dir, job.key), job.key) {
                    let stats = Arc::new(stats);
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.mem
                        .lock()
                        .expect("cache lock")
                        .entry(job.key)
                        .or_insert_with(|| Entry::Stats(Arc::clone(&stats)));
                    return Some(CacheHit {
                        stats,
                        run: None,
                        source: CacheSource::Disk,
                    });
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a freshly computed run and, for non-traced runs with a disk
    /// tier, persists its stats. (Traced runs are excluded from disk: the
    /// trace itself is not persisted, and stats of a traced config belong
    /// to a different key than the untraced one anyway.)
    pub fn insert(&self, job: &RunJob, run: &Arc<Run>) {
        self.mem
            .lock()
            .expect("cache lock")
            .insert(job.key, Entry::Full(Arc::clone(run)));
        if let Some(dir) = &self.disk {
            if !job.config.record_branch_trace {
                // Persistence is best-effort: a read-only target dir must
                // not fail the run.
                let _ = store_stats(dir, job.key, &run.stats);
            }
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

fn entry_path(dir: &Path, key: RunKey) -> PathBuf {
    dir.join(format!("{}.bin", key.hex()))
}

// ---------------------------------------------------------------------
// The on-disk codec: little-endian, length-prefixed, checksummed.
//
//   MFHC <version:u8> <key:16B> <payload> <fnv64-of-everything-before:8B>
//
// Payload: total_instrs, branch table, break events, pixie block counts.
// ---------------------------------------------------------------------

fn store_stats(dir: &Path, key: RunKey, stats: &RunStats) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(MAGIC);
    buf.push(FORMAT_VERSION);
    buf.extend_from_slice(&key.0.to_le_bytes());
    put_u64(&mut buf, stats.total_instrs);
    let branches: Vec<(BranchId, u64, u64)> = stats.branches.iter().collect();
    put_u64(&mut buf, branches.len() as u64);
    for (id, executed, taken) in branches {
        put_u64(&mut buf, u64::from(id.0));
        put_u64(&mut buf, executed);
        put_u64(&mut buf, taken);
    }
    let e = &stats.events;
    for v in [
        e.jumps,
        e.indirect_jumps,
        e.direct_calls,
        e.direct_returns,
        e.indirect_calls,
        e.indirect_returns,
        e.selects,
    ] {
        put_u64(&mut buf, v);
    }
    put_u64(&mut buf, stats.pixie.blocks.len() as u64);
    for func in &stats.pixie.blocks {
        put_u64(&mut buf, func.len() as u64);
        for &count in func {
            put_u64(&mut buf, count);
        }
    }
    let checksum = fnv64(&buf);
    put_u64(&mut buf, checksum);

    // Write-then-rename so concurrent writers and readers never observe a
    // torn entry.
    static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        "{}.tmp.{}.{}",
        key.hex(),
        std::process::id(),
        TMP_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, &buf)?;
    let result = std::fs::rename(&tmp, entry_path(dir, key));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Loads and validates one entry; any defect (missing file, bad magic or
/// version, key mismatch, truncation, checksum failure, inconsistent
/// counters) yields `None` — a miss, never a panic.
fn load_stats(path: &Path, key: RunKey) -> Option<RunStats> {
    let bytes = std::fs::read(path).ok()?;
    decode_stats(&bytes, key)
}

fn decode_stats(bytes: &[u8], key: RunKey) -> Option<RunStats> {
    if bytes.len() < MAGIC.len() + 1 + 16 + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv64(body) != stored_sum {
        return None;
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(4)? != &MAGIC[..] || r.take(1)?[0] != FORMAT_VERSION {
        return None;
    }
    let stored_key = u128::from_le_bytes(r.take(16)?.try_into().ok()?);
    if stored_key != key.0 {
        return None;
    }
    let total_instrs = r.u64()?;
    let n_branches = r.u64()?;
    let mut branches = BranchCounts::new();
    for _ in 0..n_branches {
        let id = u32::try_from(r.u64()?).ok()?;
        let executed = r.u64()?;
        let taken = r.u64()?;
        if taken > executed {
            return None;
        }
        branches.add(BranchId(id), executed, taken);
    }
    let events = BreakEvents {
        jumps: r.u64()?,
        indirect_jumps: r.u64()?,
        direct_calls: r.u64()?,
        direct_returns: r.u64()?,
        indirect_calls: r.u64()?,
        indirect_returns: r.u64()?,
        selects: r.u64()?,
    };
    let n_funcs = r.u64()?;
    let mut blocks = Vec::with_capacity(usize::try_from(n_funcs).ok()?);
    for _ in 0..n_funcs {
        let n_blocks = usize::try_from(r.u64()?).ok()?;
        let mut func = Vec::with_capacity(n_blocks.min(1 << 16));
        for _ in 0..n_blocks {
            func.push(r.u64()?);
        }
        blocks.push(func);
    }
    if r.pos != r.bytes.len() {
        return None; // trailing garbage
    }
    Some(RunStats {
        total_instrs,
        branches,
        events,
        pixie: PixieCounts { blocks },
    })
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> RunStats {
        let mut branches = BranchCounts::new();
        branches.add(BranchId(0), 100, 40);
        branches.add(BranchId(7), 5, 5);
        RunStats {
            total_instrs: 12_345,
            branches,
            events: BreakEvents {
                jumps: 1,
                indirect_jumps: 2,
                direct_calls: 3,
                direct_returns: 4,
                indirect_calls: 5,
                indirect_returns: 6,
                selects: 7,
            },
            pixie: PixieCounts {
                blocks: vec![vec![10, 20], vec![], vec![30]],
            },
        }
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let dir = std::env::temp_dir().join(format!("mfharness-codec-{}", std::process::id()));
        let key = RunKey(42);
        let stats = sample_stats();
        store_stats(&dir, key, &stats).unwrap();
        let loaded = load_stats(&entry_path(&dir, key), key).unwrap();
        assert_eq!(loaded, stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_is_a_miss() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(FORMAT_VERSION);
        let key = RunKey(9);
        buf.extend_from_slice(&key.0.to_le_bytes());
        // Valid encode via the public path:
        let dir = std::env::temp_dir().join(format!("mfharness-trunc-{}", std::process::id()));
        store_stats(&dir, key, &sample_stats()).unwrap();
        let full = std::fs::read(entry_path(&dir, key)).unwrap();
        for len in 0..full.len() {
            assert!(decode_stats(&full[..len], key).is_none(), "len {len}");
        }
        assert!(decode_stats(&full, key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bytes_and_wrong_keys_are_misses() {
        let dir = std::env::temp_dir().join(format!("mfharness-flip-{}", std::process::id()));
        let key = RunKey(77);
        store_stats(&dir, key, &sample_stats()).unwrap();
        let full = std::fs::read(entry_path(&dir, key)).unwrap();
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x41;
            assert!(decode_stats(&bad, key).is_none(), "byte {i}");
        }
        assert!(decode_stats(&full, RunKey(78)).is_none(), "wrong key");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
