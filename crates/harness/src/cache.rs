//! The content-addressed result cache.
//!
//! Two tiers: an in-process memo table holding [`Arc`]s of completed runs,
//! and an optional on-disk tier persisting [`RunStats`] as
//! `<cache-dir>/<runkey-hex>.bin` in a small self-describing binary format.
//! Keys cover the lowered IR, inputs, and VM configuration (see
//! [`crate::key`]), so invalidation is automatic: changed work gets a new
//! key and simply never finds the old entry. Corrupted, truncated, or
//! version-skewed files are treated as misses, never errors.
//!
//! All file I/O goes through an [`mffault::Vfs`], so fault-injection
//! tests can exercise the failure paths deterministically: transient
//! errors are absorbed by a bounded retry, persistent store failures
//! degrade to recomputation, and torn or corrupt entries salvage to a
//! miss — the cache never takes a run (or the process) down with it.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mffault::{RealVfs, RetryPolicy, Vfs};
use trace_ir::BranchId;
use trace_vm::{BranchCounts, BreakEvents, PixieCounts, Run, RunStats};

use crate::job::{CacheSource, Need, RunJob};
use crate::key::{fnv64, RunKey};

const MAGIC: &[u8; 4] = b"MFHC";
const FORMAT_VERSION: u8 = 1;

/// An in-memory cache entry: either the stats alone (e.g. loaded from
/// disk) or the full run.
#[derive(Clone, Debug)]
enum Entry {
    Stats(Arc<RunStats>),
    Full(Arc<Run>),
}

/// A cache lookup result ready to become a [`crate::RunOutcome`].
#[derive(Clone, Debug)]
pub struct CacheHit {
    /// The cached statistics.
    pub stats: Arc<RunStats>,
    /// The full run, when the memo table has it.
    pub run: Option<Arc<Run>>,
    /// Memory or disk.
    pub source: CacheSource,
}

/// The two-tier run cache. Thread-safe; shared by all workers of a batch.
#[derive(Debug)]
pub struct RunCache {
    mem: Mutex<HashMap<RunKey, Entry>>,
    disk: Option<PathBuf>,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    io_retries: AtomicU64,
    store_failures: AtomicU64,
    corrupt_misses: AtomicU64,
}

/// Snapshot of the cache's hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served by the in-process memo table.
    pub mem_hits: u64,
    /// Lookups served by the persistent tier.
    pub disk_hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
}

/// Snapshot of the cache's fault-handling counters — how much I/O
/// weather it absorbed without surfacing an error.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheRobustness {
    /// Transient I/O errors absorbed by retrying.
    pub io_retries: u64,
    /// Persist attempts that gave up (the result stayed in memory and
    /// will simply be recomputed by the next process).
    pub store_failures: u64,
    /// Entries that were read but failed validation (torn, corrupt, or
    /// version-skewed) and salvaged to a miss.
    pub corrupt_misses: u64,
}

impl RunCache {
    /// A purely in-process cache (no persistence).
    pub fn in_memory() -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            vfs: Arc::new(RealVfs),
            retry: RetryPolicy::none(),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            corrupt_misses: AtomicU64::new(0),
        }
    }

    /// A cache persisting stats under `dir` (created on first store).
    pub fn with_disk(dir: PathBuf) -> Self {
        RunCache {
            disk: Some(dir),
            ..RunCache::in_memory()
        }
    }

    /// A persisting cache over an explicit [`Vfs`] and retry policy —
    /// the injection point for fault plans and in-memory filesystems.
    pub fn with_disk_on(vfs: Arc<dyn Vfs>, dir: PathBuf, retry: RetryPolicy) -> Self {
        RunCache {
            disk: Some(dir),
            vfs,
            retry,
            ..RunCache::in_memory()
        }
    }

    /// The persistent tier's directory, if enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Looks `job` up; a hit must satisfy the job's [`Need`].
    pub fn lookup(&self, job: &RunJob) -> Option<CacheHit> {
        {
            let mem = self.mem.lock().expect("cache lock");
            match mem.get(&job.key) {
                Some(Entry::Full(run)) => {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(CacheHit {
                        stats: Arc::new(run.stats.clone()),
                        run: Some(Arc::clone(run)),
                        source: CacheSource::Memory,
                    });
                }
                Some(Entry::Stats(stats)) if job.need == Need::Stats => {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(CacheHit {
                        stats: Arc::clone(stats),
                        run: None,
                        source: CacheSource::Memory,
                    });
                }
                _ => {}
            }
        }
        // Zoo jobs never consult the disk tier: a cross-process disk hit
        // would hand back stats without the zoo report the job exists to
        // produce.
        if job.need == Need::Stats && job.zoo.is_empty() {
            if let Some(dir) = &self.disk {
                if let Some(stats) = self.load(&entry_path(dir, job.key), job.key) {
                    let stats = Arc::new(stats);
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.mem
                        .lock()
                        .expect("cache lock")
                        .entry(job.key)
                        .or_insert_with(|| Entry::Stats(Arc::clone(&stats)));
                    return Some(CacheHit {
                        stats,
                        run: None,
                        source: CacheSource::Disk,
                    });
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a freshly computed run and, for non-traced zoo-free runs
    /// with a disk tier, persists its stats. (Traced runs are excluded
    /// from disk: the trace itself is not persisted, and stats of a traced
    /// config belong to a different key than the untraced one anyway. Zoo
    /// jobs are excluded symmetrically with [`RunCache::lookup`].)
    pub fn insert(&self, job: &RunJob, run: &Arc<Run>) {
        self.mem
            .lock()
            .expect("cache lock")
            .insert(job.key, Entry::Full(Arc::clone(run)));
        if let Some(dir) = &self.disk {
            if !job.config.record_branch_trace && job.zoo.is_empty() {
                // Persistence is best-effort: a read-only target dir must
                // not fail the run.
                let dir = dir.clone();
                let _ = self.store(&dir, job.key, &run.stats);
            }
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Fault-handling counter snapshot.
    pub fn robustness(&self) -> CacheRobustness {
        CacheRobustness {
            io_retries: self.io_retries.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            corrupt_misses: self.corrupt_misses.load(Ordering::Relaxed),
        }
    }

    /// Retries `op` under the cache's policy, accounting the retries.
    fn io<T>(&self, op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let (result, used) = mffault::retry(self.retry, op);
        self.io_retries
            .fetch_add(u64::from(used), Ordering::Relaxed);
        result
    }

    /// Persists one entry via write-then-rename. Failures are counted and
    /// reported but never escalate past the caller's best-effort intent.
    fn store(&self, dir: &Path, key: RunKey, stats: &RunStats) -> io::Result<()> {
        let result = self.store_inner(dir, key, stats);
        if result.is_err() {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn store_inner(&self, dir: &Path, key: RunKey, stats: &RunStats) -> io::Result<()> {
        self.io(|| self.vfs.create_dir_all(dir))?;
        let buf = encode_stats(key, stats);

        // Unique temp names (pid + process-wide serial) so concurrent
        // writers — threads here, or two repro processes sharing one
        // cache directory — never collide on the staging file; the final
        // rename is atomic, so readers see old bytes or new, never torn.
        static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        if let Err(e) = self.io(|| self.vfs.write(&tmp, &buf)) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        let result = self.io(|| self.vfs.rename(&tmp, &entry_path(dir, key)));
        if result.is_err() {
            let _ = self.vfs.remove_file(&tmp);
        }
        result
    }

    /// Loads and validates one entry; any defect (missing file, bad magic
    /// or version, key mismatch, truncation, checksum failure,
    /// inconsistent counters) yields `None` — a miss, never a panic.
    fn load(&self, path: &Path, key: RunKey) -> Option<RunStats> {
        let bytes = self.io(|| self.vfs.read(path)).ok()?;
        let decoded = decode_stats(&bytes, key);
        if decoded.is_none() {
            self.corrupt_misses.fetch_add(1, Ordering::Relaxed);
        }
        decoded
    }
}

fn entry_path(dir: &Path, key: RunKey) -> PathBuf {
    dir.join(format!("{}.bin", key.hex()))
}

// ---------------------------------------------------------------------
// The on-disk codec: little-endian, length-prefixed, checksummed.
//
//   MFHC <version:u8> <key:16B> <payload> <fnv64-of-everything-before:8B>
//
// Payload: total_instrs, branch table, break events, pixie block counts.
// ---------------------------------------------------------------------

fn encode_stats(key: RunKey, stats: &RunStats) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(MAGIC);
    buf.push(FORMAT_VERSION);
    buf.extend_from_slice(&key.0.to_le_bytes());
    put_u64(&mut buf, stats.total_instrs);
    let branches: Vec<(BranchId, u64, u64)> = stats.branches.iter().collect();
    put_u64(&mut buf, branches.len() as u64);
    for (id, executed, taken) in branches {
        put_u64(&mut buf, u64::from(id.0));
        put_u64(&mut buf, executed);
        put_u64(&mut buf, taken);
    }
    let e = &stats.events;
    for v in [
        e.jumps,
        e.indirect_jumps,
        e.direct_calls,
        e.direct_returns,
        e.indirect_calls,
        e.indirect_returns,
        e.selects,
    ] {
        put_u64(&mut buf, v);
    }
    put_u64(&mut buf, stats.pixie.blocks.len() as u64);
    for func in &stats.pixie.blocks {
        put_u64(&mut buf, func.len() as u64);
        for &count in func {
            put_u64(&mut buf, count);
        }
    }
    let checksum = fnv64(&buf);
    put_u64(&mut buf, checksum);
    buf
}

fn decode_stats(bytes: &[u8], key: RunKey) -> Option<RunStats> {
    if bytes.len() < MAGIC.len() + 1 + 16 + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv64(body) != stored_sum {
        return None;
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(4)? != &MAGIC[..] || r.take(1)?[0] != FORMAT_VERSION {
        return None;
    }
    let stored_key = u128::from_le_bytes(r.take(16)?.try_into().ok()?);
    if stored_key != key.0 {
        return None;
    }
    let total_instrs = r.u64()?;
    let n_branches = r.u64()?;
    let mut branches = BranchCounts::new();
    for _ in 0..n_branches {
        let id = u32::try_from(r.u64()?).ok()?;
        let executed = r.u64()?;
        let taken = r.u64()?;
        if taken > executed {
            return None;
        }
        branches.add(BranchId(id), executed, taken);
    }
    let events = BreakEvents {
        jumps: r.u64()?,
        indirect_jumps: r.u64()?,
        direct_calls: r.u64()?,
        direct_returns: r.u64()?,
        indirect_calls: r.u64()?,
        indirect_returns: r.u64()?,
        selects: r.u64()?,
    };
    let n_funcs = r.u64()?;
    let mut blocks = Vec::with_capacity(usize::try_from(n_funcs).ok()?);
    for _ in 0..n_funcs {
        let n_blocks = usize::try_from(r.u64()?).ok()?;
        let mut func = Vec::with_capacity(n_blocks.min(1 << 16));
        for _ in 0..n_blocks {
            func.push(r.u64()?);
        }
        blocks.push(func);
    }
    if r.pos != r.bytes.len() {
        return None; // trailing garbage
    }
    Some(RunStats {
        total_instrs,
        branches,
        events,
        pixie: PixieCounts { blocks },
    })
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffault::{FaultPlan, FaultVfs, MemVfs};

    fn sample_stats() -> RunStats {
        let mut branches = BranchCounts::new();
        branches.add(BranchId(0), 100, 40);
        branches.add(BranchId(7), 5, 5);
        RunStats {
            total_instrs: 12_345,
            branches,
            events: BreakEvents {
                jumps: 1,
                indirect_jumps: 2,
                direct_calls: 3,
                direct_returns: 4,
                indirect_calls: 5,
                indirect_returns: 6,
                selects: 7,
            },
            pixie: PixieCounts {
                blocks: vec![vec![10, 20], vec![], vec![30]],
            },
        }
    }

    fn mem_cache() -> (Arc<MemVfs>, RunCache) {
        let mem = Arc::new(MemVfs::new());
        let cache = RunCache::with_disk_on(
            mem.clone() as Arc<dyn Vfs>,
            PathBuf::from("/cache"),
            RetryPolicy::none(),
        );
        (mem, cache)
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let (_, cache) = mem_cache();
        let key = RunKey(42);
        let stats = sample_stats();
        cache.store(Path::new("/cache"), key, &stats).unwrap();
        let loaded = cache
            .load(&entry_path(Path::new("/cache"), key), key)
            .unwrap();
        assert_eq!(loaded, stats);
        assert_eq!(cache.robustness(), CacheRobustness::default());
    }

    #[test]
    fn every_truncation_is_a_miss() {
        let (mem, cache) = mem_cache();
        let key = RunKey(9);
        cache
            .store(Path::new("/cache"), key, &sample_stats())
            .unwrap();
        let full = mem.read(&entry_path(Path::new("/cache"), key)).unwrap();
        for len in 0..full.len() {
            assert!(decode_stats(&full[..len], key).is_none(), "len {len}");
        }
        assert!(decode_stats(&full, key).is_some());
    }

    #[test]
    fn flipped_bytes_and_wrong_keys_are_misses() {
        let (mem, cache) = mem_cache();
        let key = RunKey(77);
        cache
            .store(Path::new("/cache"), key, &sample_stats())
            .unwrap();
        let full = mem.read(&entry_path(Path::new("/cache"), key)).unwrap();
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x41;
            assert!(decode_stats(&bad, key).is_none(), "byte {i}");
        }
        assert!(decode_stats(&full, RunKey(78)).is_none(), "wrong key");
    }

    #[test]
    fn corrupt_entries_salvage_to_counted_misses() {
        let (mem, cache) = mem_cache();
        let key = RunKey(5);
        let path = entry_path(Path::new("/cache"), key);
        cache
            .store(Path::new("/cache"), key, &sample_stats())
            .unwrap();
        let mut bytes = mem.read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        mem.write(&path, &bytes).unwrap();
        assert!(cache.load(&path, key).is_none());
        assert_eq!(cache.robustness().corrupt_misses, 1);
        // A missing file is a plain miss, not corruption.
        assert!(cache.load(Path::new("/cache/nope.bin"), key).is_none());
        assert_eq!(cache.robustness().corrupt_misses, 1);
    }

    #[test]
    fn denied_writes_fail_the_store_but_only_the_store() {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(mem as Arc<dyn Vfs>, FaultPlan::deny_writes()));
        let cache = RunCache::with_disk_on(
            fv as Arc<dyn Vfs>,
            PathBuf::from("/cache"),
            RetryPolicy::none(),
        );
        assert!(cache
            .store(Path::new("/cache"), RunKey(1), &sample_stats())
            .is_err());
        assert_eq!(cache.robustness().store_failures, 1);
    }

    #[test]
    fn transient_faults_are_retried_away() {
        let mem = Arc::new(MemVfs::new());
        let fv = Arc::new(FaultVfs::new(
            mem.clone() as Arc<dyn Vfs>,
            FaultPlan::transient(3, 250),
        ));
        let cache = RunCache::with_disk_on(
            fv as Arc<dyn Vfs>,
            PathBuf::from("/cache"),
            RetryPolicy::immediate(6),
        );
        for k in 0..10u128 {
            cache
                .store(Path::new("/cache"), RunKey(k), &sample_stats())
                .unwrap_or_else(|e| panic!("store {k} failed: {e}"));
            assert!(cache
                .load(&entry_path(Path::new("/cache"), RunKey(k)), RunKey(k))
                .is_some());
        }
        assert!(
            cache.robustness().io_retries > 0,
            "a 250 per-mille transient plan should have injected something"
        );
        assert_eq!(cache.robustness().store_failures, 0);
    }

    /// Regression guard for the tmp-file protocol: many concurrent
    /// writers — split across two caches sharing one directory, the
    /// moral equivalent of two processes — never collide on staging
    /// names, never leave droppings, and every surviving entry is valid.
    #[test]
    fn concurrent_writers_share_a_directory_without_tearing() {
        let mem = Arc::new(MemVfs::new());
        let a = Arc::new(RunCache::with_disk_on(
            mem.clone() as Arc<dyn Vfs>,
            PathBuf::from("/cache"),
            RetryPolicy::none(),
        ));
        let b = Arc::new(RunCache::with_disk_on(
            mem.clone() as Arc<dyn Vfs>,
            PathBuf::from("/cache"),
            RetryPolicy::none(),
        ));
        let stats = sample_stats();
        std::thread::scope(|scope| {
            for t in 0..4u128 {
                let cache = if t % 2 == 0 {
                    Arc::clone(&a)
                } else {
                    Arc::clone(&b)
                };
                let stats = &stats;
                scope.spawn(move || {
                    for i in 0..25u128 {
                        // Overlapping key ranges force same-key races.
                        let key = RunKey((t % 2) * 1000 + i);
                        cache.store(Path::new("/cache"), key, stats).unwrap();
                    }
                });
            }
        });
        let listing = mem.read_dir(Path::new("/cache")).unwrap();
        assert!(
            listing
                .iter()
                .all(|p| !p.to_string_lossy().contains(".tmp.")),
            "staging files left behind: {listing:?}"
        );
        for i in 0..25u128 {
            for base in [0u128, 1000] {
                let key = RunKey(base + i);
                assert_eq!(
                    a.load(&entry_path(Path::new("/cache"), key), key),
                    Some(stats.clone()),
                    "entry {key:?} torn or lost"
                );
            }
        }
        assert_eq!(a.robustness().corrupt_misses, 0);
    }
}
