//! A dependency-free work-stealing thread pool for index-addressed jobs.
//!
//! Built on [`std::thread::scope`], so worker closures may borrow from the
//! caller's stack. Each worker owns a deque seeded round-robin with job
//! indices; it pops from the front of its own deque and steals from the
//! back of the others. Results land in pre-allocated per-index slots, so
//! output order equals submission order no matter how the work was
//! scheduled — determinism is positional, not temporal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use std::collections::VecDeque;

/// Per-worker observability: how much of the pool's wall time each worker
/// spent actually executing jobs.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Number of worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the whole batch.
    pub wall: Duration,
    /// Busy (job-executing) time per worker.
    pub busy: Vec<Duration>,
}

impl PoolStats {
    /// Mean fraction of wall time workers spent executing jobs, in `0..=1`.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (self.wall.as_secs_f64() * self.workers as f64)).min(1.0)
    }
}

/// Runs `f(i)` for every `i in 0..count` on `workers` threads and returns
/// the results in index order.
pub fn run_indexed<T, F>(workers: usize, count: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1);
    let start = Instant::now();

    // Tiny or serial batches skip thread spawning entirely; this is also
    // the reference schedule the parallel path must match byte-for-byte.
    if workers == 1 || count <= 1 {
        let mut results = Vec::with_capacity(count);
        let busy_start = Instant::now();
        for i in 0..count {
            results.push(f(i));
        }
        let stats = PoolStats {
            workers: 1,
            wall: start.elapsed(),
            busy: vec![busy_start.elapsed()],
        };
        return (results, stats);
    }

    let workers = workers.min(count);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            // Round-robin seeding keeps early jobs spread across workers.
            Mutex::new((w..count).step_by(workers).collect())
        })
        .collect();
    let slots: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();
    let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let busy_ns = &busy_ns;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let job = pop_own(&deques[w]).or_else(|| steal(deques, w));
                    let Some(i) = job else { break };
                    let t0 = Instant::now();
                    let value = f(i);
                    busy_ns[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    // Each index is dequeued exactly once, so the slot is
                    // always empty here.
                    let _ = slots[i].set(value);
                }
            });
        }
    });

    let results: Vec<T> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker completed every job"))
        .collect();
    let stats = PoolStats {
        workers,
        wall: start.elapsed(),
        busy: busy_ns
            .iter()
            .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
            .collect(),
    };
    (results, stats)
}

/// Like [`run_indexed`], but each job runs under `catch_unwind`: a
/// panicking job yields `Err(panic message)` in its slot instead of
/// poisoning a worker and deadlocking the batch. The other jobs — on the
/// same worker included — run to completion.
pub fn run_indexed_supervised<T, F>(
    workers: usize,
    count: usize,
    f: F,
) -> (Vec<Result<T, String>>, PoolStats)
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(workers, count, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(panic_message)
    })
}

/// Renders a panic payload as text (the common `&str`/`String` payloads;
/// anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

fn pop_own(deque: &Mutex<VecDeque<usize>>) -> Option<usize> {
    deque.lock().expect("pool deque lock").pop_front()
}

fn steal(deques: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    let n = deques.len();
    for offset in 1..n {
        let victim = (thief + offset) % n;
        if let Some(job) = deques[victim].lock().expect("pool deque lock").pop_back() {
            return Some(job);
        }
    }
    None
}

/// The default worker count: available parallelism, clamped to 8 so a
/// casual `repro` run does not saturate a large shared box.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 4, 8] {
            let (results, _) = run_indexed(workers, 100, |i| i * i);
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(results, expected, "workers = {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let (_, stats) = run_indexed(4, counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.busy.len(), 4);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let (results, _) = run_indexed(8, 0, |i| i);
        assert!(results.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_clamps() {
        let (results, stats) = run_indexed(16, 3, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn supervised_pool_survives_panicking_jobs() {
        // Silence the default panic hook for the expected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for workers in [1, 4] {
            let (results, _) = run_indexed_supervised(workers, 20, |i| {
                if i % 5 == 3 {
                    panic!("job {i} is poisoned");
                }
                i * 2
            });
            assert_eq!(results.len(), 20, "workers = {workers}");
            for (i, r) in results.iter().enumerate() {
                if i % 5 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("poisoned"), "slot {i}: {msg}");
                } else {
                    assert_eq!(*r, Ok(i * 2), "workers = {workers}");
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn utilization_is_bounded() {
        let (_, stats) = run_indexed(2, 50, |i| {
            std::hint::black_box((0..1000).fold(i, |a, b| a.wrapping_add(b)))
        });
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization = {u}");
    }
}
