//! Content-addressed run keys.
//!
//! A [`RunKey`] is a 128-bit fingerprint of everything that determines a
//! run's statistics: the lowered IR (its canonical text rendering), the
//! dataset inputs, and the semantics-relevant [`VmConfig`] fields. Two jobs
//! with equal keys are the same unit of work and may share one execution;
//! a changed program (re-lowered IR), dataset, or VM configuration changes
//! the key and thereby invalidates every cached artifact for the old one.

use std::fmt;

use trace_ir::Program;
use trace_vm::{Input, VmConfig};

/// Bump when the fingerprint composition changes, so stale on-disk cache
/// entries from older layouts can never be mistaken for current ones.
/// Version 2 added the VM backend to the fingerprint; version 3 added the
/// observation tags (the dynamic-predictor zoo attached to a job);
/// version 4 added the flat backend's trace-formation configuration;
/// version 5 added the trace config's low-confidence (version-skew
/// degraded) site digest.
const KEY_FORMAT_VERSION: u64 = 5;

/// A 128-bit content fingerprint identifying one unit of run work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub u128);

impl RunKey {
    /// Fingerprints `(program, inputs, config)` with no observation tags.
    pub fn of(program: &Program, inputs: &[Input], config: &VmConfig) -> Self {
        RunKey::of_tagged(program, inputs, config, &[])
    }

    /// Fingerprints `(program, inputs, config)` plus an ordered list of
    /// observation tags — the canonical names of whatever observers (e.g.
    /// the `mfdyn` predictor zoo) ride along on the run. The run's stats
    /// are identical with or without observers, but the *artifacts* a job
    /// produces are not, so two jobs whose zoos differ must never share a
    /// cache entry.
    pub fn of_tagged(
        program: &Program,
        inputs: &[Input],
        config: &VmConfig,
        tags: &[String],
    ) -> Self {
        let mut fp = Fingerprint::new();
        fp.write_u64(KEY_FORMAT_VERSION);
        // The IR's Display form is canonical and covers every instruction,
        // terminator, and branch id — a re-lowered or re-optimized program
        // renders differently and gets a fresh key.
        fp.write_str(&program.to_string());
        fp.write_u64(inputs.len() as u64);
        for input in inputs {
            match input {
                Input::Int(v) => {
                    fp.write_u64(1);
                    fp.write_u64(*v as u64);
                }
                Input::Float(v) => {
                    fp.write_u64(2);
                    fp.write_u64(v.to_bits());
                }
                Input::Ints(vs) => {
                    fp.write_u64(3);
                    fp.write_u64(vs.len() as u64);
                    for v in vs {
                        fp.write_u64(*v as u64);
                    }
                }
                Input::Floats(vs) => {
                    fp.write_u64(4);
                    fp.write_u64(vs.len() as u64);
                    for v in vs {
                        fp.write_u64(v.to_bits());
                    }
                }
            }
        }
        fp.write_u64(config.fuel);
        fp.write_u64(config.max_stack as u64);
        fp.write_u64(config.max_alloc as u64);
        fp.write_u64(u64::from(config.record_branch_trace));
        // Both backends are observably identical, but cached results should
        // still record which engine produced them — a backend-semantics bug
        // must not be able to hide behind a stale cache entry.
        fp.write_str(config.backend.name());
        // Trace formation never changes observable stats either, but the
        // same no-hiding-behind-the-cache rule applies to the trace config.
        fp.write_u64(u64::from(config.trace.enabled));
        fp.write_u64(u64::from(config.trace.tail_dup_budget));
        // A profile degraded by a version-skew remap compiles differently
        // (degraded sites predict BTFN); the digest of that site set keys
        // the compilation.
        fp.write_u64(config.trace.confidence_digest);
        fp.write_u64(tags.len() as u64);
        for tag in tags {
            fp.write_str(tag);
        }
        RunKey(fp.finish())
    }

    /// The key as a fixed-width hex string (cache file stem).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Two independent FNV-1a 64-bit streams over the same bytes, concatenated
/// into 128 bits. Dependency-free and plenty for content addressing a few
/// hundred cache entries.
pub struct Fingerprint {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprint {
            a: FNV_OFFSET,
            // A distinct offset basis decorrelates the second stream.
            b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME.rotate_left(1));
        }
    }

    /// Feeds one little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The combined 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// FNV-1a 64 over a byte slice — used as the cache file checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_keys() {
        let program = mflang::compile("fn main(n: int) { emit(n); }").unwrap();
        let cfg = VmConfig::default();
        let a = RunKey::of(&program, &[Input::Int(1)], &cfg);
        let b = RunKey::of(&program, &[Input::Int(2)], &cfg);
        let a2 = RunKey::of(&program, &[Input::Int(1)], &cfg);
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn config_and_program_perturb_the_key() {
        let p1 = mflang::compile("fn main(n: int) { emit(n); }").unwrap();
        let p2 = mflang::compile("fn main(n: int) { emit(n + 1); }").unwrap();
        let cfg = VmConfig::default();
        let traced = VmConfig {
            record_branch_trace: true,
            ..VmConfig::default()
        };
        let base = RunKey::of(&p1, &[Input::Int(1)], &cfg);
        assert_ne!(base, RunKey::of(&p2, &[Input::Int(1)], &cfg));
        assert_ne!(base, RunKey::of(&p1, &[Input::Int(1)], &traced));
    }

    #[test]
    fn backend_perturbs_the_key() {
        let program = mflang::compile("fn main(n: int) { emit(n); }").unwrap();
        let reference = VmConfig::default();
        let flat = VmConfig {
            backend: trace_vm::Backend::Flat,
            ..VmConfig::default()
        };
        assert_ne!(
            RunKey::of(&program, &[Input::Int(1)], &reference),
            RunKey::of(&program, &[Input::Int(1)], &flat)
        );
    }

    #[test]
    fn trace_config_perturbs_the_key() {
        let program = mflang::compile("fn main(n: int) { emit(n); }").unwrap();
        let base = VmConfig::default();
        let untraced = VmConfig {
            trace: trace_vm::TraceConfig {
                enabled: false,
                ..trace_vm::TraceConfig::default()
            },
            ..VmConfig::default()
        };
        let bigger_budget = VmConfig {
            trace: trace_vm::TraceConfig {
                tail_dup_budget: 1024,
                ..trace_vm::TraceConfig::default()
            },
            ..VmConfig::default()
        };
        let degraded = VmConfig {
            trace: trace_vm::TraceConfig {
                confidence_digest: trace_vm::confidence_digest(&[trace_ir::BranchId(0)]),
                ..trace_vm::TraceConfig::default()
            },
            ..VmConfig::default()
        };
        let k = RunKey::of(&program, &[Input::Int(1)], &base);
        assert_ne!(k, RunKey::of(&program, &[Input::Int(1)], &untraced));
        assert_ne!(k, RunKey::of(&program, &[Input::Int(1)], &bigger_budget));
        assert_ne!(k, RunKey::of(&program, &[Input::Int(1)], &degraded));
    }

    #[test]
    fn input_encoding_is_injective_across_variants() {
        let program = mflang::compile("fn main(n: int) { emit(n); }").unwrap();
        let cfg = VmConfig::default();
        let int = RunKey::of(&program, &[Input::Int(7)], &cfg);
        let ints = RunKey::of(&program, &[Input::Ints(vec![7])], &cfg);
        let float = RunKey::of(&program, &[Input::Float(7.0)], &cfg);
        assert_ne!(int, ints);
        assert_ne!(int, float);
    }

    #[test]
    fn observation_tags_perturb_the_key() {
        // Satellite: different predictor configurations must never share a
        // cache entry — each distinct tag list is its own key, and the
        // empty tag list is exactly the untagged key.
        let program = mflang::compile("fn main(n: int) { emit(n); }").unwrap();
        let cfg = VmConfig::default();
        let tag = |names: &[&str]| {
            RunKey::of_tagged(
                &program,
                &[Input::Int(1)],
                &cfg,
                &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
        };
        let untagged = RunKey::of(&program, &[Input::Int(1)], &cfg);
        assert_eq!(untagged, tag(&[]));
        let keys = [
            tag(&["2bit/t12"]),
            tag(&["2bit/t10"]),
            tag(&["gshare/h8/t12"]),
            tag(&["gshare/h12/t12"]),
            tag(&["gshare/h8/t12", "2bit/t12"]),
            tag(&["2bit/t12", "gshare/h8/t12"]),
            untagged,
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "tag lists collided");
            }
        }
        // Tag splitting is unambiguous: two tags never hash like one
        // concatenated tag (length-prefixed strings).
        assert_ne!(tag(&["ab", "c"]), tag(&["a", "bc"]));
        assert_ne!(tag(&["abc"]), tag(&["ab", "c"]));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(RunKey(1).hex().len(), 32);
        assert_eq!(RunKey(u128::MAX).hex().len(), 32);
    }
}
