//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm
//! ("A Simple, Fast Dominance Algorithm").

use trace_ir::BlockId;

use crate::cfg::Cfg;

/// The dominator tree of a CFG. Unreachable blocks have no dominator
/// information at all.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; the entry points at itself, and
    /// unreachable blocks hold `None`.
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes dominators over `cfg`'s reachable blocks.
    pub fn compute(cfg: &Cfg) -> Self {
        let mut idom: Vec<Option<BlockId>> = vec![None; cfg.len()];
        let Some(&entry) = cfg.rpo().first() else {
            return DomTree { idom };
        };
        idom[entry.index()] = Some(entry);

        let pos = |b: BlockId| cfg.rpo_pos(b).expect("reachable block");
        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while pos(a) > pos(b) {
                    a = idom[a.index()].expect("processed block");
                }
                while pos(b) > pos(a) {
                    b = idom[b.index()].expect("processed block");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom }
    }

    /// The immediate dominator of `b`: `None` for the entry block and for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// True when `a` dominates `b` (every block dominates itself).
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// True when `b` is covered by the tree (reachable from the entry).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::{BranchKind, Program};

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("f").unwrap()
    }

    fn dom_of(p: &Program) -> (Cfg, DomTree) {
        let cfg = Cfg::new(&p.functions[0]);
        let dom = DomTree::compute(&cfg);
        (cfg, dom)
    }

    #[test]
    fn diamond_join_is_dominated_by_the_fork_only() {
        // bb0 -> {bb1, bb2} -> bb3
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.jump(join);
        f.switch_to(e);
        f.jump(join);
        f.switch_to(join);
        f.ret(None);
        let p = build(f);
        let (_, dom) = dom_of(&p);

        assert_eq!(dom.idom(BlockId(0)), None, "entry has no idom");
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(
            dom.idom(BlockId(3)),
            Some(BlockId(0)),
            "join skips the arms"
        );
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)), "reflexive");
    }

    #[test]
    fn nested_loop_headers_dominate_their_latches() {
        // bb0 -> bb1 (outer header) -> bb2 (inner header) -> bb3 (inner
        // latch, branches back to bb2 or on to bb4) ; bb4 (outer latch)
        // branches back to bb1 or to bb5 (exit).
        let mut f = FunctionBuilder::new("f", 1);
        let outer = f.new_block();
        let inner = f.new_block();
        let inner_latch = f.new_block();
        let outer_latch = f.new_block();
        let exit = f.new_block();
        f.jump(outer);
        f.switch_to(outer);
        f.jump(inner);
        f.switch_to(inner);
        f.jump(inner_latch);
        f.switch_to(inner_latch);
        f.branch(f.param(0), inner, outer_latch, 1, BranchKind::LoopBack);
        f.switch_to(outer_latch);
        f.branch(f.param(0), outer, exit, 2, BranchKind::LoopBack);
        f.switch_to(exit);
        f.ret(None);
        let p = build(f);
        let (_, dom) = dom_of(&p);

        assert!(dom.dominates(outer, inner_latch));
        assert!(dom.dominates(inner, inner_latch));
        assert!(dom.dominates(outer, outer_latch));
        assert!(!dom.dominates(inner_latch, inner));
        assert_eq!(dom.idom(exit), Some(outer_latch));
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut f = FunctionBuilder::new("f", 0);
        let live = f.new_block();
        let dead = f.new_block();
        f.jump(live);
        f.switch_to(live);
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        let p = build(f);
        let (_, dom) = dom_of(&p);
        assert!(!dom.is_reachable(BlockId(2)));
        assert_eq!(dom.idom(BlockId(2)), None);
        assert!(!dom.dominates(BlockId(0), BlockId(2)));
    }
}
