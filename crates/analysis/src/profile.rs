//! Consistency checks for branch-profile data.
//!
//! Profiles flow through several representations — raw per-branch
//! counters, `!MF! IFPROB` directive files, and weighted combinations of
//! several runs — and each can be corrupted independently (truncated
//! files, hand-edited directives, buggy merges). The checks here accept
//! plain tuples so they can sit below the `ifprob` crate in the
//! dependency graph and be reused by it, by the lint driver, and by the
//! bench harness.

use std::collections::BTreeSet;
use std::fmt;

use trace_ir::{BranchId, Program};

/// One inconsistency found in profile data.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileIssue {
    /// A branch was recorded taken more often than it executed.
    TakenExceedsExecuted {
        /// The offending branch.
        branch: BranchId,
        /// Times the branch executed.
        executed: u64,
        /// Times it was recorded taken.
        taken: u64,
    },
    /// A counter refers to a branch id the program never registered.
    UnknownBranch {
        /// The unregistered branch id.
        branch: BranchId,
        /// Number of branch-info entries the program has.
        known: usize,
    },
    /// A weighted (combined) profile has a taken weight above its total.
    NonMonotoneWeight {
        /// The offending branch.
        branch: BranchId,
        /// Combined taken weight.
        taken: f64,
        /// Combined total weight.
        total: f64,
    },
    /// The same branch id appears more than once in one profile.
    DuplicateBranch {
        /// The repeated branch id.
        branch: BranchId,
    },
}

impl fmt::Display for ProfileIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileIssue::TakenExceedsExecuted {
                branch,
                executed,
                taken,
            } => write!(
                f,
                "{branch}: taken count {taken} exceeds execution count {executed}"
            ),
            ProfileIssue::UnknownBranch { branch, known } => write!(
                f,
                "{branch}: program registers only {known} branches (br0..br{})",
                known.saturating_sub(1)
            ),
            ProfileIssue::NonMonotoneWeight {
                branch,
                taken,
                total,
            } => write!(
                f,
                "{branch}: combined taken weight {taken} exceeds total weight {total}"
            ),
            ProfileIssue::DuplicateBranch { branch } => {
                write!(f, "{branch}: branch appears more than once in the profile")
            }
        }
    }
}

/// Checks raw `(branch, executed, taken)` counters for internal
/// consistency: `taken ≤ executed` and no duplicate branch ids.
pub fn check_entries(entries: &[(BranchId, u64, u64)]) -> Vec<ProfileIssue> {
    let mut issues = Vec::new();
    let mut seen = BTreeSet::new();
    for &(branch, executed, taken) in entries {
        if !seen.insert(branch) {
            issues.push(ProfileIssue::DuplicateBranch { branch });
        }
        if taken > executed {
            issues.push(ProfileIssue::TakenExceedsExecuted {
                branch,
                executed,
                taken,
            });
        }
    }
    issues
}

/// [`check_entries`] plus the program-relative check: every counter must
/// name a branch the program registered in its branch-info table.
pub fn check_against_program(
    program: &Program,
    entries: &[(BranchId, u64, u64)],
) -> Vec<ProfileIssue> {
    let known = program.branch_info.len();
    let mut issues = check_entries(entries);
    for &(branch, _, _) in entries {
        if branch.index() >= known {
            issues.push(ProfileIssue::UnknownBranch { branch, known });
        }
    }
    issues
}

/// Checks combined `(branch, taken_weight, total_weight)` rows: weights
/// must be finite, non-negative, and monotone (`taken ≤ total`, with a
/// relative epsilon for float roundoff).
pub fn check_weighted(rows: &[(BranchId, f64, f64)]) -> Vec<ProfileIssue> {
    let mut issues = Vec::new();
    let mut seen = BTreeSet::new();
    for &(branch, taken, total) in rows {
        if !seen.insert(branch) {
            issues.push(ProfileIssue::DuplicateBranch { branch });
        }
        let bad = !taken.is_finite()
            || !total.is_finite()
            || taken < 0.0
            || total < 0.0
            || taken > total * (1.0 + 1e-9) + 1e-9;
        if bad {
            issues.push(ProfileIssue::NonMonotoneWeight {
                branch,
                taken,
                total,
            });
        }
    }
    issues
}

/// How two profiles' branch-site sets differ.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteDiff {
    /// Branches present in the first profile but absent from the second.
    pub missing: Vec<BranchId>,
    /// Branches present in the second profile but absent from the first.
    pub extra: Vec<BranchId>,
}

impl fmt::Display for SiteDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render = |ids: &[BranchId]| {
            ids.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        match (self.missing.is_empty(), self.extra.is_empty()) {
            (false, true) => write!(f, "second profile lacks {}", render(&self.missing)),
            (true, false) => write!(f, "second profile adds {}", render(&self.extra)),
            _ => write!(
                f,
                "second profile lacks {} and adds {}",
                render(&self.missing),
                render(&self.extra)
            ),
        }
    }
}

/// Compares two branch-site sets; `None` when they agree. Order and
/// multiplicity of the inputs are irrelevant.
pub fn site_diff(first: &[BranchId], second: &[BranchId]) -> Option<SiteDiff> {
    let a: BTreeSet<BranchId> = first.iter().copied().collect();
    let b: BTreeSet<BranchId> = second.iter().copied().collect();
    if a == b {
        return None;
    }
    Some(SiteDiff {
        missing: a.difference(&b).copied().collect(),
        extra: b.difference(&a).copied().collect(),
    })
}

/// A parse failure in a raw profile file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawProfileError {
    /// 1-based line number of the malformed row.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for RawProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RawProfileError {}

/// Parses the raw counter format used by `mflint --profile`: one
/// `br<id> <executed> <taken>` row per line (the `br` prefix is
/// optional), `#` comments, blank lines ignored. Unlike directive files,
/// this format can represent corrupt counters, which is the point — it is
/// what the consistency checker is run against.
///
/// # Errors
///
/// Returns the first malformed row.
pub fn parse_raw_profile(text: &str) -> Result<Vec<(BranchId, u64, u64)>, RawProfileError> {
    let mut rows = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let err = |message: String| RawProfileError {
            line: i + 1,
            message,
        };
        let id_field = fields.next().expect("non-empty line has a first field");
        let id_digits = id_field.strip_prefix("br").unwrap_or(id_field);
        let id: u32 = id_digits
            .parse()
            .map_err(|_| err(format!("bad branch id `{id_field}`")))?;
        let executed: u64 = fields
            .next()
            .ok_or_else(|| err("missing execution count".to_string()))?
            .parse()
            .map_err(|_| err("bad execution count".to_string()))?;
        let taken: u64 = fields
            .next()
            .ok_or_else(|| err("missing taken count".to_string()))?
            .parse()
            .map_err(|_| err("bad taken count".to_string()))?;
        if let Some(junk) = fields.next() {
            return Err(err(format!("trailing field `{junk}`")));
        }
        rows.push((BranchId(id), executed, taken));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_entries_pass() {
        let entries = [
            (BranchId(0), 10, 4),
            (BranchId(1), 3, 3),
            (BranchId(2), 0, 0),
        ];
        assert!(check_entries(&entries).is_empty());
    }

    #[test]
    fn taken_above_executed_is_flagged() {
        let entries = [(BranchId(0), 5, 9)];
        let issues = check_entries(&entries);
        assert_eq!(
            issues,
            vec![ProfileIssue::TakenExceedsExecuted {
                branch: BranchId(0),
                executed: 5,
                taken: 9,
            }]
        );
        assert!(issues[0].to_string().contains("br0"));
    }

    #[test]
    fn duplicates_are_flagged() {
        let entries = [(BranchId(3), 1, 0), (BranchId(3), 2, 1)];
        let issues = check_entries(&entries);
        assert_eq!(
            issues,
            vec![ProfileIssue::DuplicateBranch {
                branch: BranchId(3)
            }]
        );
    }

    #[test]
    fn unknown_branches_need_a_program() {
        use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
        use trace_ir::BranchKind;
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 1);
        let t = f.new_block();
        let e = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.ret(None);
        f.switch_to(e);
        f.ret(None);
        pb.add_function(f.finish());
        let p = pb.finish("main").unwrap();
        assert_eq!(p.branch_info.len(), 1);

        let issues = check_against_program(&p, &[(BranchId(0), 4, 2), (BranchId(7), 1, 1)]);
        assert_eq!(
            issues,
            vec![ProfileIssue::UnknownBranch {
                branch: BranchId(7),
                known: 1,
            }]
        );
    }

    #[test]
    fn weighted_monotonicity() {
        let ok = [(BranchId(0), 2.5, 5.0), (BranchId(1), 5.0, 5.0)];
        assert!(check_weighted(&ok).is_empty());
        let bad = [(BranchId(0), 5.1, 5.0)];
        assert_eq!(check_weighted(&bad).len(), 1);
        let nan = [(BranchId(0), f64::NAN, 5.0)];
        assert_eq!(check_weighted(&nan).len(), 1);
        // Float roundoff within epsilon is tolerated.
        let round = [(BranchId(0), 0.1 + 0.2, 0.3)];
        assert!(check_weighted(&round).is_empty());
    }

    #[test]
    fn site_diff_reports_both_directions() {
        let a = [BranchId(0), BranchId(1), BranchId(2)];
        let b = [BranchId(1), BranchId(3)];
        let d = site_diff(&a, &b).unwrap();
        assert_eq!(d.missing, vec![BranchId(0), BranchId(2)]);
        assert_eq!(d.extra, vec![BranchId(3)]);
        assert!(site_diff(&a, &a).is_none());
        let shuffled = [BranchId(2), BranchId(0), BranchId(1), BranchId(0)];
        assert!(
            site_diff(&a, &shuffled).is_none(),
            "order/multiplicity ignored"
        );
    }

    #[test]
    fn raw_profile_round_trip() {
        let text = "# comment\n\nbr0 10 4\n1 3 3   # trailing comment\n";
        let rows = parse_raw_profile(text).unwrap();
        assert_eq!(rows, vec![(BranchId(0), 10, 4), (BranchId(1), 3, 3)]);

        let err = parse_raw_profile("br0 10").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("missing taken count"));
        assert!(parse_raw_profile("brX 1 1").is_err());
        assert!(parse_raw_profile("br0 1 1 9").is_err());
    }
}
