//! Natural-loop forest: back edges, loop bodies, nesting, and
//! irreducibility detection.
//!
//! A *back edge* is an edge `latch → header` whose target dominates its
//! source; the natural loop of a header is the header plus every block
//! that reaches a latch without passing through the header. An edge that
//! goes backward in reverse postorder but whose target does **not**
//! dominate its source makes the CFG irreducible — the loop structure is
//! then not fully described by natural loops, and consumers (like the
//! BTFN predictor) should treat such regions conservatively.

use trace_ir::BlockId;

use crate::cfg::Cfg;
use crate::dom::DomTree;

/// One natural loop (all back edges sharing a header are merged).
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Sources of the back edges into the header.
    pub latches: Vec<BlockId>,
    /// Every block in the loop, sorted by index; includes the header.
    pub blocks: Vec<BlockId>,
    /// Index (in [`LoopForest::loops`]) of the innermost enclosing loop.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: u32,
}

impl NaturalLoop {
    /// True when `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// All natural loops of one function, with nesting resolved.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// The loops, ordered by header reverse-postorder position (outer
    /// loops before the loops they contain).
    pub loops: Vec<NaturalLoop>,
    /// Retreating edges whose target does not dominate their source —
    /// non-empty exactly when the CFG is irreducible.
    pub irreducible_edges: Vec<(BlockId, BlockId)>,
    back_edges: Vec<(BlockId, BlockId)>,
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Computes the loop forest from a CFG and its dominator tree.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> Self {
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        let mut irreducible_edges: Vec<(BlockId, BlockId)> = Vec::new();
        for &u in cfg.rpo() {
            let u_pos = cfg.rpo_pos(u).expect("rpo block");
            for &v in cfg.succs(u) {
                let Some(v_pos) = cfg.rpo_pos(v) else {
                    continue;
                };
                if v_pos > u_pos {
                    continue; // forward edge
                }
                if dom.dominates(v, u) {
                    if !back_edges.contains(&(u, v)) {
                        back_edges.push((u, v));
                    }
                } else if !irreducible_edges.contains(&(u, v)) {
                    irreducible_edges.push((u, v));
                }
            }
        }

        // Group back edges by header, in header-rpo order, and grow each
        // loop body backward from its latches.
        let mut headers: Vec<BlockId> = back_edges.iter().map(|&(_, h)| h).collect();
        headers.sort_by_key(|&h| cfg.rpo_pos(h));
        headers.dedup();
        let mut loops: Vec<NaturalLoop> = Vec::with_capacity(headers.len());
        for header in headers {
            let latches: Vec<BlockId> = back_edges
                .iter()
                .filter(|&&(_, h)| h == header)
                .map(|&(l, _)| l)
                .collect();
            let mut in_body = vec![false; cfg.len()];
            in_body[header.index()] = true;
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if in_body[b.index()] {
                    continue;
                }
                in_body[b.index()] = true;
                for &p in cfg.preds(b) {
                    if !in_body[p.index()] && cfg.is_reachable(p) {
                        work.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..cfg.len())
                .filter(|&i| in_body[i])
                .map(BlockId::from_index)
                .collect();
            loops.push(NaturalLoop {
                header,
                latches,
                blocks,
                parent: None,
                depth: 1,
            });
        }

        // Nesting: the parent of a loop is the smallest other loop that
        // contains its header. Headers are in rpo order, so parents come
        // before children and depths resolve in one pass.
        for i in 0..loops.len() {
            let mut parent: Option<usize> = None;
            for (j, candidate) in loops.iter().enumerate() {
                if i == j || !candidate.contains(loops[i].header) {
                    continue;
                }
                if parent.is_none_or(|p| candidate.blocks.len() < loops[p].blocks.len()) {
                    parent = Some(j);
                }
            }
            loops[i].parent = parent;
            loops[i].depth = match parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }

        // Innermost loop per block: the containing loop with the fewest
        // blocks.
        let mut innermost: Vec<Option<usize>> = vec![None; cfg.len()];
        for (slot, inner) in innermost.iter_mut().enumerate() {
            let b = BlockId::from_index(slot);
            for (j, l) in loops.iter().enumerate() {
                if l.contains(b)
                    && inner.is_none_or(|c: usize| l.blocks.len() < loops[c].blocks.len())
                {
                    *inner = Some(j);
                }
            }
        }

        LoopForest {
            loops,
            irreducible_edges,
            back_edges,
            innermost,
        }
    }

    /// True when `from → to` is a back edge (target dominates source).
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.back_edges.contains(&(from, to))
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.innermost[b.index()].map(|i| &self.loops[i])
    }

    /// Loop-nesting depth of `b` (0 outside any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.innermost(b).map_or(0, |l| l.depth)
    }

    /// True when any retreating edge fails the dominance test.
    pub fn is_irreducible(&self) -> bool {
        !self.irreducible_edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::{BranchKind, Program};

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("f").unwrap()
    }

    fn forest(p: &Program) -> LoopForest {
        let cfg = Cfg::new(&p.functions[0]);
        let dom = DomTree::compute(&cfg);
        LoopForest::compute(&cfg, &dom)
    }

    #[test]
    fn diamond_has_no_loops() {
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.jump(join);
        f.switch_to(e);
        f.jump(join);
        f.switch_to(join);
        f.ret(None);
        let forest = forest(&build(f));
        assert!(forest.loops.is_empty());
        assert!(!forest.is_irreducible());
        assert_eq!(forest.depth(BlockId(3)), 0);
    }

    #[test]
    fn nested_loops_nest_in_the_forest() {
        // entry -> outer header -> inner header -> inner latch -> outer
        // latch -> exit, with back edges inner_latch->inner and
        // outer_latch->outer.
        let mut f = FunctionBuilder::new("f", 1);
        let outer = f.new_block();
        let inner = f.new_block();
        let inner_latch = f.new_block();
        let outer_latch = f.new_block();
        let exit = f.new_block();
        f.jump(outer);
        f.switch_to(outer);
        f.jump(inner);
        f.switch_to(inner);
        f.jump(inner_latch);
        f.switch_to(inner_latch);
        f.branch(f.param(0), inner, outer_latch, 1, BranchKind::LoopBack);
        f.switch_to(outer_latch);
        f.branch(f.param(0), outer, exit, 2, BranchKind::LoopBack);
        f.switch_to(exit);
        f.ret(None);
        let forest = forest(&build(f));

        assert_eq!(forest.loops.len(), 2);
        let outer_loop = &forest.loops[0];
        let inner_loop = &forest.loops[1];
        assert_eq!(outer_loop.header, outer);
        assert_eq!(inner_loop.header, inner);
        assert_eq!(outer_loop.depth, 1);
        assert_eq!(inner_loop.depth, 2);
        assert_eq!(inner_loop.parent, Some(0));
        assert!(outer_loop.contains(inner));
        assert!(outer_loop.contains(outer_latch));
        assert!(!outer_loop.contains(exit));
        assert!(inner_loop.contains(inner_latch));
        assert!(!inner_loop.contains(outer_latch));

        assert!(forest.is_back_edge(inner_latch, inner));
        assert!(forest.is_back_edge(outer_latch, outer));
        assert!(!forest.is_back_edge(outer, inner));
        assert_eq!(forest.depth(inner_latch), 2);
        assert_eq!(forest.depth(outer_latch), 1);
        assert_eq!(forest.depth(exit), 0);
        assert!(!forest.is_irreducible());
    }

    #[test]
    fn self_loop_is_a_one_block_loop() {
        let mut f = FunctionBuilder::new("f", 1);
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(body);
        f.switch_to(body);
        f.branch(f.param(0), body, exit, 1, BranchKind::LoopBack);
        f.switch_to(exit);
        f.ret(None);
        let forest = forest(&build(f));
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].blocks, vec![body]);
        assert!(forest.is_back_edge(body, body));
    }

    #[test]
    fn two_entry_cycle_is_irreducible() {
        // entry branches to both a and b; a -> b and b -> a form a cycle
        // with two entries — the classic irreducible region.
        let mut f = FunctionBuilder::new("f", 1);
        let a = f.new_block();
        let b = f.new_block();
        f.branch(f.param(0), a, b, 1, BranchKind::If);
        f.switch_to(a);
        f.jump(b);
        f.switch_to(b);
        f.jump(a);
        let forest = forest(&build(f));
        assert!(forest.is_irreducible());
        assert!(
            forest.loops.is_empty(),
            "no natural loop: neither cycle block dominates the other"
        );
        assert_eq!(forest.irreducible_edges.len(), 1);
    }
}
