//! Semantic verifier: dataflow-backed diagnostics layered on top of the
//! IR's structural `Program::validate`.
//!
//! Structural validation guarantees that every reference resolves; the
//! verifier checks properties that need analysis to decide — reads of
//! registers no definition is guaranteed to reach, stores whose value can
//! never be observed, blocks no path executes, and degenerate control
//! transfers. The optimizer's `verify_each` mode runs these checks
//! between passes to attribute any regression to the pass that
//! introduced it.

use std::fmt;

use trace_ir::{BlockId, FuncId, Program, Terminator};

use crate::cfg::Cfg;
use crate::dataflow::{liveness, uninitialized_uses, BitSet};

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but semantics-preserving (dead store, unreachable
    /// block). Optimization passes are expected to *remove* these, and
    /// lowered-but-unoptimized code may legitimately contain them.
    Warning,
    /// A semantic defect: executing the program may observe garbage or
    /// the IR breaks a structural invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One verifier finding, locatable down to the instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (`use-before-def`, `dead-store`,
    /// `unreachable-block`, `degenerate-branch`, `empty-jump-table`,
    /// `invalid-structure`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The function the finding is in, if attributable.
    pub func: Option<String>,
    /// The block, if attributable.
    pub block: Option<BlockId>,
    /// The instruction index within the block; `None` with a `block`
    /// means the finding is on the terminator.
    pub instr: Option<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(func) = &self.func {
            write!(f, "\n  --> fn {func}")?;
            if let Some(block) = self.block {
                write!(f, ", {block}")?;
                match self.instr {
                    Some(i) => write!(f, ", instr {i}")?,
                    None => write!(f, ", terminator")?,
                }
            }
        }
        Ok(())
    }
}

/// True when no diagnostic in `diags` is an [`Severity::Error`].
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    !diags.iter().any(|d| d.severity == Severity::Error)
}

/// Runs the semantic checks over one function.
///
/// `func_id` selects the function inside `program`; the program is needed
/// for its name table only. Assumes the program already passed structural
/// validation — out-of-range references may panic here.
pub fn verify_function(program: &Program, func_id: FuncId) -> Vec<Diagnostic> {
    let func = &program.functions[func_id.index()];
    let mut diags = Vec::new();

    // Use-before-def: a read no definition is guaranteed to reach. The VM
    // would hand such a read a default value, silently diverging from
    // source semantics, so this is an error.
    for u in uninitialized_uses(func) {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "use-before-def",
            message: format!("{} is read before any definition reaches it", u.reg),
            func: Some(func.name.clone()),
            block: Some(u.block),
            instr: u.instr,
        });
    }

    let cfg = Cfg::new(func);

    // Unreachable blocks: no path from the entry executes them.
    for (bi, _) in func.iter_blocks() {
        if !cfg.is_reachable(bi) {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "unreachable-block",
                message: format!("{bi} is unreachable from the entry block"),
                func: Some(func.name.clone()),
                block: Some(bi),
                instr: None,
            });
        }
    }

    // Dead stores: side-effect-free definitions whose value no later use
    // can observe. Backward scan per reachable block from live-out.
    let live = liveness(func, &cfg);
    for &bi in cfg.rpo() {
        let block = &func.blocks[bi.index()];
        let mut live_now: BitSet = live.live_out[bi.index()].clone();
        block.term.for_each_use(|r| {
            live_now.insert(r.index());
        });
        for (ii, instr) in block.instrs.iter().enumerate().rev() {
            if let Some(dst) = instr.dst() {
                if !live_now.contains(dst.index()) && !instr.has_side_effects() {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "dead-store",
                        message: format!("{dst} is written but never read"),
                        func: Some(func.name.clone()),
                        block: Some(bi),
                        instr: Some(ii),
                    });
                }
                live_now.remove(dst.index());
            }
            instr.for_each_use(|r| {
                live_now.insert(r.index());
            });
        }
    }

    // Terminator invariants.
    for (bi, block) in func.iter_blocks() {
        match &block.term {
            Terminator::Branch {
                taken, not_taken, ..
            } if taken == not_taken => {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "degenerate-branch",
                    message: format!("both branch targets are {taken}; should be a jump"),
                    func: Some(func.name.clone()),
                    block: Some(bi),
                    instr: None,
                });
            }
            Terminator::JumpTable { targets, .. } if targets.is_empty() => {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "empty-jump-table",
                    message: "jump table has no targets; should be a jump to the default"
                        .to_string(),
                    func: Some(func.name.clone()),
                    block: Some(bi),
                    instr: None,
                });
            }
            _ => {}
        }
    }

    diags
}

/// Runs structural validation and then the semantic checks over every
/// function of `program`.
///
/// A structural failure produces a single `invalid-structure` error and
/// short-circuits — the dataflow analyses assume resolvable references.
pub fn verify_program(program: &Program) -> Vec<Diagnostic> {
    if let Err(e) = program.validate() {
        return vec![Diagnostic {
            severity: Severity::Error,
            code: "invalid-structure",
            message: e.to_string(),
            func: None,
            block: None,
            instr: None,
        }];
    }
    let mut diags = Vec::new();
    for i in 0..program.functions.len() {
        diags.extend(verify_function(program, FuncId::from_index(i)));
    }
    diags
}

/// FNV-1a offset basis — the digest of a diagnostic-free program.
pub const CLEAN_DIGEST: u64 = 0xcbf2_9ce4_8422_2325;

/// A stable fingerprint of a program's verification result: FNV-1a over
/// the rendered diagnostics. [`CLEAN_DIGEST`] for a clean program; equal
/// digests mean equal findings, so the harness can cache-compare
/// verification outcomes across runs.
pub fn verify_digest(program: &Program) -> u64 {
    let mut hash = CLEAN_DIGEST;
    for d in verify_program(program) {
        for byte in d.to_string().bytes().chain([b'\n']) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::BranchKind;

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("f").unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_straight_line_function_verifies() {
        let mut f = FunctionBuilder::new("f", 1);
        f.emit_value(f.param(0));
        f.ret(None);
        let p = build(f);
        let diags = verify_program(&p);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert!(is_clean(&diags));
        assert_eq!(verify_digest(&p), CLEAN_DIGEST);
    }

    #[test]
    fn catches_use_before_def_on_one_path() {
        // x is initialized only in the true arm but read at the join.
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        let x = f.new_reg();
        let one = f.const_int(1);
        f.mov_to(x, one);
        f.jump(join);
        f.switch_to(e);
        f.jump(join);
        f.switch_to(join);
        f.emit_value(x);
        f.ret(None);
        let p = build(f);
        let diags = verify_program(&p);
        assert!(!is_clean(&diags));
        let ubd: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "use-before-def")
            .collect();
        assert_eq!(ubd.len(), 1);
        assert_eq!(ubd[0].severity, Severity::Error);
        assert_eq!(ubd[0].block, Some(BlockId(3)));
        assert_eq!(ubd[0].instr, Some(0));
        let rendered = ubd[0].to_string();
        assert!(rendered.contains("error[use-before-def]"), "{rendered}");
        assert!(rendered.contains("fn f, bb3, instr 0"), "{rendered}");
        assert_ne!(verify_digest(&p), CLEAN_DIGEST);
    }

    #[test]
    fn warns_on_dead_store_and_unreachable_block() {
        let mut f = FunctionBuilder::new("f", 1);
        let x = f.const_int(5); // never read
        let dead = f.new_block();
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        let p = build(f);
        let diags = verify_program(&p);
        assert!(is_clean(&diags), "warnings only: {diags:?}");
        assert!(codes(&diags).contains(&"dead-store"));
        assert!(codes(&diags).contains(&"unreachable-block"));
        let ds = diags.iter().find(|d| d.code == "dead-store").unwrap();
        assert!(ds.message.contains(&x.to_string()));
    }

    #[test]
    fn warns_on_degenerate_branch() {
        let mut f = FunctionBuilder::new("f", 1);
        let next = f.new_block();
        f.branch(f.param(0), next, next, 1, BranchKind::If);
        f.switch_to(next);
        f.ret(None);
        let p = build(f);
        let diags = verify_program(&p);
        assert!(is_clean(&diags));
        assert!(codes(&diags).contains(&"degenerate-branch"));
    }

    #[test]
    fn invalid_structure_short_circuits() {
        // Build by hand with an out-of-range register.
        let mut p = build({
            let mut f = FunctionBuilder::new("f", 0);
            f.ret(None);
            f
        });
        p.functions[0].blocks[0].instrs.push(trace_ir::Instr::Emit {
            src: trace_ir::Reg(99),
        });
        let diags = verify_program(&p);
        assert_eq!(codes(&diags), vec!["invalid-structure"]);
        assert!(!is_clean(&diags));
    }

    #[test]
    fn compiled_programs_have_no_errors() {
        let src = "fn main(n: int) {\n\
                   var acc: int = 0;\n\
                   for (var i: int = 0; i < n; i = i + 1) {\n\
                   if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }\n\
                   }\n\
                   emit(acc);\n\
                   }\n";
        let p = mflang::compile(src).expect("compiles");
        let diags = verify_program(&p);
        assert!(
            is_clean(&diags),
            "lowered code must be error-free: {diags:?}"
        );
    }
}
