#![warn(missing_docs)]

//! # mfcheck
//!
//! A static-analysis framework over `trace-ir`, plus the checkers built
//! on it. The crate deliberately depends on nothing but the IR so every
//! other layer — the optimizer, the predictors, the profile store, the
//! bench harness, and the `mflint` driver — can reuse one set of
//! analyses instead of growing private ad-hoc copies.
//!
//! Three layers:
//!
//! * **Analyses** — [`Cfg`] (predecessor/successor views and reverse
//!   postorder), [`DomTree`] (Cooper–Harvey–Kennedy dominators),
//!   [`LoopForest`] (natural loops, nesting, irreducibility), and a
//!   gen/kill bitset dataflow [`engine`] instantiated as [`liveness`],
//!   [`reaching_defs`], and [`definite_init`].
//! * **Semantic verifier** — [`verify_program`] layers dataflow-backed
//!   diagnostics (use-before-def, dead stores, unreachable blocks,
//!   degenerate terminators) on top of the IR's structural validation,
//!   each locatable to function/block/instruction. The optimizer's
//!   `verify_each` mode runs it between passes to attribute regressions
//!   to the pass that introduced them.
//! * **Profile checks** — [`check_entries`] / [`check_against_program`] /
//!   [`check_weighted`] validate branch-counter databases (`taken ≤
//!   executed`, known branch ids, monotone combined weights), and
//!   [`site_diff`] explains how two profiles' branch-site sets disagree.

mod cfg;
mod dataflow;
mod dom;
mod loops;
mod profile;
mod verify;

pub use cfg::{reachable_blocks, single_def_consts, Cfg};
pub use dataflow::{
    all_uses_initialized, definite_init, liveness, reaching_defs, solve, uninitialized_uses,
    BitSet, DefSite, DefiniteInit, Direction, GenKill, Liveness, Meet, ReachingDefs, Solution,
    UninitUse,
};
pub use dom::DomTree;
pub use loops::{LoopForest, NaturalLoop};
pub use profile::{
    check_against_program, check_entries, check_weighted, parse_raw_profile, site_diff,
    ProfileIssue, RawProfileError, SiteDiff,
};
pub use verify::{
    is_clean, verify_digest, verify_function, verify_program, Diagnostic, Severity, CLEAN_DIGEST,
};

/// Re-export of the dataflow module for callers that want the engine
/// itself rather than the packaged analyses.
pub mod engine {
    pub use crate::dataflow::*;
}
