//! Control-flow graph with predecessor/successor views and a reverse
//! postorder, the substrate every other analysis builds on.

use std::collections::HashMap;

use trace_ir::{BlockId, Function, Instr, Reg, Value};

/// A function's control-flow graph.
///
/// Successor lists preserve the terminator's edge multiplicity (a jump
/// table may target one block several times); predecessor lists mirror
/// them. The reverse postorder covers only blocks reachable from the
/// entry (block 0).
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_pos: Vec<usize>,
}

/// Marker for "not in the reverse postorder" (unreachable block).
const UNREACHED: usize = usize::MAX;

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, block) in func.blocks.iter().enumerate() {
            block.term.for_each_successor(|s| {
                succs[i].push(s);
                preds[s.index()].push(BlockId::from_index(i));
            });
        }

        // Iterative depth-first search from the entry; postorder is
        // collected as each block's successor list is exhausted.
        let mut postorder: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        if n > 0 {
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            visited[0] = true;
            while let Some(&(block, next)) = stack.last() {
                if let Some(&succ) = succs[block].get(next) {
                    stack.last_mut().expect("non-empty stack").1 += 1;
                    if !visited[succ.index()] {
                        visited[succ.index()] = true;
                        stack.push((succ.index(), 0));
                    }
                } else {
                    postorder.push(BlockId::from_index(block));
                    stack.pop();
                }
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_pos = vec![UNREACHED; n];
        for (pos, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = pos;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
        }
    }

    /// Number of blocks (reachable or not).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True for a function with no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`, with edge multiplicity.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`, with edge multiplicity.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, or `None` if unreachable.
    pub fn rpo_pos(&self, b: BlockId) -> Option<usize> {
        match self.rpo_pos[b.index()] {
            UNREACHED => None,
            pos => Some(pos),
        }
    }

    /// True when `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != UNREACHED
    }
}

/// The set of blocks reachable from the entry block, as a bitmask over
/// block indices. (The optimizer's historical helper; equivalent to
/// [`Cfg::is_reachable`] without materializing edge lists.)
pub fn reachable_blocks(func: &Function) -> Vec<bool> {
    let mut seen = vec![false; func.blocks.len()];
    if seen.is_empty() {
        return seen;
    }
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        func.blocks[b].term.for_each_successor(|s| {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s.index());
            }
        });
    }
    seen
}

/// Registers with exactly one static definition, where that definition is a
/// `Const`. Such registers hold the same value at every (post-definition)
/// use, so their value can be folded into consumers.
///
/// The analysis is only sound when no use of a register executes before its
/// definition; hand-built IR that reads a register "uninitialized" would
/// observe zero instead of the constant. Callers must establish that
/// property first — [`crate::uninitialized_uses`] decides it, and
/// `mfopt::fold_constants` refuses to fold functions that fail it.
pub fn single_def_consts(func: &Function) -> HashMap<Reg, Value> {
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    let mut const_def: HashMap<Reg, Value> = HashMap::new();
    // Parameters are defined at entry.
    for p in 0..func.num_params {
        def_count.insert(Reg(p), 1);
    }
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(dst) = instr.dst() {
                *def_count.entry(dst).or_insert(0) += 1;
                if let Instr::Const { value, .. } = instr {
                    const_def.insert(dst, *value);
                }
            }
        }
    }
    const_def.retain(|reg, _| def_count.get(reg) == Some(&1));
    const_def
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::{BinOp, BranchKind, Program};

    pub(crate) fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("f").unwrap()
    }

    #[test]
    fn diamond_edges_and_rpo() {
        // bb0 -> {bb1, bb2} -> bb3
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.jump(join);
        f.switch_to(e);
        f.jump(join);
        f.switch_to(join);
        f.ret(None);
        let p = build(f);
        let cfg = Cfg::new(&p.functions[0]);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 4);
        assert_eq!(cfg.rpo_pos(BlockId(0)), Some(0));
        // The join must come after both arms in reverse postorder.
        assert!(cfg.rpo_pos(BlockId(3)) > cfg.rpo_pos(BlockId(1)));
        assert!(cfg.rpo_pos(BlockId(3)) > cfg.rpo_pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_are_outside_the_rpo() {
        let mut f = FunctionBuilder::new("f", 0);
        let live = f.new_block();
        let dead = f.new_block();
        f.jump(live);
        f.switch_to(live);
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        let p = build(f);
        let cfg = Cfg::new(&p.functions[0]);
        assert!(cfg.is_reachable(BlockId(1)));
        assert!(!cfg.is_reachable(BlockId(2)));
        assert_eq!(cfg.rpo_pos(BlockId(2)), None);
        assert_eq!(reachable_blocks(&p.functions[0]), vec![true, true, false]);
    }

    #[test]
    fn finds_single_def_consts() {
        let mut f = FunctionBuilder::new("f", 1);
        let a = f.const_int(5);
        let b = f.const_int(7);
        let _sum = f.binop(BinOp::Add, a, b);
        // Redefine b: no longer single-def.
        f.mov_to(b, a);
        f.ret(None);
        let p = build(f);
        let consts = single_def_consts(&p.functions[0]);
        assert_eq!(consts.get(&a), Some(&Value::Int(5)));
        assert_eq!(consts.get(&b), None);
    }

    #[test]
    fn params_are_never_consts() {
        let mut f = FunctionBuilder::new("f", 1);
        let p0 = f.param(0);
        let c = f.const_int(1);
        let _x = f.binop(BinOp::Add, p0, c);
        f.ret(None);
        let p = build(f);
        let consts = single_def_consts(&p.functions[0]);
        assert!(!consts.contains_key(&p0));
    }
}
