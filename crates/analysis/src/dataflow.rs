//! A small forward/backward bitset dataflow engine, instantiated as
//! liveness, reaching definitions, and definite initialization.

use trace_ir::{BlockId, Function, Reg};

use crate::cfg::Cfg;

// --------------------------------------------------------------------
// Bit sets
// --------------------------------------------------------------------

/// A fixed-universe bit set backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` elements.
    pub fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.mask_tail();
        s
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self −= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates set members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

// --------------------------------------------------------------------
// The engine
// --------------------------------------------------------------------

/// Which way facts flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// How facts from several edges meet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Meet {
    /// May-analysis: a fact holds if it holds on *any* incoming edge.
    Union,
    /// Must-analysis: a fact holds only if it holds on *every* incoming
    /// edge.
    Intersect,
}

/// Per-block transfer function in gen/kill form:
/// `out = gen ∪ (in − kill)`.
#[derive(Clone, Debug)]
pub struct GenKill {
    /// Facts the block creates.
    pub gen: BitSet,
    /// Facts the block destroys.
    pub kill: BitSet,
}

/// The fixpoint: per-block fact sets at block entry and exit (in the
/// direction of flow: for backward problems `block_in` is still the set
/// at the block's *start*).
#[derive(Clone, Debug)]
pub struct Solution {
    /// Facts holding at each block's start.
    pub block_in: Vec<BitSet>,
    /// Facts holding at each block's end.
    pub block_out: Vec<BitSet>,
}

/// Solves a gen/kill dataflow problem over `cfg` to a fixpoint.
///
/// `boundary` is the fact set at the flow entry (the CFG entry block for
/// forward problems, every exit block for backward ones). Unreachable
/// blocks are skipped; their sets stay at the meet's neutral value (empty
/// for [`Meet::Union`], full for [`Meet::Intersect`]).
pub fn solve(
    cfg: &Cfg,
    direction: Direction,
    meet: Meet,
    transfer: &[GenKill],
    boundary: &BitSet,
) -> Solution {
    let n = cfg.len();
    let universe = boundary.len();
    let top = || match meet {
        Meet::Union => BitSet::empty(universe),
        Meet::Intersect => BitSet::full(universe),
    };
    let mut block_in: Vec<BitSet> = (0..n).map(|_| top()).collect();
    let mut block_out: Vec<BitSet> = (0..n).map(|_| top()).collect();

    // Iteration order: reverse postorder for forward problems, postorder
    // for backward ones — facts usually settle in a couple of sweeps.
    let order: Vec<BlockId> = match direction {
        Direction::Forward => cfg.rpo().to_vec(),
        Direction::Backward => cfg.rpo().iter().rev().copied().collect(),
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let i = b.index();
            // Meet over flow predecessors.
            let edges: &[BlockId] = match direction {
                Direction::Forward => cfg.preds(b),
                Direction::Backward => cfg.succs(b),
            };
            let mut meet_val: Option<BitSet> = None;
            for &e in edges {
                if !cfg.is_reachable(e) {
                    continue;
                }
                let incoming = match direction {
                    Direction::Forward => &block_out[e.index()],
                    Direction::Backward => &block_in[e.index()],
                };
                match &mut meet_val {
                    None => meet_val = Some(incoming.clone()),
                    Some(acc) => {
                        match meet {
                            Meet::Union => acc.union_with(incoming),
                            Meet::Intersect => acc.intersect_with(incoming),
                        };
                    }
                }
            }
            let is_boundary = match direction {
                Direction::Forward => cfg.rpo().first() == Some(&b),
                Direction::Backward => cfg.succs(b).is_empty(),
            };
            let mut entry = match (is_boundary, meet_val) {
                (true, _) => boundary.clone(),
                (false, Some(v)) => v,
                (false, None) => top(),
            };
            let (in_slot, out_slot) = match direction {
                Direction::Forward => (&mut block_in[i], &mut block_out[i]),
                Direction::Backward => (&mut block_out[i], &mut block_in[i]),
            };
            if *in_slot != entry {
                changed = true;
                in_slot.clone_from(&entry);
            }
            // out = gen ∪ (in − kill)
            entry.subtract(&transfer[i].kill);
            entry.union_with(&transfer[i].gen);
            if *out_slot != entry {
                changed = true;
                *out_slot = entry;
            }
        }
    }
    Solution {
        block_in,
        block_out,
    }
}

// --------------------------------------------------------------------
// Liveness
// --------------------------------------------------------------------

/// Live registers at block boundaries (backward may-analysis).
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live at each block's start.
    pub live_in: Vec<BitSet>,
    /// Registers live at each block's end.
    pub live_out: Vec<BitSet>,
}

/// Computes register liveness for `func`.
pub fn liveness(func: &Function, cfg: &Cfg) -> Liveness {
    let regs = func.num_regs as usize;
    let transfer: Vec<GenKill> = func
        .blocks
        .iter()
        .map(|block| {
            // gen: upward-exposed uses; kill: definitions.
            let mut gen = BitSet::empty(regs);
            let mut kill = BitSet::empty(regs);
            for instr in &block.instrs {
                instr.for_each_use(|r| {
                    if !kill.contains(r.index()) {
                        gen.insert(r.index());
                    }
                });
                if let Some(dst) = instr.dst() {
                    kill.insert(dst.index());
                }
            }
            block.term.for_each_use(|r| {
                if !kill.contains(r.index()) {
                    gen.insert(r.index());
                }
            });
            GenKill { gen, kill }
        })
        .collect();
    let boundary = BitSet::empty(regs);
    let s = solve(cfg, Direction::Backward, Meet::Union, &transfer, &boundary);
    Liveness {
        live_in: s.block_in,
        live_out: s.block_out,
    }
}

// --------------------------------------------------------------------
// Reaching definitions
// --------------------------------------------------------------------

/// One definition site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefSite {
    /// A parameter, defined at function entry.
    Param(Reg),
    /// `instrs[instr]` of `block` writes `reg`.
    Instr {
        /// The defining block.
        block: BlockId,
        /// Index into the block's instruction list.
        instr: usize,
        /// The register written.
        reg: Reg,
    },
}

impl DefSite {
    /// The register this site defines.
    pub fn reg(&self) -> Reg {
        match *self {
            DefSite::Param(r) => r,
            DefSite::Instr { reg, .. } => reg,
        }
    }
}

/// Reaching definitions (forward may-analysis over definition sites).
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// All definition sites; bit `i` in the sets refers to `sites[i]`.
    pub sites: Vec<DefSite>,
    /// Sites reaching each block's start.
    pub reach_in: Vec<BitSet>,
    /// Sites reaching each block's end.
    pub reach_out: Vec<BitSet>,
}

/// Computes reaching definitions for `func`.
pub fn reaching_defs(func: &Function, cfg: &Cfg) -> ReachingDefs {
    let mut sites: Vec<DefSite> = (0..func.num_params)
        .map(|p| DefSite::Param(Reg(p)))
        .collect();
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, instr) in block.instrs.iter().enumerate() {
            if let Some(dst) = instr.dst() {
                sites.push(DefSite::Instr {
                    block: BlockId::from_index(bi),
                    instr: ii,
                    reg: dst,
                });
            }
        }
    }
    let universe = sites.len();
    // sites_of[r] = bitset of sites defining register r.
    let regs = func.num_regs as usize;
    let mut sites_of: Vec<BitSet> = (0..regs).map(|_| BitSet::empty(universe)).collect();
    for (i, site) in sites.iter().enumerate() {
        sites_of[site.reg().index()].insert(i);
    }

    let transfer: Vec<GenKill> = func
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, block)| {
            let mut gen = BitSet::empty(universe);
            let mut kill = BitSet::empty(universe);
            let mut site_index = sites
                .iter()
                .position(|s| matches!(s, DefSite::Instr { block, .. } if block.index() == bi));
            for instr in &block.instrs {
                if let Some(dst) = instr.dst() {
                    let i = site_index.expect("a def site exists for every def");
                    // A later def of the same register supersedes this one.
                    gen.subtract(&sites_of[dst.index()]);
                    kill.union_with(&sites_of[dst.index()]);
                    gen.insert(i);
                    kill.remove(i);
                    site_index = Some(i + 1);
                }
            }
            GenKill { gen, kill }
        })
        .collect();

    let mut boundary = BitSet::empty(universe);
    for i in 0..func.num_params as usize {
        boundary.insert(i);
    }
    let s = solve(cfg, Direction::Forward, Meet::Union, &transfer, &boundary);
    ReachingDefs {
        sites,
        reach_in: s.block_in,
        reach_out: s.block_out,
    }
}

// --------------------------------------------------------------------
// Definite initialization
// --------------------------------------------------------------------

/// Registers definitely initialized at block boundaries (forward
/// must-analysis). Parameters are initialized at entry.
#[derive(Clone, Debug)]
pub struct DefiniteInit {
    /// Registers definitely initialized at each block's start.
    pub init_in: Vec<BitSet>,
}

/// Computes definite initialization for `func`.
pub fn definite_init(func: &Function, cfg: &Cfg) -> DefiniteInit {
    let regs = func.num_regs as usize;
    let transfer: Vec<GenKill> = func
        .blocks
        .iter()
        .map(|block| {
            let mut gen = BitSet::empty(regs);
            for instr in &block.instrs {
                if let Some(dst) = instr.dst() {
                    gen.insert(dst.index());
                }
            }
            GenKill {
                gen,
                kill: BitSet::empty(regs),
            }
        })
        .collect();
    let mut boundary = BitSet::empty(regs);
    for p in 0..func.num_params as usize {
        boundary.insert(p);
    }
    let s = solve(
        cfg,
        Direction::Forward,
        Meet::Intersect,
        &transfer,
        &boundary,
    );
    DefiniteInit {
        init_in: s.block_in,
    }
}

/// A read of a register no definition is guaranteed to have reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UninitUse {
    /// The block containing the read.
    pub block: BlockId,
    /// Instruction index, or `None` when the terminator reads the register.
    pub instr: Option<usize>,
    /// The register read before initialization.
    pub reg: Reg,
}

/// Every use in a reachable block that executes before any definition of
/// its register is guaranteed to have executed. Empty for all
/// lowerer-produced IR; hand-built IR can violate it.
pub fn uninitialized_uses(func: &Function) -> Vec<UninitUse> {
    let cfg = Cfg::new(func);
    let init = definite_init(func, &cfg);
    let mut out = Vec::new();
    for &b in cfg.rpo() {
        let mut ready = init.init_in[b.index()].clone();
        let block = &func.blocks[b.index()];
        for (ii, instr) in block.instrs.iter().enumerate() {
            instr.for_each_use(|r| {
                if !ready.contains(r.index()) {
                    out.push(UninitUse {
                        block: b,
                        instr: Some(ii),
                        reg: r,
                    });
                }
            });
            if let Some(dst) = instr.dst() {
                ready.insert(dst.index());
            }
        }
        block.term.for_each_use(|r| {
            if !ready.contains(r.index()) {
                out.push(UninitUse {
                    block: b,
                    instr: None,
                    reg: r,
                });
            }
        });
    }
    out
}

/// True when every reachable use of every register is preceded by a
/// definition on all paths — the precondition for constant folding over
/// [`crate::single_def_consts`].
pub fn all_uses_initialized(func: &Function) -> bool {
    uninitialized_uses(func).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
    use trace_ir::{BinOp, BranchKind, Program};

    fn build(f: FunctionBuilder) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        pb.finish("f").unwrap()
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::empty(70);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(69));
        assert!(!s.insert(69));
        assert!(s.contains(69) && !s.contains(68));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
        s.remove(0);
        assert!(!s.contains(0));

        let full = BitSet::full(70);
        assert_eq!(full.iter().count(), 70);
        let mut inter = full.clone();
        assert!(inter.intersect_with(&s));
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![69]);
        let mut uni = BitSet::empty(70);
        assert!(uni.union_with(&s));
        assert!(!uni.union_with(&s), "idempotent");
    }

    #[test]
    fn liveness_flows_backward_through_the_diamond() {
        // x defined in entry, used only in the true arm.
        let mut f = FunctionBuilder::new("f", 1);
        let x = f.const_int(42);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.emit_value(x);
        f.jump(join);
        f.switch_to(e);
        f.jump(join);
        f.switch_to(join);
        f.ret(None);
        let p = build(f);
        let func = &p.functions[0];
        let cfg = Cfg::new(func);
        let l = liveness(func, &cfg);
        assert!(l.live_out[0].contains(x.index()), "x live out of entry");
        assert!(l.live_in[1].contains(x.index()), "x live into true arm");
        assert!(!l.live_in[2].contains(x.index()), "dead in false arm");
        assert!(!l.live_in[3].contains(x.index()), "dead at join");
    }

    #[test]
    fn reaching_defs_merge_at_the_join() {
        // r is written in both arms; both defs reach the join.
        let mut f = FunctionBuilder::new("f", 1);
        let r = f.const_int(0);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        f.mov_to(r, f.param(0));
        f.jump(join);
        f.switch_to(e);
        let one = f.const_int(1);
        f.mov_to(r, one);
        f.jump(join);
        f.switch_to(join);
        f.emit_value(r);
        f.ret(None);
        let p = build(f);
        let func = &p.functions[0];
        let cfg = Cfg::new(func);
        let rd = reaching_defs(func, &cfg);
        let reaching_r: Vec<&DefSite> = rd.reach_in[3]
            .iter()
            .map(|i| &rd.sites[i])
            .filter(|s| s.reg() == r)
            .collect();
        // The entry const is killed on both paths; the two movs survive.
        assert_eq!(reaching_r.len(), 2);
        assert!(reaching_r
            .iter()
            .all(|s| matches!(s, DefSite::Instr { block, .. } if block.index() == 1 || block.index() == 2)));
        // The parameter's entry def reaches everywhere (never redefined).
        assert!(rd.reach_in[3].contains(0));
    }

    #[test]
    fn definite_init_requires_all_paths() {
        // x initialized only in the true arm; at the join it is not
        // definitely initialized, and the emit there is flagged.
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        f.branch(f.param(0), t, e, 1, BranchKind::If);
        f.switch_to(t);
        let x = f.new_reg();
        let one = f.const_int(1);
        f.mov_to(x, one);
        f.jump(join);
        f.switch_to(e);
        f.jump(join);
        f.switch_to(join);
        f.emit_value(x);
        f.ret(None);
        let p = build(f);
        let func = &p.functions[0];
        let cfg = Cfg::new(func);
        let init = definite_init(func, &cfg);
        assert!(!init.init_in[3].contains(x.index()));
        assert!(init.init_in[3].contains(0), "params always initialized");

        let uses = uninitialized_uses(func);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].reg, x);
        assert_eq!(uses[0].block, BlockId(3));
        assert!(!all_uses_initialized(func));
    }

    #[test]
    fn straight_line_code_is_definitely_initialized() {
        let mut f = FunctionBuilder::new("f", 2);
        let s = f.binop(BinOp::Add, f.param(0), f.param(1));
        f.emit_value(s);
        f.ret(None);
        let p = build(f);
        assert!(all_uses_initialized(&p.functions[0]));
        assert!(uninitialized_uses(&p.functions[0]).is_empty());
    }
}
