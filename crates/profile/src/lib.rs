#![warn(missing_docs)]

//! # ifprob
//!
//! The IFPROBBER equivalent: everything between a profiled run and a usable
//! branch predictor.
//!
//! In the paper's toolchain, a compiler switch instrumented every conditional
//! branch with an `(encountered, taken)` counter pair; each run folded its
//! counters into a *database*; and a utility later fed the accumulated counts
//! back into the source as `C!MF! IFPROB(…)` directives the compiler
//! understood. This crate provides the same architecture:
//!
//! * per-run branch counts come from `trace-vm` (keyed by stable
//!   source-level [`trace_ir::BranchId`]s),
//! * [`ProfileDb`] accumulates them across runs, per dataset,
//! * [`combine`] merges datasets into one predictor profile under the
//!   paper's three rules ([`CombineRule::Scaled`], [`CombineRule::Unscaled`],
//!   [`CombineRule::Polling`] — §3 "Scaled vs. unscaled summary
//!   predictors"),
//! * [`directives`] writes profiles out as source-level `IFPROB` directives
//!   and parses them back, completing the feedback loop.
//!
//! ```
//! use ifprob::{combine, CombineRule, ProfileDb};
//! use trace_ir::BranchId;
//! use trace_vm::BranchCounts;
//!
//! let mut db = ProfileDb::new();
//! let mut a = BranchCounts::new();
//! a.add(BranchId(0), 100, 90);
//! db.record("dataset-a", &a);
//! let mut b = BranchCounts::new();
//! b.add(BranchId(0), 2, 0);
//! db.record("dataset-b", &b);
//!
//! let merged = combine(&[db.profile("dataset-a").unwrap(),
//!                        db.profile("dataset-b").unwrap()],
//!                      CombineRule::Scaled);
//! // Scaled: each dataset gets equal weight, so b's 0/2 pulls hard.
//! assert!(merged.fraction_taken(BranchId(0)).unwrap() < 0.5);
//! ```

mod combine;
pub mod directives;
mod stats;

pub use combine::{
    combine, combine_checked, combine_skewed, CombineError, CombineRule, SkewedCombine,
    WeightedCounts,
};
pub use mfstale::{SiteFp, SkewReport};
pub use stats::{coverage, overlap, Coverage};

use std::collections::BTreeMap;

use trace_vm::BranchCounts;

/// A cumulative database of branch profiles, keyed by dataset name.
///
/// Recording the same dataset twice accumulates, mirroring how the paper's
/// IFPROBBER database grew across repeated runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileDb {
    profiles: BTreeMap<String, BranchCounts>,
}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Folds one run's counters into the dataset's accumulated profile.
    pub fn record(&mut self, dataset: &str, counts: &BranchCounts) {
        let entry = self.profiles.entry(dataset.to_string()).or_default();
        entry.extend(counts.iter());
    }

    /// The accumulated profile for one dataset.
    pub fn profile(&self, dataset: &str) -> Option<&BranchCounts> {
        self.profiles.get(dataset)
    }

    /// Iterates `(dataset, profile)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BranchCounts)> {
        self.profiles.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Dataset names, in order.
    pub fn datasets(&self) -> Vec<&str> {
        self.profiles.keys().map(String::as_str).collect()
    }

    /// Number of datasets recorded.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles except `excluded` — the leave-one-out predictor set used
    /// throughout the paper's Figure 2 ("the sum of all the other
    /// datasets").
    pub fn all_except(&self, excluded: &str) -> Vec<&BranchCounts> {
        self.profiles
            .iter()
            .filter(|(k, _)| *k != excluded)
            .map(|(_, v)| v)
            .collect()
    }
}

impl Extend<(String, BranchCounts)> for ProfileDb {
    fn extend<I: IntoIterator<Item = (String, BranchCounts)>>(&mut self, iter: I) {
        for (name, counts) in iter {
            self.record(&name, &counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::BranchId;

    fn counts(entries: &[(u32, u64, u64)]) -> BranchCounts {
        entries
            .iter()
            .map(|&(id, e, t)| (BranchId(id), e, t))
            .collect()
    }

    #[test]
    fn record_accumulates() {
        let mut db = ProfileDb::new();
        db.record("a", &counts(&[(0, 10, 5)]));
        db.record("a", &counts(&[(0, 10, 5), (1, 2, 2)]));
        let p = db.profile("a").unwrap();
        assert_eq!(p.get(BranchId(0)), (20, 10));
        assert_eq!(p.get(BranchId(1)), (2, 2));
    }

    #[test]
    fn all_except_filters() {
        let mut db = ProfileDb::new();
        db.record("a", &counts(&[(0, 1, 1)]));
        db.record("b", &counts(&[(0, 2, 0)]));
        db.record("c", &counts(&[(0, 4, 4)]));
        let rest = db.all_except("b");
        assert_eq!(rest.len(), 2);
        let total: u64 = rest.iter().map(|c| c.total_executed()).sum();
        assert_eq!(total, 5);
        assert_eq!(db.datasets(), vec!["a", "b", "c"]);
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
    }

    #[test]
    fn extend_records_pairs() {
        let mut db = ProfileDb::new();
        db.extend(vec![("x".to_string(), counts(&[(3, 7, 7)]))]);
        assert_eq!(db.profile("x").unwrap().get(BranchId(3)), (7, 7));
    }
}
