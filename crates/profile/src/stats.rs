//! Coverage and overlap statistics between predictor and target profiles.
//!
//! The paper's "informal observations" section describes a hunch: when a
//! dataset predictor did poorly, it was usually because it *emphasized a
//! different part of the program* than the target, not because branches
//! changed direction. These statistics quantify that.

use trace_vm::BranchCounts;

/// How well a predictor profile covers a target profile.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Coverage {
    /// Fraction of the target's *dynamic* branch executions whose static
    /// branch was seen (executed ≥ once) by the predictor.
    pub dynamic: f64,
    /// Fraction of the target's *static* executed branches seen by the
    /// predictor.
    pub static_: f64,
    /// Of the covered dynamic executions, the fraction where predictor and
    /// target majorities agree — separates "didn't see the branch" from
    /// "saw it but it flipped direction".
    pub agreement: f64,
}

/// Computes coverage of `target` by `predictor`.
pub fn coverage(predictor: &BranchCounts, target: &BranchCounts) -> Coverage {
    let mut covered_dyn = 0u64;
    let mut total_dyn = 0u64;
    let mut covered_static = 0usize;
    let mut total_static = 0usize;
    let mut agree_dyn = 0u64;
    for (id, e, t) in target.iter() {
        if e == 0 {
            continue;
        }
        total_dyn += e;
        total_static += 1;
        let (pe, pt) = predictor.get(id);
        if pe > 0 {
            covered_dyn += e;
            covered_static += 1;
            let target_taken = t * 2 >= e;
            let pred_taken = pt * 2 >= pe;
            if target_taken == pred_taken {
                agree_dyn += e;
            }
        }
    }
    Coverage {
        dynamic: ratio(covered_dyn, total_dyn),
        static_: ratio(covered_static as u64, total_static as u64),
        agreement: ratio(agree_dyn, covered_dyn),
    }
}

/// Cosine-style overlap between the dynamic branch-execution weight vectors
/// of two profiles, in 0..=1. Two runs spending their branch executions on
/// the same static branches in the same proportions score 1.
pub fn overlap(a: &BranchCounts, b: &BranchCounts) -> f64 {
    let ta = a.total_executed();
    let tb = b.total_executed();
    if ta == 0 || tb == 0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    for (id, e, _) in a.iter() {
        let wa = e as f64 / ta as f64;
        na += wa * wa;
        let (eb, _) = b.get(id);
        let wb = eb as f64 / tb as f64;
        dot += wa * wb;
    }
    let mut nb = 0.0;
    for (_, e, _) in b.iter() {
        let wb = e as f64 / tb as f64;
        nb += wb * wb;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::BranchId;

    fn counts(entries: &[(u32, u64, u64)]) -> BranchCounts {
        entries
            .iter()
            .map(|&(id, e, t)| (BranchId(id), e, t))
            .collect()
    }

    #[test]
    fn full_coverage_same_profile() {
        let p = counts(&[(0, 10, 9), (1, 4, 0)]);
        let c = coverage(&p, &p);
        assert_eq!(c.dynamic, 1.0);
        assert_eq!(c.static_, 1.0);
        assert_eq!(c.agreement, 1.0);
    }

    #[test]
    fn partial_coverage() {
        let pred = counts(&[(0, 10, 9)]);
        let target = counts(&[(0, 6, 6), (1, 4, 0)]);
        let c = coverage(&pred, &target);
        assert!((c.dynamic - 0.6).abs() < 1e-12);
        assert!((c.static_ - 0.5).abs() < 1e-12);
        assert_eq!(c.agreement, 1.0);
    }

    #[test]
    fn direction_flip_shows_in_agreement() {
        let pred = counts(&[(0, 10, 9)]); // predicts taken
        let target = counts(&[(0, 10, 1)]); // mostly not taken
        let c = coverage(&pred, &target);
        assert_eq!(c.dynamic, 1.0);
        assert_eq!(c.agreement, 0.0);
    }

    #[test]
    fn overlap_extremes() {
        let a = counts(&[(0, 10, 0)]);
        let b = counts(&[(1, 10, 0)]);
        assert_eq!(overlap(&a, &b), 0.0);
        assert!((overlap(&a, &a) - 1.0).abs() < 1e-12);
        let empty = BranchCounts::new();
        assert_eq!(overlap(&a, &empty), 0.0);
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = counts(&[(0, 10, 5), (1, 30, 0)]);
        let b = counts(&[(0, 20, 1), (2, 5, 5)]);
        assert!((overlap(&a, &b) - overlap(&b, &a)).abs() < 1e-12);
    }
}
