//! `IFPROB` directive feedback.
//!
//! The paper's toolchain closed the loop by writing accumulated branch
//! counts back into the source as compiler directives
//! (`C!MF! IFPROB(32543, 20, 0)`). We do the same at the level users saw:
//! each directive names the *source-level* branch (function, line, ordinal
//! among that line's branches) plus its taken/not-taken totals, so a
//! directive file produced against one compilation applies to any
//! compilation of the same source.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use trace_ir::{BranchId, Program};
use trace_vm::BranchCounts;

/// The directive marker, echoing the Multiflow `C!MF! IFPROB` syntax.
pub const MARKER: &str = "!MF! IFPROB";

/// An error parsing a directive file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectiveError {
    /// A directive line was malformed.
    Malformed {
        /// 1-based line in the directive file.
        line: usize,
    },
    /// A directive named a branch the program does not have.
    UnknownBranch {
        /// 1-based line in the directive file.
        line: usize,
        /// The function the directive named.
        func: String,
    },
}

impl fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectiveError::Malformed { line } => {
                write!(f, "malformed IFPROB directive on line {line}")
            }
            DirectiveError::UnknownBranch { line, func } => write!(
                f,
                "directive on line {line} names a branch in `{func}` that the program lacks"
            ),
        }
    }
}

impl Error for DirectiveError {}

/// `(function name, source line, ordinal among that line's branches)` — the
/// source-level key a directive addresses.
fn source_keys(program: &Program) -> Vec<(String, u32, u32)> {
    let mut ordinal: HashMap<(u32, u32), u32> = HashMap::new();
    program
        .branch_info
        .iter()
        .map(|info| {
            let slot = ordinal.entry((info.func.0, info.line)).or_insert(0);
            let ord = *slot;
            #[cfg(feature = "seeded-defects")]
            if !mfdefect::active("profile-directive-ordinal") {
                *slot += 1;
            }
            #[cfg(not(feature = "seeded-defects"))]
            {
                *slot += 1;
            }
            (
                program.functions[info.func.index()].name.clone(),
                info.line,
                ord,
            )
        })
        .collect()
}

/// Serializes a profile as directive text, one line per static branch in
/// source order. Branches the profile never saw are written with zero
/// counts, exactly as untouched IFPROBBER counters would be.
pub fn write_directives(program: &Program, counts: &BranchCounts) -> String {
    let mut out = String::new();
    for (i, (func, line, ord)) in source_keys(program).iter().enumerate() {
        let (e, t) = counts.get(BranchId::from_index(i));
        let not_taken = e - t;
        out.push_str(&format!("{MARKER} {func} {line} {ord} {t} {not_taken}\n"));
    }
    out
}

/// Parses directive text back into per-branch counts against `program`.
/// Lines that do not carry the [`MARKER`] are ignored (directives embed in
/// source files).
///
/// # Errors
///
/// Returns [`DirectiveError`] for malformed directives or directives naming
/// branches the program does not contain.
pub fn parse_directives(program: &Program, text: &str) -> Result<BranchCounts, DirectiveError> {
    let mut by_key: HashMap<(String, u32, u32), BranchId> = HashMap::new();
    for (i, key) in source_keys(program).into_iter().enumerate() {
        by_key.insert(key, BranchId::from_index(i));
    }
    let mut counts = BranchCounts::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let Some(rest) = line.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let [func, src_line, ord, taken, not_taken] = fields[..] else {
            return Err(DirectiveError::Malformed { line: lineno });
        };
        let (Ok(src_line), Ok(ord), Ok(taken), Ok(not_taken)) = (
            src_line.parse::<u32>(),
            ord.parse::<u32>(),
            taken.parse::<u64>(),
            not_taken.parse::<u64>(),
        ) else {
            return Err(DirectiveError::Malformed { line: lineno });
        };
        let key = (func.to_string(), src_line, ord);
        let Some(&id) = by_key.get(&key) else {
            return Err(DirectiveError::UnknownBranch {
                line: lineno,
                func: func.to_string(),
            });
        };
        counts.add(id, taken + not_taken, taken);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflang::compile;
    use trace_vm::{Input, Vm};

    const SRC: &str = r#"
        fn main(n: int) {
            var odd: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                if (i % 2 == 1) { odd = odd + 1; }
            }
            emit(odd);
        }
    "#;

    #[test]
    fn roundtrip_preserves_counts() {
        let program = compile(SRC).unwrap();
        let run = Vm::new(&program).run(&[Input::Int(9)]).unwrap();
        let text = write_directives(&program, &run.stats.branches);
        assert!(text.contains(MARKER));

        // Apply the directives to a *fresh compilation* of the same source.
        let recompiled = compile(SRC).unwrap();
        let parsed = parse_directives(&recompiled, &text).unwrap();
        for (id, e, t) in run.stats.branches.iter() {
            assert_eq!(parsed.get(id), (e, t));
        }
    }

    #[test]
    fn non_directive_lines_ignored() {
        let program = compile(SRC).unwrap();
        let text = format!(
            "// a comment\nfn main…\n{}",
            write_directives(&program, &BranchCounts::new())
        );
        assert!(parse_directives(&program, &text).is_ok());
    }

    #[test]
    fn malformed_directive_rejected() {
        let program = compile(SRC).unwrap();
        let err = parse_directives(&program, &format!("{MARKER} main oops")).unwrap_err();
        assert!(matches!(err, DirectiveError::Malformed { line: 1 }));
        let err = parse_directives(&program, &format!("{MARKER} main 3 0 x 1")).unwrap_err();
        assert!(matches!(err, DirectiveError::Malformed { .. }));
    }

    #[test]
    fn unknown_branch_rejected() {
        let program = compile(SRC).unwrap();
        let err = parse_directives(&program, &format!("{MARKER} ghost 1 0 5 5")).unwrap_err();
        assert!(matches!(err, DirectiveError::UnknownBranch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn zero_count_branches_written() {
        let program = compile(SRC).unwrap();
        let text = write_directives(&program, &BranchCounts::new());
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), program.branch_info.len());
        assert!(lines.iter().all(|l| l.ends_with(" 0 0")));
    }
}
